#!/usr/bin/env python
"""Core-engine benchmark: reference vs fast, with built-in equivalence.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_core.py [--quick] [--no-append]

Times ``EclipseSystem.run()`` under both engines on three canonical
workloads — the quickstart pipeline, a Figure-8 decode, and a faulted
(chaos + watchdog) conformance run — and **asserts byte-identity**
(full ``SystemResult`` including histories, plus the exported state
digest) before reporting any number: a fast engine that drifts is a
bug, not a speedup.

Each invocation appends one entry to the ``BENCH_core.json`` trajectory
at the repo root, so speedups are tracked over time, and fails if the
decode speedup drops below ``--min-speedup``.

On top of the engine comparison (always at the default
``obs_level="full"``), every workload is swept across the observability
levels on the fast engine: ``off`` drops histories, fill statistics and
sampling from the hot path, so its speedup over reference-at-full
should *beat* the full/full number.  The sweep asserts the cycle count
is identical at every level (observation is pure — it must never move
the schedule) and gates ``off`` against ``full``: if stripping the
observers makes a run slower (``--max-off-overhead``, default 2%), the
level plumbing itself has grown a hot-path cost.

Honest calibration note: the issue that introduced the fast engine
aimed at 10x on decode / 5x faulted.  The byte-identity contract keeps
the *event schedule* intact (every grant round-trip, every monitor
poll), so the realized gains are flattening + idle-window compression
only: measured ~1.3-1.6x on these schedule-dense workloads (the
compression win grows with idle-window length, e.g. long deadlock
patience, not with load).  The CI gate is therefore set at 1.15x —
~85% of the weakest measured speedup — to catch regressions without
pretending at headroom the contract forbids.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_core.json")
BENCH_SCHEMA = "repro.bench_core/1"
ENGINES = ("reference", "fast")
OBS_LEVELS = ("off", "counters", "series", "full")


def _workloads(quick: bool):
    """name -> (factory dotted path, kwargs). Quick mode shrinks the
    decode so the CI smoke run stays in seconds."""
    decode = (
        {"width": 48, "height": 32, "frames": 4, "gop_n": 4, "gop_m": 2}
        if quick
        else {"width": 96, "height": 64, "frames": 6, "gop_n": 6, "gop_m": 3}
    )
    return {
        "quickstart": (
            "repro.workloads:quickstart_run",
            {"payload_len": 4096},
        ),
        "figure8_decode": ("repro.workloads:decode_run", decode),
        "conformance_faulted": (
            "repro.workloads:conformance_run",
            {
                "graph": "diamond",
                "payload_len": 2048 if quick else 4096,
                "fault_spec": "chaos",
                "fault_seed": 7,
                "watchdog_timeout": 2000,
            },
        ),
    }


def _run_once(factory_path: str, kwargs: dict, engine: str, obs_level: str = "full"):
    """Build, run, and time one workload; returns (seconds, system, result)."""
    from repro.runner import resolve_factory

    system, graph = resolve_factory(factory_path)(engine=engine, obs_level=obs_level,
                                                  **kwargs)
    system.configure(graph)
    t0 = time.perf_counter()
    result = system.run()
    elapsed = time.perf_counter() - t0
    return elapsed, system, result


def bench_workload(name: str, factory_path: str, kwargs: dict, repeats: int) -> dict:
    timings = {engine: [] for engine in ENGINES}
    digests = {}
    dicts = {}
    for engine in ENGINES:
        for _ in range(repeats):
            elapsed, system, result = _run_once(factory_path, kwargs, engine)
            timings[engine].append(elapsed)
        digests[engine] = system.state_digest()
        dicts[engine] = result.to_dict(include_histories=True)
    identical = (
        dicts["fast"] == dicts["reference"]
        and digests["fast"] == digests["reference"]
    )
    ref_s = min(timings["reference"])
    fast_s = min(timings["fast"])
    cycles = dicts["reference"]["cycles"]
    return {
        "workload": name,
        "kwargs": kwargs,
        "cycles": cycles,
        "reference_s": round(ref_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup": round(ref_s / fast_s, 3) if fast_s else 0.0,
        "identical": identical,
        "state_digest_match": digests["fast"] == digests["reference"],
        "obs_levels": bench_obs_levels(factory_path, kwargs, repeats,
                                       ref_s, fast_s, cycles),
    }


def bench_obs_levels(factory_path: str, kwargs: dict, repeats: int,
                     ref_s: float, fast_full_s: float, full_cycles: int) -> dict:
    """Fast-engine timings per observability level, each reported as a
    speedup over the reference engine at ``full`` (the seed baseline).
    ``full`` reuses the main timing; the others re-run the workload."""
    levels = {}
    for level in OBS_LEVELS:
        if level == "full":
            best, cycles = fast_full_s, full_cycles
        else:
            best = None
            for _ in range(repeats):
                elapsed, _system, result = _run_once(
                    factory_path, kwargs, "fast", obs_level=level)
                best = elapsed if best is None else min(best, elapsed)
                cycles = result.cycles
        levels[level] = {
            "fast_s": round(best, 4),
            "speedup_vs_reference_full": round(ref_s / best, 3) if best else 0.0,
            "cycles_match": cycles == full_cycles,
        }
    return levels


def append_trajectory(entry: dict, path: str = BENCH_PATH) -> None:
    trajectory = []
    if os.path.exists(path):
        with open(path) as fh:
            trajectory = json.load(fh)
    trajectory.append(entry)
    with open(path, "w") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small workloads, 1 repeat (the CI smoke mode)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timing repeats per engine (best-of); default 3, 1 with --quick")
    ap.add_argument("--min-speedup", type=float, default=1.15,
                    help="fail if the figure8_decode speedup drops below this")
    ap.add_argument("--max-off-overhead", type=float, default=0.02,
                    help="fail if obs_level=off runs more than this fraction "
                    "slower than full on the fast engine (default: 0.02)")
    ap.add_argument("--no-append", action="store_true",
                    help="do not append to BENCH_core.json")
    args = ap.parse_args(argv)
    repeats = args.repeats or (1 if args.quick else 3)

    try:
        import numpy  # noqa: F401
        numpy_ok = True
    except ImportError:
        numpy_ok = False

    rows = []
    print(f"{'workload':<22} {'cycles':>8} {'ref s':>8} {'fast s':>8} "
          f"{'speedup':>8} {'identical':>10}")
    for name, (factory_path, kwargs) in _workloads(args.quick).items():
        row = bench_workload(name, factory_path, kwargs, repeats)
        rows.append(row)
        print(f"{name:<22} {row['cycles']:>8} {row['reference_s']:>8.3f} "
              f"{row['fast_s']:>8.3f} {row['speedup']:>7.2f}x "
              f"{str(row['identical']):>10}")
        for level, lv in row["obs_levels"].items():
            print(f"  obs={level:<18} {'':>8} {'':>8} {lv['fast_s']:>8.3f} "
                  f"{lv['speedup_vs_reference_full']:>7.2f}x "
                  f"{'cycles ok' if lv['cycles_match'] else 'CYCLES DRIFT':>10}")

    entry = {
        "schema": BENCH_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": args.quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": numpy_ok,
        "results": rows,
    }
    if not args.no_append:
        append_trajectory(entry)
        print(f"appended to {os.path.relpath(BENCH_PATH)}")

    failures = []
    for row in rows:
        if not row["identical"]:
            failures.append(f"{row['workload']}: fast engine NOT byte-identical")
        for level, lv in row["obs_levels"].items():
            if not lv["cycles_match"]:
                failures.append(
                    f"{row['workload']}: cycle count drifts at obs_level={level} "
                    "— observation moved the event schedule"
                )
    decode = next(r for r in rows if r["workload"] == "figure8_decode")
    if decode["identical"] and decode["speedup"] < args.min_speedup:
        failures.append(
            f"figure8_decode speedup {decode['speedup']}x below the "
            f"{args.min_speedup}x regression gate"
        )
    off_s = decode["obs_levels"]["off"]["fast_s"]
    full_s = decode["obs_levels"]["full"]["fast_s"]
    if full_s and off_s > full_s * (1.0 + args.max_off_overhead):
        failures.append(
            f"figure8_decode obs_level=off ({off_s}s) is more than "
            f"{args.max_off_overhead:.0%} slower than full ({full_s}s) — "
            "the level plumbing added hot-path cost"
        )
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
