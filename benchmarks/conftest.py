"""Shared workloads for the benchmark/experiment suite.

Each bench regenerates one of the paper's figures/tables (see
DESIGN.md's experiment index).  Workloads are built once per session;
benches print their paper-comparable tables (run with ``-s`` to see
them) and stash the key numbers in ``benchmark.extra_info`` so they
land in pytest-benchmark's JSON output.
"""

import pytest

from repro import CodecParams, encode_sequence, synthetic_sequence


@pytest.fixture(scope="session")
def small_content():
    """48x32, 6 frames — fast enough for sweeps."""
    params = CodecParams(width=48, height=32, gop_n=6, gop_m=3)
    frames = synthetic_sequence(params.width, params.height, num_frames=6)
    bitstream, recon, stats = encode_sequence(frames, params)
    return params, frames, bitstream, recon, stats


@pytest.fixture(scope="session")
def fig10_content():
    """96x64, 12 frames (a full IPBBPBB... GOP) — the Figure 10 run."""
    params = CodecParams(width=96, height=64, gop_n=12, gop_m=3)
    frames = synthetic_sequence(params.width, params.height, num_frames=12, noise=1.0)
    bitstream, recon, stats = encode_sequence(frames, params)
    return params, frames, bitstream, recon, stats


def run_once(benchmark, fn):
    """Benchmark a long-running experiment exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
