"""Shared workloads for the benchmark/experiment suite.

Each bench regenerates one of the paper's figures/tables (see
DESIGN.md's experiment index).  Workloads are built once per session;
benches print their paper-comparable tables (run with ``-s`` to see
them) and stash the key numbers in ``benchmark.extra_info`` so they
land in pytest-benchmark's JSON output.
"""

import pytest

from repro import CodecParams, encode_sequence, synthetic_sequence


@pytest.fixture(scope="session")
def small_content():
    """48x32, 6 frames — fast enough for sweeps."""
    params = CodecParams(width=48, height=32, gop_n=6, gop_m=3)
    frames = synthetic_sequence(params.width, params.height, num_frames=6)
    bitstream, recon, stats = encode_sequence(frames, params)
    return params, frames, bitstream, recon, stats


@pytest.fixture(scope="session")
def fig10_content():
    """96x64, 12 frames (a full IPBBPBB... GOP) — the Figure 10 run."""
    params = CodecParams(width=96, height=64, gop_n=12, gop_m=3)
    frames = synthetic_sequence(params.width, params.height, num_frames=12, noise=1.0)
    bitstream, recon, stats = encode_sequence(frames, params)
    return params, frames, bitstream, recon, stats


def run_once(benchmark, fn):
    """Benchmark a long-running experiment exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_many(benchmark, specs, jobs=None, timeout=None, retries=0):
    """Run a batch of independent RunSpecs through the parallel engine
    exactly once, stashing the speedup numbers in ``extra_info``.

    This is the shared multi-run path for the scalability/sweep benches:
    independent simulation points amortize across cores instead of
    executing strictly sequentially.  Returns the RunReport (results in
    spec order, deterministic regardless of ``jobs``).
    """
    from repro.runner import ParallelRunner

    runner = ParallelRunner(jobs=jobs, timeout=timeout, retries=retries)
    report = benchmark.pedantic(runner.run, args=(specs,), rounds=1, iterations=1)
    benchmark.extra_info["jobs"] = report.jobs
    benchmark.extra_info["runs"] = len(report.results)
    benchmark.extra_info["wall_time_s"] = round(report.wall_time, 3)
    benchmark.extra_info["serial_estimate_s"] = round(report.serial_time_estimate, 3)
    benchmark.extra_info["speedup"] = round(report.speedup, 2)
    return report
