"""EXP-A1 — §2.2/§5.1: synchronization granularity vs buffer size.

"Eclipse reduces communication buffer requirements by changing the
grain of synchronization to a finer level (e.g. from picture to
macroblock level in MPEG).  The resulting small communication buffers
can be kept on-chip."

The experiment: move the same payload through a producer/consumer pair
while sweeping the synchronization unit (bytes committed per
GetSpace/PutSpace) from fine (64 B ~ a macroblock's worth of symbols)
to coarse (24 KiB ~ a picture).  The minimum feasible buffer equals the
sync unit, so on-chip memory demand grows linearly with sync grain —
at picture grain it no longer fits the paper's 32 kB SRAM at all.
"""

from conftest import run_once

from repro import ApplicationGraph, CoprocessorSpec, EclipseSystem, SystemParams, TaskNode
from repro.hw import AllocationError
from repro.kahn.library import ConsumerKernel, ProducerKernel

PAYLOAD = bytes((i * 31) % 256 for i in range(96 * 1024))


def run(sync_unit: int, sram_size: int = 512 * 1024):
    g = ApplicationGraph("granularity")
    g.add_task(
        TaskNode(
            "src",
            lambda: ProducerKernel(PAYLOAD, chunk=sync_unit, compute_cycles=sync_unit // 8),
            ProducerKernel.PORTS,
        )
    )
    g.add_task(
        TaskNode(
            "dst",
            lambda: ConsumerKernel(chunk=sync_unit, compute_cycles=sync_unit // 8),
            ConsumerKernel.PORTS,
        )
    )
    # minimum feasible buffer: exactly one sync unit
    g.connect("src.out", "dst.in", buffer_size=sync_unit)
    system = EclipseSystem(
        [CoprocessorSpec("p"), CoprocessorSpec("c")],
        SystemParams(sram_size=sram_size),
    )
    system.configure(g)
    return system.run()


def test_sync_granularity_sweep(benchmark):
    result = run_once(benchmark, lambda: run(256))
    assert result.completed
    print("\nEXP-A1 sync granularity vs minimum buffer (96 KiB payload):")
    print(f"{'sync unit':>10} {'min buffer':>11} {'cycles':>9} {'sync msgs':>10} {'fits 32kB?':>11}")
    rows = []
    for unit in (64, 256, 1024, 4096, 24 * 1024):
        r = run(unit)
        assert r.completed
        assert r.histories["s_src_out"] == PAYLOAD
        msgs = r.streams["s_src_out"].putspace_messages
        fits = "yes" if unit <= 32 * 1024 // 4 else "NO"  # 4 such streams
        print(f"{unit:>10} {unit:>11} {r.cycles:>9} {msgs:>10} {fits:>11}")
        rows.append((unit, r.cycles, msgs))
    # finer grain -> more messages but same data; buffer shrinks 384x
    assert rows[0][2] > 100 * rows[-1][2]
    benchmark.extra_info["buffer_reduction"] = rows[-1][0] // rows[0][0]


def test_picture_grain_overflows_paper_sram(benchmark):
    """At picture granularity one buffer alone blows the 32 kB SRAM —
    the motivation for macroblock-grain synchronization."""
    benchmark.pedantic(lambda: run(1024), rounds=1, iterations=1)
    picture_bytes = 352 * 288 * 3 // 2  # one SD (CIF) 4:2:0 picture
    try:
        run(picture_bytes, sram_size=32 * 1024)
        overflowed = False
    except AllocationError:
        overflowed = True
    assert overflowed
    print(f"\nEXP-A1: a single picture-grain buffer ({picture_bytes} B) "
          "does not fit the paper's 32 kB SRAM — macroblock grain does.")
