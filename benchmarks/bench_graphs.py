"""EXP-F2 — Figure 2: the MPEG-2 decoder process network.

Regenerates the decoder graph structure (tasks, streams, the VLD->MC
side edge) and benchmarks graph construction + validation, the
operation the CPU performs when configuring an application at run time.
"""

from conftest import run_once

from repro import decode_graph
from repro.media.pipelines import encode_graph


def test_decoder_network_structure(benchmark, small_content):
    params, frames, bitstream, _recon, _stats = small_content

    def build():
        g = decode_graph(bitstream)
        g.validate()
        return g

    g = benchmark(build)
    edges = {
        (e.producer.task, c.task) for e in g.streams.values() for c in e.consumers
    }
    # Figure 2's chain plus the motion-vector side stream
    expected = {
        ("vld", "rlsq"),
        ("vld", "mc"),
        ("rlsq", "idct"),
        ("idct", "mc"),
        ("mc", "disp"),
    }
    assert edges == expected
    assert g.is_acyclic()
    print("\nEXP-F2 decoder process network (Figure 2):")
    for e in sorted(g.streams.values(), key=lambda e: e.name):
        consumers = ", ".join(str(c) for c in e.consumers)
        print(f"  {e.name:>8}: {e.producer} -> {consumers}  ({e.buffer_size} B buffer)")
    benchmark.extra_info["tasks"] = len(g.tasks)
    benchmark.extra_info["streams"] = len(g.streams)


def test_encoder_network_structure(benchmark, small_content):
    params, frames, _bits, _recon, _stats = small_content

    def build():
        g = encode_graph(frames, params)
        g.validate()
        return g

    g = benchmark(build)
    assert not g.is_acyclic()  # the reconstruction feedback loop
    print(f"\nEXP-F2 encoder network: {len(g.tasks)} tasks, "
          f"{len(g.streams)} streams, cyclic (reconstruction loop)")
