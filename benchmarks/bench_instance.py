"""EXP-T6 — the Section 6 instance estimates.

The paper's quantitative claims for the first Eclipse instantiation:
~36 Gops/s for dual-HD MPEG-2 decode (16-bit ops), <7 mm² total in
0.18 µm (1.7 mm² for the 32 kB SRAM, 2.0 mm² for the VLD), <240 mW.
The analytic model regenerates each number and this bench prints the
paper-vs-model table; it also scales the template (SRAM size, stream
count) to show the instance arithmetic is parametric, as a template
should be.
"""

import pytest
from conftest import run_once

from repro import AreaPowerModel


def test_section6_estimates(benchmark):
    model = AreaPowerModel()
    est = benchmark(model.estimate)
    print("\nEXP-T6 (Section 6 instance estimates):")
    print(f"{'quantity':>28} {'paper':>12} {'model':>12}")
    print(f"{'dual-HD decode Gops/s':>28} {'~36':>12} {est.gops:>12.1f}")
    print(f"{'total area (mm^2)':>28} {'< 7':>12} {est.area_mm2:>12.2f}")
    print(f"{'32 kB SRAM area (mm^2)':>28} {'1.7':>12} {est.area_breakdown['sram']:>12.2f}")
    print(f"{'VLD area (mm^2)':>28} {'2.0':>12} {est.area_breakdown['vld']:>12.2f}")
    print(f"{'power (mW)':>28} {'< 240':>12} {est.power_mw:>12.1f}")
    checks = model.paper_claims_hold()
    for claim, ok in checks.items():
        print(f"  claim {claim}: {'OK' if ok else 'FAILED'}")
    assert all(checks.values()), checks
    benchmark.extra_info["gops"] = round(est.gops, 2)
    benchmark.extra_info["area_mm2"] = round(est.area_mm2, 3)
    benchmark.extra_info["power_mw"] = round(est.power_mw, 1)


def test_throughput_projection_and_dct_pipelining(benchmark, small_content):
    """EXP-T6b: project simulated decode throughput to the 150 MHz
    instance, and reproduce the paper's §7 design action — "we decided
    to increase performance by pipelining the DCT coprocessor" — as a
    cost-model ablation (a pipelined DCT sustains ~1 block-slice per
    cycle, cutting per-block cycles ~3x)."""
    from repro import CostModel, DECODE_MAPPING, build_mpeg_instance, decode_graph

    _params, _frames, bitstream, _recon, _stats = small_content
    n_mbs = _params.mbs_per_frame * 6

    def run(cost=None):
        system = build_mpeg_instance()
        system.configure(decode_graph(bitstream, mapping=DECODE_MAPPING, cost=cost))
        return system.run()

    from repro import ShellParams, build_mpeg_instance as build

    def run_tuned(cost, shell=None):
        system = build(shell=shell)
        system.configure(decode_graph(bitstream, mapping=DECODE_MAPPING, cost=cost))
        return system.run()

    base = run_once(benchmark, run)
    piped = run_tuned(CostModel(dct_per_block=24))
    # all three §7 actions: pipelined DCT, better shell prefetching,
    # and an MC cache hiding part of the prediction-fetch latency
    tuned = run_tuned(
        CostModel(dct_per_block=24, mc_fetch_bytes=256),
        shell=ShellParams(prefetch_lines=8, read_cache_lines=32),
    )
    cycles_per_mb = base.cycles / n_mbs
    mb_per_s = 150e6 / cycles_per_mb
    hd_need = (1920 // 16) * (1088 // 16) * 30  # one HD stream
    print("\nEXP-T6b throughput projection (150 MHz coprocessors):")
    print(f"  baseline: {cycles_per_mb:7.0f} cycles/MB -> {mb_per_s / 1e3:6.0f} kMB/s "
          f"({mb_per_s / hd_need:.2f}x one HD stream)")
    print(f"  + pipelined DCT:            speedup {base.cycles / piped.cycles:5.2f}x "
          "(bottleneck shifts to RLSQ — Amdahl)")
    print(f"  + prefetch + MC cache (§7): speedup {base.cycles / tuned.cycles:5.2f}x")
    # the single action helps a little; the paper's full action list
    # helps substantially
    assert piped.cycles < base.cycles
    assert tuned.cycles < base.cycles / 1.10
    benchmark.extra_info["cycles_per_mb"] = round(cycles_per_mb, 1)
    benchmark.extra_info["section7_actions_speedup"] = round(base.cycles / tuned.cycles, 3)


def test_template_scaling(benchmark):
    """Template parameters scale the estimates coherently."""
    model = AreaPowerModel()
    base = model.estimate()
    benchmark(lambda: model.estimate(sram_kb=64, n_streams=4))
    print("\nEXP-T6 template scaling:")
    print(f"{'config':>26} {'Gops':>8} {'area mm^2':>10} {'power mW':>9}")
    for sram, streams, label in (
        (32, 2, "paper (2x HD decode)"),
        (32, 1, "1x HD decode"),
        (64, 4, "4x HD, 64 kB SRAM"),
    ):
        e = model.estimate(sram_kb=sram, n_streams=streams)
        print(f"{label:>26} {e.gops:>8.1f} {e.area_mm2:>10.2f} {e.power_mw:>9.1f}")
    one = model.estimate(n_streams=1)
    assert one.gops == pytest.approx(base.gops / 2)
    assert one.area_mm2 == base.area_mm2  # area is workload-independent
    bigger_sram = model.estimate(sram_kb=64)
    assert bigger_sram.area_mm2 > base.area_mm2
