"""EXP-A9 — §2.3: scalability of the architecture template.

"Architecture templates are essential in supporting scalability by
providing a set of parameterized rules for the composition of a
(sub)system.  Examples of template parameters are memory size, bus
width, number and type of (co)processors."

Measured: dual-stream decode on (a) the stock 5-unit Figure 8 instance
(each coprocessor time-shares both streams' tasks) and (b) a scaled
instance with duplicated RLSQ/DCT/MC units (one set per stream).  The
template composes the bigger instance from the same shells and
coprocessors with zero new code — and buys back most of the
multi-tasking slowdown.
"""

import numpy as np
from conftest import run_once

from repro import CoprocessorSpec, EclipseSystem, ShellParams, SystemParams, decode_graph
from repro.instance import DECODE_MAPPING, build_mpeg_instance


def dual_graph(bits_a, bits_b, mapping_a, mapping_b):
    g = decode_graph(bits_a, mapping=mapping_a, name="a")
    g2 = decode_graph(bits_b, mapping=mapping_b, name="b")
    return g.merge(g2, prefix="s2_")


def run_stock(bits_a, bits_b):
    system = build_mpeg_instance(SystemParams(sram_size=64 * 1024, dram_latency=60))
    mapping_b = DECODE_MAPPING  # same units: time-shared
    system.configure(dual_graph(bits_a, bits_b, DECODE_MAPPING, mapping_b))
    return system.run()


def run_scaled(bits_a, bits_b):
    """Duplicate the stream-private units; share VLD/DSP."""
    shell = ShellParams()
    specs = [
        CoprocessorSpec("vld", shell=shell),
        CoprocessorSpec("rlsq", shell=shell),
        CoprocessorSpec("dct", shell=shell),
        CoprocessorSpec("mcme", shell=shell),
        CoprocessorSpec("rlsq2", shell=shell),
        CoprocessorSpec("dct2", shell=shell),
        CoprocessorSpec("mcme2", shell=shell),
        CoprocessorSpec("dsp", is_software=True, compute_factor=4.0, shell=shell),
    ]
    system = EclipseSystem(specs, SystemParams(sram_size=64 * 1024, dram_latency=60))
    mapping_b = {
        "vld": "vld",
        "rlsq": "rlsq2",
        "idct": "dct2",
        "mc": "mcme2",
        "disp": "dsp",
    }
    system.configure(dual_graph(bits_a, bits_b, DECODE_MAPPING, mapping_b))
    return system.run()


def test_template_scaling_dual_decode(benchmark, small_content):
    _params, _frames, bits_a, _recon, _stats = small_content
    # a second, different stream
    from repro.media import CodecParams, encode_sequence, synthetic_sequence

    params_b = CodecParams(width=48, height=32, gop_n=6, gop_m=3)
    frames_b = synthetic_sequence(params_b.width, params_b.height, 6, seed=42)
    bits_b, _, _ = encode_sequence(frames_b, params_b)

    stock = run_once(benchmark, lambda: run_stock(bits_a, bits_b))
    scaled = run_scaled(bits_a, bits_b)
    assert stock.completed and scaled.completed

    from repro.instance import decode_on_instance

    _s, single = decode_on_instance(bits_a)
    print("\nEXP-A9 template scaling (dual-stream decode):")
    print(f"{'configuration':>34} {'units':>6} {'cycles':>9} {'vs single':>10}")
    print(f"{'single stream, stock instance':>34} {5:>6} {single.cycles:>9} {1.0:>10.2f}")
    print(
        f"{'dual stream, stock (time-shared)':>34} {5:>6} {stock.cycles:>9} "
        f"{stock.cycles / single.cycles:>10.2f}"
    )
    print(
        f"{'dual stream, scaled instance':>34} {8:>6} {scaled.cycles:>9} "
        f"{scaled.cycles / single.cycles:>10.2f}"
    )
    # time-sharing costs; duplicated units buy most of it back
    assert stock.cycles > 1.3 * single.cycles
    assert scaled.cycles < 0.9 * stock.cycles
    benchmark.extra_info["stock_vs_single"] = round(stock.cycles / single.cycles, 3)
    benchmark.extra_info["scaled_vs_single"] = round(scaled.cycles / single.cycles, 3)
