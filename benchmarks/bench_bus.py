"""EXP-A4 — §7 design-space exploration: bus latency and width.

The first instance uses 128-bit (16 B) read and write buses (§6); this
bench decodes the same stream over swept widths and transaction
latencies, reporting execution time and bus utilization — the trade-off
data the instance architect needs.
"""

from conftest import run_once

from repro import DECODE_MAPPING, SystemParams, build_mpeg_instance, decode_graph


def run(bitstream, **params):
    params.setdefault("dram_latency", 60)
    system = build_mpeg_instance(params=SystemParams(**params))
    system.configure(decode_graph(bitstream, mapping=DECODE_MAPPING))
    return system.run()


def test_bus_width_sweep(benchmark, small_content):
    _params, _frames, bitstream, _recon, _stats = small_content
    base = run_once(benchmark, lambda: run(bitstream))
    print("\nEXP-A4 bus width (paper instance: 16 B = 128 bits):")
    print(f"{'width B':>8} {'cycles':>9} {'vs 16B':>8} {'read util':>10} {'write util':>11}")
    rows = []
    for width in (4, 8, 16, 32):
        r = run(bitstream, bus_width=width)
        rows.append((width, r.cycles))
        print(
            f"{width:>8} {r.cycles:>9} {r.cycles / base.cycles:>8.3f} "
            f"{100 * r.read_bus_utilization:>9.1f}% {100 * r.write_bus_utilization:>10.1f}%"
        )
    assert rows[0][1] > rows[2][1]  # 4 B starves the shells
    assert rows[3][1] <= rows[2][1]  # 32 B helps at most marginally
    benchmark.extra_info["narrow_bus_slowdown"] = round(rows[0][1] / rows[2][1], 2)


def test_bus_latency_sweep(benchmark, small_content):
    _params, _frames, bitstream, _recon, _stats = small_content
    benchmark.pedantic(lambda: run(bitstream, bus_setup_latency=8), rounds=1, iterations=1)
    print("\nEXP-A4 bus transaction setup latency:")
    print(f"{'latency':>8} {'cycles':>9}")
    prev = None
    for lat in (0, 2, 8, 16):
        r = run(bitstream, bus_setup_latency=lat)
        print(f"{lat:>8} {r.cycles:>9}")
        if prev is not None:
            assert r.cycles >= prev  # latency only ever hurts
        prev = r.cycles


def test_offchip_latency_sweep(benchmark, small_content):
    """The MC/VLD off-chip port latency — the §7 'next step' was hiding
    exactly this latency with an MC cache."""
    _params, _frames, bitstream, _recon, _stats = small_content
    benchmark.pedantic(lambda: run(bitstream, dram_latency=40), rounds=1, iterations=1)
    print("\nEXP-A4 off-chip access latency (MC reference fetches):")
    print(f"{'latency':>8} {'cycles':>9} {'mc stall+busy':>14}")
    prev = None
    for lat in (10, 40, 60, 120):
        r = run(bitstream, dram_latency=lat)
        mc = r.tasks["mc"].busy_cycles
        print(f"{lat:>8} {r.cycles:>9} {mc:>14}")
        if prev is not None:
            assert mc >= prev  # MC absorbs the latency growth
        prev = mc
