"""EXP-R2 — parallel run engine: determinism + scalability.

The §7 methodology is bulk design-space evaluation: many independent
cycle-level runs.  ``repro.runner`` fans those out over a process pool;
this bench pins the engine's two contracts:

* the deterministic report is byte-identical at any job count, and
* on a multi-core host the batch finishes measurably faster than the
  serial path (asserted ≥1.5x on ≥4 cores, recorded in extra_info).
"""

import os

import pytest
from conftest import run_many

from repro.runner import ParallelRunner, RunSpec
from repro.workloads import conformance_run

N_RUNS = 12


def _specs():
    return [
        RunSpec(
            factory=conformance_run,
            kwargs={"graph": "pipeline" if i % 2 == 0 else "diamond",
                    "payload_len": 4096, "fault_seed": i},
            label=f"run{i}",
        )
        for i in range(N_RUNS)
    ]


def test_parallel_speedup(benchmark):
    """Batch wall time vs the summed per-run times (the serial
    estimate), on all cores."""
    serial = ParallelRunner(jobs=1).run(_specs())
    report = run_many(benchmark, _specs(), jobs=os.cpu_count())
    assert [r.ok for r in report.results] == [True] * N_RUNS
    # determinism: the parallel batch reproduces the serial batch bytes
    assert report.to_json() == serial.to_json()
    # measured wall-clock speedup, not the in-report estimate
    speedup = serial.wall_time / report.wall_time
    print(
        f"\nEXP-R2 {N_RUNS} runs: serial {serial.wall_time:.2f}s, "
        f"{report.jobs} jobs {report.wall_time:.2f}s -> {speedup:.2f}x measured "
        f"({report.speedup:.2f}x estimated in-report)"
    )
    benchmark.extra_info["serial_wall_s"] = round(serial.wall_time, 3)
    benchmark.extra_info["measured_speedup"] = round(speedup, 2)
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 1.5, (
            f"expected >=1.5x on {os.cpu_count()} cores, got {speedup:.2f}x"
        )


def test_runner_overhead_serial(benchmark):
    """jobs=1 must add no measurable machinery over a plain loop —
    the engine is free when parallelism is off."""
    report = run_many(benchmark, _specs()[:4], jobs=1)
    assert all(r.ok for r in report.results)
    assert report.speedup <= 1.05  # serial path: wall == sum of runs
