"""EXP-R2 — resilience overhead: checkpointing and supervised sweeps.

The acceptance bound for the checkpoint/restore subsystem: at the
default checkpoint cadence (``DEFAULT_INTERVAL`` cycles) the
advance/capture/save loop must cost **under 15%** wall-clock over an
uninterrupted ``run()`` of the same workload — while producing a
byte-identical result.  Also measured: the cost of one restore (replay
to the boundary) and the end-to-end supervised sweep vs the plain
parallel runner.
"""

import json
import statistics
import time

from conftest import run_once

from repro.resilience.snapshot import SystemSnapshot, capture, restore
from repro.resilience.supervisor import DEFAULT_INTERVAL, Supervisor
from repro.runner import ParallelRunner, RunSpec
from repro.workloads import conformance_run

FACTORY = "repro.workloads:conformance_run"
KWARGS = {"graph": "diamond", "payload_len": 8192,
          "fault_spec": "chaos", "fault_seed": 0}


def _build():
    system, graph = conformance_run(**KWARGS)
    system.configure(graph)
    return system


def _blob(result):
    return json.dumps(result.to_dict(include_histories=True), sort_keys=True)


def plain_run():
    return _build().run()


def checkpointed_run(path, interval=DEFAULT_INTERVAL):
    """The supervisor's worker loop: advance, checkpoint, repeat."""
    system = _build()
    written = 0
    finished = False
    while not finished:
        finished = system.advance(system.sim.now + interval)
        if finished or system.sim.peek() is None:
            break
        capture(system, FACTORY, KWARGS).save(path)
        written += 1
    return system.run(), written


def _median_wall(fn, rounds=3):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def test_checkpoint_overhead_under_15pct(benchmark, tmp_path):
    """The acceptance bound, measured at the default cadence."""
    path = str(tmp_path / "bench.ckpt.json")
    base = plain_run()  # also warms caches/imports
    ckpt_result, written = checkpointed_run(path)
    assert written >= 3, "workload must cross several checkpoint boundaries"
    assert _blob(ckpt_result) == _blob(base), "checkpointing changed the run"

    t_plain = _median_wall(plain_run)
    t_ckpt = _median_wall(lambda: checkpointed_run(path))
    overhead = t_ckpt / t_plain - 1.0
    print(f"\nEXP-R2 checkpoint overhead at interval={DEFAULT_INTERVAL}: "
          f"{t_plain * 1e3:.0f} ms -> {t_ckpt * 1e3:.0f} ms "
          f"({overhead * 100:+.1f}%, {written} checkpoints over "
          f"{base.cycles} cycles)")
    run_once(benchmark, lambda: checkpointed_run(path))
    benchmark.extra_info["checkpoints_written"] = written
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 1)
    assert overhead < 0.15, (
        f"checkpoint overhead {overhead * 100:.1f}% exceeds the 15% budget"
    )


def test_restore_replays_to_the_boundary(benchmark, tmp_path):
    """Restore cost is the replay to the captured cycle — bounded by
    one plain run — and the restored run finishes byte-identically."""
    base = plain_run()
    path = str(tmp_path / "restore.ckpt.json")
    system = _build()
    assert not system.advance(base.cycles // 2)
    capture(system, FACTORY, KWARGS).save(path)
    snap = SystemSnapshot.load(path)
    restored = run_once(benchmark, lambda: restore(snap))
    assert restored.sim.now == base.cycles // 2
    assert _blob(restored.run()) == _blob(base)
    benchmark.extra_info["replay_cycles"] = snap.cycle


def test_supervised_sweep_vs_plain_runner(benchmark, tmp_path):
    """End-to-end: a supervised 4-run sweep, byte-identical report to
    the plain runner; the wall-clock delta is the price of supervision
    (worker processes + checkpoint files + liveness polling)."""
    specs = [
        RunSpec(conformance_run,
                {"graph": g, "payload_len": 4096, "fault_spec": "chaos",
                 "fault_seed": s}, label=f"bench-{g}-{s}")
        for g in ("pipeline", "diamond") for s in (0, 1)
    ]
    t0 = time.perf_counter()
    plain = ParallelRunner(jobs=2).run(specs)
    t_plain = time.perf_counter() - t0
    sup = Supervisor(checkpoint_dir=str(tmp_path / "sweep"),
                     interval=DEFAULT_INTERVAL, jobs=2)
    report = run_once(benchmark, lambda: sup.run(specs))
    assert report.to_json() == plain.to_json()
    benchmark.extra_info["plain_wall_s"] = round(t_plain, 3)
    benchmark.extra_info["supervised_wall_s"] = round(report.wall_time, 3)
    print(f"\nEXP-R2 supervised sweep: plain {t_plain:.2f}s vs "
          f"supervised {report.wall_time:.2f}s (4 runs, jobs=2)")
