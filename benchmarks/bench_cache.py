"""EXP-A3 — §7 design-space exploration: shell caching strategies.

"Experiments include caching strategies in the shell (e.g. varying
cache size, cache prefetching or not)."  Decode the same stream while
sweeping prefetch depth, cache line size and coherency scheme; report
execution time, stall cycles and hit rate.
"""

from conftest import run_once

from repro import DECODE_MAPPING, ShellParams, SystemParams, build_mpeg_instance, decode_graph


def run(bitstream, shell=None, sys_params=None):
    system = build_mpeg_instance(params=sys_params, shell=shell)
    system.configure(decode_graph(bitstream, mapping=DECODE_MAPPING))
    return system.run()


def test_prefetch_sweep(benchmark, small_content):
    _params, _frames, bitstream, _recon, _stats = small_content
    base = run_once(benchmark, lambda: run(bitstream))
    print("\nEXP-A3 prefetch depth (lines fetched ahead on GetSpace/Read):")
    print(f"{'ahead':>6} {'cycles':>9} {'vs 2':>7} {'stall cycles':>13}")
    rows = []
    for pf in (0, 1, 2, 4, 8):
        r = run(bitstream, shell=ShellParams(prefetch_lines=pf))
        stalls = sum(t.stall_cycles for t in r.tasks.values())
        rows.append((pf, r.cycles, stalls))
        print(f"{pf:>6} {r.cycles:>9} {r.cycles / base.cycles:>7.3f} {stalls:>13}")
    # prefetching reduces stall time (the paper's §5.2 purpose)
    assert rows[-1][2] < rows[0][2]
    benchmark.extra_info["stall_reduction"] = round(rows[0][2] / max(1, rows[-1][2]), 2)


def test_cache_line_size_sweep(benchmark, small_content):
    _params, _frames, bitstream, _recon, _stats = small_content
    benchmark.pedantic(lambda: run(bitstream, shell=ShellParams(cache_line=64)), rounds=1, iterations=1)
    print("\nEXP-A3 cache line size:")
    print(f"{'line B':>7} {'cycles':>9} {'rlsq hit rate':>14}")
    for line in (16, 32, 64, 128):
        r = run(bitstream, shell=ShellParams(cache_line=line))
        print(f"{line:>7} {r.cycles:>9} {100 * r.cache_hit_rate['rlsq']:>13.1f}%")


def test_explicit_vs_snooping_coherency(benchmark, small_content):
    """§5.2: explicit GetSpace/PutSpace coherency vs a snooping cost
    model whose broadcast overhead scales with the shell count."""
    _params, _frames, bitstream, _recon, _stats = small_content
    explicit = run_once(benchmark, lambda: run(bitstream))
    print("\nEXP-A3 coherency scheme (5-shell instance):")
    print(f"{'scheme':>22} {'cycles':>9} {'vs explicit':>12}")
    print(f"{'explicit (Eclipse)':>22} {explicit.cycles:>9} {1.0:>12.3f}")
    for snoop in (1, 2, 4):
        r = run(
            bitstream,
            sys_params=SystemParams(
                dram_latency=60, coherency="snooping", snoop_cycles_per_shell=snoop
            ),
        )
        label = f"snooping ({snoop} cyc/shell)"
        print(f"{label:>22} {r.cycles:>9} {r.cycles / explicit.cycles:>12.3f}")
        assert r.cycles > explicit.cycles
