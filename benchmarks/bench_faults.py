"""EXP-R1 — robustness overhead: the fault-injection & recovery layer.

Measures what the cumulative-credit protocol, watchdog and deadlock
monitor cost when *no* faults are active (pure overhead), and how
gracefully throughput degrades as the fault rate rises while histories
stay byte-identical to the Kahn oracle.
"""

from conftest import run_once

from repro import ApplicationGraph, CoprocessorSpec, EclipseSystem, FaultPlan, SystemParams, TaskNode
from repro.kahn import FunctionalExecutor
from repro.kahn.library import ConsumerKernel, ProducerKernel

PAYLOAD = bytes((i * 7 + 1) % 256 for i in range(32 * 1024))
CHUNK = 64


def pipe():
    g = ApplicationGraph("faulted-pipe")
    g.add_task(TaskNode("src", lambda: ProducerKernel(PAYLOAD, chunk=CHUNK, compute_cycles=5), ProducerKernel.PORTS))
    g.add_task(TaskNode("dst", lambda: ConsumerKernel(chunk=CHUNK, compute_cycles=5), ConsumerKernel.PORTS))
    g.connect("src.out", "dst.in", buffer_size=512)
    return g


def run(plan=None, watchdog=None):
    params = SystemParams(sram_size=128 * 1024, watchdog_timeout=watchdog)
    system = EclipseSystem([CoprocessorSpec("p"), CoprocessorSpec("c")], params, faults=plan)
    system.configure(pipe())
    return system.run()


def test_recovery_machinery_overhead(benchmark):
    """Watchdog + monitors with zero faults: the no-fault run must cost
    (nearly) nothing extra."""
    base = run()
    result = run_once(benchmark, lambda: run(watchdog=2000))
    assert result.completed
    assert result.histories["s_src_out"] == PAYLOAD
    overhead = result.cycles / base.cycles - 1.0
    print(f"\nEXP-R1 overhead: {base.cycles} -> {result.cycles} cycles "
          f"({overhead * 100:+.2f}% with watchdog armed, no faults)")
    assert result.cycles <= base.cycles * 1.05
    benchmark.extra_info["watchdog_overhead_pct"] = overhead * 100


def test_throughput_vs_fault_rate(benchmark):
    """Graceful degradation: more drops cost cycles, never correctness."""
    golden = FunctionalExecutor(pipe()).run().histories
    print("\nEXP-R1 throughput vs drop rate (32 KiB payload, watchdog=1500):")
    print(f"{'drop':>6} {'cycles':>9} {'B/cycle':>8} {'dropped':>8} {'retries':>8}")
    prev = None
    for drop in (0.0, 0.02, 0.05, 0.10):
        plan = FaultPlan(seed=13, drop_prob=drop, drop_limit=256) if drop else None
        r = run(plan=plan, watchdog=1500)
        assert r.completed
        for name, hist in golden.items():
            assert r.histories[name] == hist, name
        rob = r.robustness or {}
        print(f"{drop:>6.2f} {r.cycles:>9} {len(PAYLOAD) / r.cycles:>8.2f} "
              f"{rob.get('messages_dropped', 0):>8} {rob.get('retries_sent', 0):>8}")
        prev = r
    benchmark.pedantic(lambda: run(plan=FaultPlan(seed=13, drop_prob=0.05, drop_limit=256), watchdog=1500),
                       rounds=1, iterations=1)
    assert prev.cycles >= run(watchdog=1500).cycles  # drops cost cycles
