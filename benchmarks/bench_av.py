"""EXP-F8 — Figure 8 running its full application mix.

The first Eclipse instance's complete workload in one run: a transport
stream demultiplexed in software on the DSP-CPU, audio decoded in
software, video decoded on the hardwired coprocessors — plus the §6
hardware/software split made measurable (how much of the total busy
time lands on the DSP vs the coprocessors).
"""

import numpy as np
from conftest import run_once

from repro.instance import av_decode_on_instance
from repro.media import encode_sequence
from repro.media.audio import BLOCK_SAMPLES, adpcm_encode, synthetic_pcm
from repro.media.transport import AUDIO_PID, TS_PACKET, VIDEO_PID, ts_mux


def test_full_section6_application(benchmark, small_content):
    params, frames, video_es, recon, _stats = small_content
    pcm = synthetic_pcm(BLOCK_SAMPLES * 6)
    audio_es = adpcm_encode(pcm)
    ts = ts_mux({VIDEO_PID: video_es, AUDIO_PID: audio_es})

    def run():
        return av_decode_on_instance(ts, params, len(frames))

    system, result = run_once(benchmark, run)
    assert result.completed

    sw_busy = sum(t.busy_cycles for t in result.tasks.values() if t.coprocessor == "dsp")
    hw_busy = sum(t.busy_cycles for t in result.tasks.values() if t.coprocessor != "dsp")
    print("\nEXP-F8 (full Figure 8 application):")
    print(f"  transport stream: {len(ts)} B ({len(ts) // TS_PACKET} packets)")
    print(f"  completed in {result.cycles} cycles")
    print(f"  software (DSP) busy cycles:   {sw_busy:>8} "
          f"({100 * sw_busy / (sw_busy + hw_busy):.1f}% of task time)")
    print(f"  hardwired coprocessor cycles: {hw_busy:>8}")
    for name in sorted(result.utilization):
        print(f"    {name:>5} utilization: {100 * result.utilization[name]:5.1f}%")

    # the §6 split: hardwired units carry the bulk of the media work
    assert hw_busy > 1.5 * sw_busy
    # video output is bit-exact (spot check one frame)
    disp = next(
        row.kernel
        for shell in system.shells.values()
        for row in shell.task_table
        if row.name == "disp"
    )
    assert np.array_equal(disp.display_frames()[0].y, recon[0].y)
    benchmark.extra_info["cycles"] = result.cycles
    benchmark.extra_info["sw_fraction"] = round(sw_busy / (sw_busy + hw_busy), 3)


def test_av_vs_video_only_overhead(benchmark, small_content):
    """Adding software demux+audio costs little wall-clock: the DSP
    absorbs it while the coprocessors keep the video pipeline busy."""
    from repro.instance import decode_on_instance

    params, frames, video_es, _recon, _stats = small_content
    pcm = synthetic_pcm(BLOCK_SAMPLES * 6)
    ts = ts_mux({VIDEO_PID: video_es, AUDIO_PID: adpcm_encode(pcm)})

    _s1, video_only = run_once(benchmark, lambda: decode_on_instance(video_es))
    _s2, av = av_decode_on_instance(ts, params, len(frames))
    overhead = av.cycles / video_only.cycles
    print(f"\nEXP-F8 A/V vs video-only: {av.cycles} vs {video_only.cycles} cycles "
          f"({overhead:.2f}x)")
    assert overhead < 1.8
    benchmark.extra_info["av_overhead"] = round(overhead, 3)
