"""EXP-A2 — §2.3/§5.3: distributed shells vs centralized CPU sync.

"A coprocessor architecture where a single CPU synchronizes all
coprocessors is not scalable as the interrupt rate will overload the
CPU with an increasing number of coprocessors."

Measured: the same per-pair workload run with Eclipse's distributed
shell synchronization and with every GetSpace/PutSpace serialized
through one CPU.  Distributed completion time stays flat as pairs are
added; centralized time grows and the CPU utilization approaches 1.
The analytic interrupt-load model prints alongside.
"""

from conftest import run_once

from repro.instance.baselines import centralized_cpu_load, sync_scalability_experiment


def test_sync_scalability(benchmark):
    points = run_once(benchmark, lambda: sync_scalability_experiment([1, 2, 4, 8]))
    print("\nEXP-A2 distributed vs centralized synchronization:")
    print(f"{'coprocs':>8} {'distributed':>12} {'centralized':>12} {'slowdown':>9} {'CPU util':>9}")
    for p in points:
        print(
            f"{p.n_coprocessors:>8} {p.cycles_distributed:>12} "
            f"{p.cycles_centralized:>12} {p.slowdown:>9.2f} "
            f"{100 * p.cpu_utilization:>8.1f}%"
        )
    # distributed: near-flat completion time (slight growth = shared
    # bus contention) while total work grows 8x
    assert points[-1].cycles_distributed < 2.0 * points[0].cycles_distributed
    # centralized: grows linearly with coprocessor count (the CPU
    # serializes every sync op) and saturates the CPU
    assert points[-1].cycles_centralized > 6.0 * points[0].cycles_centralized
    assert points[-1].slowdown > 4.0
    assert points[-1].cpu_utilization > 0.9
    benchmark.extra_info["slowdown_at_16"] = round(points[-1].slowdown, 2)
    benchmark.extra_info["cpu_util_at_16"] = round(points[-1].cpu_utilization, 3)


def test_analytic_interrupt_load(benchmark):
    """Paper §5.3: sync rates of 10-100 kHz per coprocessor."""
    benchmark(lambda: centralized_cpu_load(8, 100e3))
    print("\nEXP-A2 analytic CPU load (40-cycle handler, 150 MHz CPU):")
    print(f"{'coprocs':>8} {'10 kHz sync':>12} {'100 kHz sync':>13}")
    for n in (1, 2, 4, 8, 16, 32):
        lo = centralized_cpu_load(n, 10e3)
        hi = centralized_cpu_load(n, 100e3)
        print(f"{n:>8} {100 * lo:>11.1f}% {100 * hi:>12.1f}%")
    # at the paper's upper sync rate, a handful of coprocessors
    # saturates the CPU
    assert centralized_cpu_load(32, 100e3) > 0.85
