#!/usr/bin/env python
"""Network-ingest benchmark: transport cost, overhead gate, loss sweep.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_net.py [--quick] [--no-append]

Three questions, answered with numbers and asserted with gates:

* **What does the ingest pre-pass cost?**  Raw :func:`repro.net.ingest`
  throughput on a realistic TS, clean and under each preset — the
  event-loop cost of FEC, RTX and reordering, independent of the DES.
* **Is the clean path free?**  At 0% loss the lossy pipeline must be
  byte-identical to the packet-free one (asserted) and its end-to-end
  wall time (ingest + build + run) must stay within ``--max-overhead``
  of the packet-free baseline: the transport may not tax runs that
  don't need it.
* **How does decode time scale with loss?**  A drop sweep on the full
  DES: cycles stay flat (concealment replaces decode work instead of
  stalling the pipeline) while lost slots / concealed frames grow.

Each invocation appends one entry to ``BENCH_net.json`` at the repo
root, so ingest cost is tracked over time like the core-engine numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_net.json")
BENCH_SCHEMA = "repro.bench_net/1"
PRESETS = ("none", "mild", "moderate", "heavy", "jitter")


def _content(quick: bool):
    from repro.workloads import _av_transport_stream

    if quick:
        return _av_transport_stream(48, 32, 3, gop_n=3, gop_m=1, audio_blocks=3)
    return _av_transport_stream(96, 64, 6, gop_n=6, gop_m=3, audio_blocks=8)


def bench_ingest(ts: bytes, repeats: int) -> list:
    """Raw ingest cost per preset (no DES involved)."""
    from repro.net import ingest
    from repro.sim.faults import LossPlan

    rows = []
    for preset in PRESETS:
        plan = LossPlan.parse(preset, seed=1)
        best = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = ingest(ts, plan)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        rows.append({
            "preset": preset,
            "ingest_s": round(best, 5),
            "ts_bytes": len(ts),
            "mb_per_s": round(len(ts) / best / 1e6, 1) if best else 0.0,
            "slots_lost": res.stats.slots_lost,
            "fec_recovered": res.stats.fec_recovered,
            "rtx_recovered": res.stats.rtx_recovered,
        })
    return rows


def _timed_decode(codec, ts, frames, lossy: bool, loss_spec: str = "none"):
    """(wall seconds incl. build, result) for one full DES decode."""
    from repro.core.config import SystemParams
    from repro.instance.eclipse_mpeg import build_mpeg_instance
    from repro.media.av_pipeline import (
        AV_DECODE_MAPPING,
        av_decode_graph,
        lossy_av_decode_graph,
    )
    from repro.net import ingest
    from repro.sim.faults import LossPlan

    t0 = time.perf_counter()
    if lossy:
        res = ingest(ts, LossPlan.parse(loss_spec, seed=1))
        graph = lossy_av_decode_graph(res, codec, frames,
                                      mapping=AV_DECODE_MAPPING, name="av_decode")
    else:
        graph = av_decode_graph(ts, codec, frames, mapping=AV_DECODE_MAPPING)
    system = build_mpeg_instance(SystemParams())
    system.configure(graph)
    result = system.run()
    return time.perf_counter() - t0, result


def bench_overhead(codec, ts, frames, repeats: int) -> dict:
    """The 0%-loss gate: byte-identity plus end-to-end overhead."""
    plain_s = lossy_s = None
    for _ in range(repeats):
        t, plain_result = _timed_decode(codec, ts, frames, lossy=False)
        plain_s = t if plain_s is None else min(plain_s, t)
        t, lossy_result = _timed_decode(codec, ts, frames, lossy=True)
        lossy_s = t if lossy_s is None else min(lossy_s, t)
    identical = (plain_result.to_dict(include_histories=True)
                 == lossy_result.to_dict(include_histories=True))
    return {
        "plain_s": round(plain_s, 4),
        "lossy_0pct_s": round(lossy_s, 4),
        "overhead": round(lossy_s / plain_s - 1.0, 4) if plain_s else 0.0,
        "identical": identical,
    }


def bench_loss_sweep(codec, ts, frames, drops) -> list:
    """Full-DES decode under growing drop rates."""
    rows = []
    for drop in drops:
        # recovery off: every drop becomes an erasure, so the sweep
        # shows pure concealment scaling (FEC/RTX efficacy is the
        # ingest table's and the conformance differential's job)
        spec = f"drop={drop},fec_group=0,max_rtx=0,seed=1"
        elapsed, result = _timed_decode(codec, ts, frames, lossy=True,
                                        loss_spec=spec if drop else "none")
        deg = result.degradation or {"tasks": {}}
        video = deg["tasks"].get("vld", {})
        transport = deg["tasks"].get("demux", {})
        rows.append({
            "drop": drop,
            "run_s": round(elapsed, 4),
            "cycles": result.cycles,
            "completed": result.completed,
            "slots_lost": transport.get("packets_erased", 0),
            "frames_concealed": video.get("frames_concealed", 0),
        })
    return rows


def append_trajectory(entry: dict, path: str = BENCH_PATH) -> None:
    trajectory = []
    if os.path.exists(path):
        with open(path) as fh:
            trajectory = json.load(fh)
    trajectory.append(entry)
    with open(path, "w") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small content, 1 repeat (the CI smoke mode)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timing repeats (best-of); default 3, 1 with --quick")
    ap.add_argument("--max-overhead", type=float, default=0.10,
                    help="fail if the 0%%-loss lossy pipeline is more than "
                    "this fraction slower end-to-end (default: 0.10)")
    ap.add_argument("--no-append", action="store_true",
                    help="do not append to BENCH_net.json")
    args = ap.parse_args(argv)
    repeats = args.repeats or (1 if args.quick else 3)

    codec, ts = _content(args.quick)
    frames = 3 if args.quick else 6

    ingest_rows = bench_ingest(ts, repeats)
    print(f"{'preset':<10} {'ingest s':>9} {'MB/s':>7} {'lost':>5} "
          f"{'fec':>4} {'rtx':>4}")
    for row in ingest_rows:
        print(f"{row['preset']:<10} {row['ingest_s']:>9.5f} "
              f"{row['mb_per_s']:>7.1f} {row['slots_lost']:>5} "
              f"{row['fec_recovered']:>4} {row['rtx_recovered']:>4}")

    overhead = bench_overhead(codec, ts, frames, repeats)
    print(f"\n0% loss end-to-end: plain {overhead['plain_s']:.3f}s, "
          f"lossy-path {overhead['lossy_0pct_s']:.3f}s "
          f"({overhead['overhead']:+.1%}), "
          f"identical={overhead['identical']}")

    drops = (0.0, 0.1, 0.2) if args.quick else (0.0, 0.05, 0.1, 0.15, 0.2)
    sweep_rows = bench_loss_sweep(codec, ts, frames, drops)
    print(f"\n{'drop':>5} {'run s':>8} {'cycles':>9} {'lost':>5} {'concealed':>10}")
    for row in sweep_rows:
        print(f"{row['drop']:>5.2f} {row['run_s']:>8.3f} {row['cycles']:>9} "
              f"{row['slots_lost']:>5} {row['frames_concealed']:>10}")

    entry = {
        "schema": BENCH_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": args.quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "ingest": ingest_rows,
        "overhead": overhead,
        "loss_sweep": sweep_rows,
    }
    if not args.no_append:
        append_trajectory(entry)
        print(f"appended to {os.path.relpath(BENCH_PATH)}")

    failures = []
    if not overhead["identical"]:
        failures.append("0%-loss lossy pipeline is NOT byte-identical to the "
                        "packet-free pipeline")
    if overhead["overhead"] > args.max_overhead:
        failures.append(
            f"0%-loss ingest overhead {overhead['overhead']:.1%} exceeds the "
            f"{args.max_overhead:.0%} gate")
    for row in sweep_rows:
        if not row["completed"]:
            failures.append(f"decode did not complete at drop={row['drop']}")
    if failures:
        print("\nFAIL:", *failures, sep="\n  ")
        return 1
    print("\nall network gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
