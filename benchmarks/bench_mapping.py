"""EXP-F3 — Figure 3: application-to-architecture mapping with
multi-tasking coprocessors.

Two applications (encode + decode) mapped onto one five-unit instance;
shows which tasks time-share which coprocessor and benchmarks the
combined run.
"""

from conftest import run_once

from repro import SystemParams, build_mpeg_instance, timeshift_on_instance
from repro.trace import collect_counters


def test_two_apps_share_coprocessors(benchmark, small_content):
    params, frames, bitstream, _recon, _stats = small_content

    def run():
        system = build_mpeg_instance(SystemParams(sram_size=96 * 1024, dram_latency=60))
        return timeshift_on_instance(frames, params, bitstream, system=system)

    system, result = run_once(benchmark, run)
    assert result.completed
    counters = collect_counters(system)
    print("\nEXP-F3 mapping (two applications on one instance):")
    total_tasks = 0
    for cop in ("vld", "rlsq", "dct", "mcme", "dsp"):
        tasks = sorted(counters["shells"][cop]["tasks"])
        total_tasks += len(tasks)
        switches = counters["shells"][cop]["ops"]["task_switches"]
        print(f"  {cop:>5}: {tasks}  ({switches} task switches)")
    print(f"  cycles: {result.cycles}")
    assert total_tasks == 12  # 7 encode + 5 decode tasks
    # real time-sharing happened on the multi-task shells
    assert counters["shells"]["rlsq"]["ops"]["task_switches"] > 5
    assert counters["shells"]["dct"]["ops"]["task_switches"] > 5
    benchmark.extra_info["cycles"] = result.cycles
    benchmark.extra_info["task_switches_rlsq"] = counters["shells"]["rlsq"]["ops"]["task_switches"]


def test_mapping_flexibility_same_graph_different_instances(benchmark, small_content):
    """The same application graph runs on differently sized instances —
    the configurability claim (§3)."""
    from repro import CoprocessorSpec, EclipseSystem, decode_graph

    _params, _frames, bitstream, _recon, _stats = small_content

    def run_on(n_coprocs):
        system = EclipseSystem(
            [CoprocessorSpec(f"cp{i}") for i in range(n_coprocs)],
            SystemParams(dram_latency=60),
        )
        system.configure(decode_graph(bitstream))  # auto-mapped round-robin
        return system.run()

    results = {n: run_once(benchmark, lambda n=n: run_on(n)) if n == 5 else run_on(n) for n in (1, 2, 5)}
    print("\nEXP-F3 same decode graph on 1/2/5-coprocessor instances:")
    base = results[1].cycles
    for n, res in sorted(results.items()):
        assert res.completed
        print(f"  {n} coprocessors: {res.cycles:>8} cycles  (speedup {base / res.cycles:4.2f}x)")
    # more coprocessors must help (task parallelism is real)
    assert results[5].cycles < results[1].cycles
