#!/usr/bin/env python
"""Solver benchmark: statically-pruned sweep vs the exhaustive grid.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_solve.py [--quick] [--no-append]

Two measurements, both gated on *agreement* before any number is
reported:

1. **Pruned sweep vs exhaustive grid.**  A parameter grid over the
   instance SRAM (some budgets below the declared buffer plan, so those
   points cannot configure) is explored twice: exhaustively — build,
   configure, simulate every point, catching the failures — and with
   ``explore.sweep(prune=feasibility_pruner(...))``, which refutes the
   infeasible points from the shared constraint model without a single
   simulated cycle.  The gate: both modes must agree exactly on which
   points are viable, and the surviving points' cycle counts must be
   identical.  The reported win is the fraction of simulations the
   pruner avoided and the wall-time ratio.

2. **Solve round trips.**  ``repro solve`` derives a configuration per
   shipped workload; the gate is the PR's acceptance contract — zero
   linter findings on every derived configuration.

Each invocation appends one entry to the ``BENCH_solve.json``
trajectory at the repo root (same shape as ``BENCH_core.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_solve.json")
BENCH_SCHEMA = "repro.bench_solve/1"

PAYLOAD = bytes((i * 13) % 256 for i in range(4096))


def grid_build(shell, sys_params):
    """One sweep point: the two-task quickstart shape with a declared
    128 B buffer — budgets below that are statically infeasible."""
    from repro.core import CoprocessorSpec, EclipseSystem
    from repro.kahn import ApplicationGraph, TaskNode
    from repro.kahn.library import ConsumerKernel, ProducerKernel

    g = ApplicationGraph("bench-solve")
    g.add_task(TaskNode("src", lambda: ProducerKernel(PAYLOAD, chunk=32),
                        ProducerKernel.PORTS))
    g.add_task(TaskNode("dst", lambda: ConsumerKernel(chunk=32),
                        ConsumerKernel.PORTS))
    g.connect("src.out", "dst.in", buffer_size=128)
    system = EclipseSystem(
        [CoprocessorSpec("p", shell=shell), CoprocessorSpec("c", shell=shell)],
        sys_params,
    )
    return system, g


def _axes(quick: bool):
    from repro.explore import system_axis

    srams = [48, 64, 96, 160, 256, 32 * 1024]
    widths = [8, 16] if quick else [4, 8, 16, 32]
    return [system_axis("sram_size", srams), system_axis("bus_width", widths)]


def bench_pruned_sweep(quick: bool) -> dict:
    from repro.explore import (
        _enumerate_combos,
        _resolve_combos,
        feasibility_pruner,
        sweep,
    )
    from repro.core import ShellParams
    from repro.core.config import SystemParams

    axes = _axes(quick)
    base_shell, base_system = ShellParams(), SystemParams()

    # exhaustive: simulate everything, catch the points that cannot even
    # configure — the cost the pruner is supposed to save
    t0 = time.perf_counter()
    exhaustive_ok, exhaustive_failed = {}, {}
    combos = _enumerate_combos(axes, "factorial")
    for combo, shell, sys_params in _resolve_combos(
        combos, axes, base_shell, base_system
    ):
        key = tuple(sorted(combo.items()))
        try:
            system, graph = grid_build(shell, sys_params)
            system.configure(graph)
            exhaustive_ok[key] = system.run().cycles
        except Exception as e:  # noqa: BLE001 — any failure means "not viable"
            exhaustive_failed[key] = f"{type(e).__name__}: {e}"
    exhaustive_s = time.perf_counter() - t0

    t1 = time.perf_counter()
    dropped = []
    points = sweep(grid_build, axes=axes,
                   prune=feasibility_pruner(grid_build), pruned=dropped)
    pruned_s = time.perf_counter() - t1
    pruned_ok = {tuple(sorted(p.settings.items())): p.cycles for p in points}
    pruned_dropped = {tuple(sorted(c.items())): reason for c, reason in dropped}

    # the agreement gate: static refutation must match dynamic failure
    agree = (
        set(pruned_ok) == set(exhaustive_ok)
        and set(pruned_dropped) == set(exhaustive_failed)
        and all(pruned_ok[k] == exhaustive_ok[k] for k in pruned_ok)
    )
    total = len(combos)
    return {
        "grid_points": total,
        "viable": len(exhaustive_ok),
        "pruned": len(pruned_dropped),
        "sims_avoided_frac": round(len(pruned_dropped) / total, 3),
        "exhaustive_s": round(exhaustive_s, 4),
        "pruned_s": round(pruned_s, 4),
        "time_ratio": round(exhaustive_s / pruned_s, 3) if pruned_s else 0.0,
        "agree": agree,
    }


def bench_solve_round_trips(quick: bool) -> list:
    from repro.verify.solve_run import SOLVE_MODELS, check_solution, solve_workload

    names = (
        ["quickstart", "conformance-pipeline", "conformance-diamond"]
        if quick else sorted(SOLVE_MODELS)
    )
    rows = []
    for name in names:
        t0 = time.perf_counter()
        solution = solve_workload(name)
        solve_s = time.perf_counter() - t0
        findings = check_solution(name, solution).diagnostics
        rows.append({
            "workload": name,
            "solve_s": round(solve_s, 4),
            "total_bytes": solution.total_bytes,
            "grain": solution.grain,
            "refinement_rounds": solution.refinement_rounds,
            "findings": len(findings),
        })
    return rows


def append_trajectory(entry: dict, path: str = BENCH_PATH) -> None:
    trajectory = []
    if os.path.exists(path):
        with open(path) as fh:
            trajectory = json.load(fh)
    trajectory.append(entry)
    with open(path, "w") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small grid + 3 workloads (the CI smoke mode)")
    ap.add_argument("--no-append", action="store_true",
                    help="do not append to BENCH_solve.json")
    args = ap.parse_args(argv)

    sweep_row = bench_pruned_sweep(args.quick)
    print(f"grid: {sweep_row['grid_points']} points, "
          f"{sweep_row['viable']} viable, {sweep_row['pruned']} pruned "
          f"({sweep_row['sims_avoided_frac']:.0%} of simulations avoided); "
          f"exhaustive {sweep_row['exhaustive_s']:.3f}s vs pruned "
          f"{sweep_row['pruned_s']:.3f}s ({sweep_row['time_ratio']:.2f}x)")

    solve_rows = bench_solve_round_trips(args.quick)
    print(f"{'workload':<24} {'solve s':>8} {'bytes':>7} {'grain':>6} "
          f"{'refine':>7} {'findings':>9}")
    for row in solve_rows:
        print(f"{row['workload']:<24} {row['solve_s']:>8.3f} "
              f"{row['total_bytes']:>7} {str(row['grain']):>6} "
              f"{row['refinement_rounds']:>7} {row['findings']:>9}")

    entry = {
        "schema": BENCH_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": args.quick,
        "python": platform.python_version(),
        "sweep": sweep_row,
        "solve": solve_rows,
    }
    if not args.no_append:
        append_trajectory(entry)
        print(f"appended to {os.path.relpath(BENCH_PATH)}")

    failures = []
    if not sweep_row["agree"]:
        failures.append(
            "pruned sweep and exhaustive grid DISAGREE on viable points "
            "— the static constraint model is unsound or incomplete here"
        )
    if sweep_row["pruned"] == 0:
        failures.append("grid contained no infeasible points — the bench "
                        "is not exercising the pruner")
    for row in solve_rows:
        if row["findings"]:
            failures.append(
                f"{row['workload']}: derived configuration produced "
                f"{row['findings']} linter finding(s) — the round-trip "
                "contract is broken"
            )
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
