"""EXP-F9 — Figure 9: the performance visualization views.

Runs an SD-style decode with the §5.4 sampling process attached and
renders both of the paper's views: the architecture view (coprocessor
and bus utilization) and the application view (per-task progress/stall
and per-stream buffer statistics).
"""

from conftest import run_once

from repro import DECODE_MAPPING, Sampler, build_mpeg_instance, decode_graph
from repro.trace import (
    render_application_view,
    render_architecture_view,
    render_fill_traces,
    series_to_csv,
)


def test_figure9_views(benchmark, small_content):
    _params, _frames, bitstream, _recon, _stats = small_content

    def run():
        system = build_mpeg_instance()
        system.configure(decode_graph(bitstream, mapping=DECODE_MAPPING))
        sampler = Sampler(system, interval=200)
        result = system.run()
        return system, sampler, result

    _system, sampler, result = run_once(benchmark, run)
    assert result.completed
    arch = render_architecture_view(result)
    app = render_application_view(result)
    fills = render_fill_traces(
        sampler.stream_fill,
        buffer_sizes={n: s.buffer_size for n, s in result.streams.items()},
        width=80,
    )
    print("\nEXP-F9 (Figure 9 views):")
    print(arch)
    print()
    print(app)
    print()
    print(fills)
    # the views carry the paper's content
    for needle in ("mcme", "read bus", "hit rate"):
        assert needle in arch
    for needle in ("rlsq", "stall", "denied"):
        assert needle in app
    assert "coef->rlsq" in fills
    benchmark.extra_info["utilization"] = {
        k: round(v, 3) for k, v in result.utilization.items()
    }


def test_viewer_csv_export(benchmark, small_content):
    """The viewer is separate from the simulator (paper §7) — its CSV
    export feeds any external plotting tool."""
    _params, _frames, bitstream, _recon, _stats = small_content
    system = build_mpeg_instance()
    system.configure(decode_graph(bitstream, mapping=DECODE_MAPPING))
    sampler = Sampler(system, interval=200)
    system.run()
    csv = benchmark(lambda: series_to_csv(sampler.stream_fill))
    lines = csv.splitlines()
    assert lines[0] == "name,time,value"
    assert len(lines) > 50
