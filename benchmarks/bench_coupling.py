"""EXP-A7 — §2.2: tightness of coupling, regular vs irregular tasks.

"Regular tasks, such as in linear video filtering where worst-case
communication requirements equal the average case, allow a tight
coupling with minimal buffering.  Irregular tasks demand less tight
coupling to allow individual progress of tasks, leading to larger
buffer requirements."

Quantified three ways:

1. **communication regularity** — per-step I/O of the filter chain is
   perfectly constant (worst = average); the MPEG coefficient stream's
   packet sizes vary several-fold (worst >> average);
2. **provisioning** — a stream buffer must at least hold the largest
   GetSpace request, so the irregular stream must be provisioned for
   its *worst-case* packet: several times its average traffic, while
   the regular chain is provisioned at exactly its average;
3. **pipelining knee** — both workloads then need only ~2-3 of *their*
   units of elasticity to reach asymptotic speed, so total buffer
   demand per unit of useful data is several times higher for the
   irregular pipeline.
"""

import numpy as np
from conftest import run_once

from repro import (
    CoprocessorSpec,
    DECODE_MAPPING,
    EclipseSystem,
    SystemParams,
    build_mpeg_instance,
    decode_graph,
)
from repro.kahn import FunctionalExecutor
from repro.media.filters import filter_chain_graph
from repro.media.packets import HEADER_SIZE


def coef_packet_sizes(stats):
    """Actual VLD->RLSQ packet sizes from the encode statistics."""
    pairs = np.array(stats.mb_pairs)
    blocks = np.array(stats.mb_coded_blocks)
    return HEADER_SIZE + 2 * blocks + 3 * pairs


def test_communication_regularity(benchmark, small_content):
    _params, _frames, _bits, _recon, stats = small_content
    image = np.random.default_rng(3).integers(0, 256, (48, 64)).astype(np.uint8)

    def filter_steps():
        ex = FunctionalExecutor(filter_chain_graph(image))
        res = ex.run()
        return res.task_stats["hf"]

    hf = run_once(benchmark, filter_steps)
    per_step = hf.bytes_read / hf.steps_completed
    sizes = coef_packet_sizes(stats)
    cv = sizes.std() / sizes.mean()
    print("\nEXP-A7 communication regularity:")
    print(f"  filter chain: every step reads exactly {per_step:.0f} B (worst == average)")
    print(
        f"  MPEG coef stream: packets avg {sizes.mean():.0f} B, "
        f"max {sizes.max():.0f} B, CV {cv:.2f}, worst/avg {sizes.max() / sizes.mean():.1f}x"
    )
    assert per_step == 64.0  # constant by construction
    assert sizes.max() / sizes.mean() > 2.0
    assert cv > 0.4
    benchmark.extra_info["mpeg_worst_over_avg_packet"] = round(float(sizes.max() / sizes.mean()), 2)


def test_buffer_provisioning_ratio(benchmark, small_content):
    """The §2.2 consequence: the irregular stream's minimum buffer is
    worst-case-sized — several times its average traffic unit —
    while the regular chain is provisioned at 1x average."""
    _params, _frames, bitstream, _recon, stats = small_content
    sizes = coef_packet_sizes(stats)
    worst = int(sizes.max())
    avg = float(sizes.mean())

    # empirically: one worst-case packet of buffer suffices...
    def run_min():
        system = build_mpeg_instance()
        g = decode_graph(bitstream, mapping=DECODE_MAPPING, buffer_packets=1)
        system.configure(g)
        return system.run()

    result = run_once(benchmark, run_min)
    assert result.completed

    # ...but anything below the worst-case packet can never be granted
    from repro.core.shell import ShellProtocolError
    from repro.kahn.graph import ApplicationGraph

    system = build_mpeg_instance()
    g = decode_graph(bitstream, mapping=DECODE_MAPPING, buffer_packets=1)
    g.streams["coef"].buffer_size = worst - 8
    system.configure(g)
    try:
        system.run()
        under_provisioned_ok = True
    except ShellProtocolError:
        under_provisioned_ok = False
    assert not under_provisioned_ok

    print("\nEXP-A7 provisioning (minimum feasible buffer / average unit):")
    print(f"  regular filter chain: 1 row / 1 row = 1.0x")
    print(f"  MPEG coef stream: {worst} B worst-case / {avg:.0f} B average = {worst / avg:.1f}x")
    assert worst / avg > 2.0
    benchmark.extra_info["provisioning_ratio"] = round(worst / avg, 2)


def test_pipelining_knee(benchmark, small_content):
    """Elasticity units needed to reach asymptotic throughput."""
    _params, _frames, bitstream, _recon, _stats = small_content
    image = np.random.default_rng(3).integers(0, 256, (48, 64)).astype(np.uint8)

    def run_filters(rows):
        g = filter_chain_graph(image, buffer_rows=rows)
        s = EclipseSystem(
            [CoprocessorSpec(f"cp{i}") for i in range(5)],
            SystemParams(sram_size=128 * 1024),
        )
        s.configure(g)
        return s.run().cycles

    def run_mpeg(pkts):
        s = build_mpeg_instance()
        s.configure(decode_graph(bitstream, mapping=DECODE_MAPPING, buffer_packets=pkts))
        return s.run().cycles

    run_once(benchmark, lambda: run_filters(2))
    f = {k: run_filters(k) for k in (1, 2, 3, 4)}
    m = {k: run_mpeg(k) for k in (1, 2, 3, 4)}
    print("\nEXP-A7 elasticity sweep (cycles, normalized to 4 units):")
    print(f"{'units':>6} {'filters':>9} {'mpeg':>9}")
    for k in (1, 2, 3, 4):
        print(f"{k:>6} {f[k] / f[4]:>9.3f} {m[k] / m[4]:>9.3f}")
    # both need a couple of units of elasticity (pipelining), and both
    # converge by ~3 — but one MPEG 'unit' is a worst-case packet
    # (3.3x the average traffic), so the irregular pipeline's absolute
    # buffer bill is several times larger for the same behaviour.
    assert f[3] / f[4] < 1.05
    assert m[3] / m[4] < 1.05
    assert f[1] / f[4] > 1.2 and m[1] / m[4] > 1.2
