"""EXP-F10 — Figure 10: per-frame-type bottleneck shifting.

THE headline experiment: decode an IPBBPBB... GOP on the Figure 8
instance and show that "the overall performance is constrained by a
different task for each type of MPEG frame" — RLSQ on I frames, DCT on
P frames, MC on B frames — plus the buffer-filling traces whose
fluctuations follow the GOP structure.
"""

from conftest import run_once

from repro import DECODE_MAPPING, Sampler, build_mpeg_instance, decode_graph
from repro.trace.analysis import (
    bottleneck_by_frame_type,
    per_frame_type_fill,
    per_frame_type_service,
)
from repro.trace.viewer import render_fill_traces

TASK2COP = {"rlsq": "rlsq", "idct": "dct", "mc": "mcme"}
STREAMS = {
    "rlsq_in": ("coef", "rlsq"),
    "idct_in": ("dequant", "idct"),
    "mc_in": ("resid", "mc"),
}


def test_figure10_bottleneck_shift(benchmark, fig10_content):
    params, frames, bitstream, _recon, _stats = fig10_content

    def run():
        system = build_mpeg_instance()
        system.configure(decode_graph(bitstream, mapping=DECODE_MAPPING))
        sampler = Sampler(system, interval=250)
        result = system.run()
        return system, sampler, result

    _system, sampler, result = run_once(benchmark, run)
    assert result.completed

    plans = params.gop().coded_order(len(frames))
    service = per_frame_type_service(sampler, plans, params.mbs_per_frame, TASK2COP)
    fill = per_frame_type_fill(sampler, plans, params.mbs_per_frame, STREAMS)
    bottleneck = bottleneck_by_frame_type(service)

    print("\nEXP-F10 (Figure 10): per-frame-type service time (cycles/MB):")
    print(f"{'task':>6} {'I':>8} {'P':>8} {'B':>8}")
    for task in ("rlsq", "idct", "mc"):
        print(f"{task:>6} " + " ".join(f"{service[task].get(t, 0):>8.0f}" for t in "IPB"))
    print("\nmean input-buffer filling (bytes):")
    for label in ("rlsq_in", "idct_in", "mc_in"):
        print(f"{label:>8} " + " ".join(f"{fill[label].get(t, 0):>8.0f}" for t in "IPB"))
    print(f"\nmeasured bottlenecks: {bottleneck}")
    print("paper's Figure 10:    I->RLSQ, P->DCT, B->MC")

    marks = sampler.frame_boundaries("vld", params.mbs_per_frame)
    print("\nbuffer-filling traces (x = time, rows = streams):")
    print(
        render_fill_traces(
            {k: sampler.stream_fill[k] for k in STREAMS.values()},
            buffer_sizes={n: s.buffer_size for n, s in result.streams.items()},
            width=100,
            frame_marks=marks,
            frame_types=[p.frame_type.value for p in plans],
        )
    )

    # the paper's claim, as an assertion
    assert bottleneck == {"I": "rlsq", "P": "idct", "B": "mc"}
    benchmark.extra_info["bottlenecks"] = bottleneck
    benchmark.extra_info["service_cycles_per_mb"] = {
        task: {t: round(v) for t, v in per.items()} for task, per in service.items()
    }


def test_figure10_gop_fluctuations(benchmark, fig10_content):
    """'Large variations in buffer filling correspond to the GOP
    sequence of MPEG-2 frames' — quantified as the fill range."""
    params, frames, bitstream, _recon, _stats = fig10_content

    def run():
        system = build_mpeg_instance()
        system.configure(decode_graph(bitstream, mapping=DECODE_MAPPING))
        sampler = Sampler(system, interval=250)
        system.run()
        return sampler

    sampler = run_once(benchmark, run)
    print("\nEXP-F10 GOP-driven fill fluctuations:")
    for key in STREAMS.values():
        s = sampler.stream_fill[key]
        print(f"  {'->'.join(key):>16}: min {s.min():6.0f}  mean {s.mean():7.1f}  "
              f"max {s.max():7.0f}")
        # every trace swings over more than half its own peak
        assert s.max() - s.min() > 0.5 * s.max()
