"""EXP-A8 — §7: the gradual-refinement methodology, quantified.

"The simulation environment supports a design trajectory with gradual
refinement of Kahn application models into cycle-accurate Eclipse
coprocessor models."  Both abstraction levels of the video decoder are
run on the instance: the coarse model (VLD → one fused RLSQ+IDCT+MC
task → DISP) and the refined model (Figure 2's five tasks).  Outputs
are bit-identical — only the performance estimate changes: refinement
exposes the task-level parallelism the fused model serializes, and the
synchronization/communication costs the fused model hides.
"""

import numpy as np
from conftest import run_once

from repro import DECODE_MAPPING, build_mpeg_instance, decode_graph
from repro.media.refinement import decode_graph_coarse

COARSE_MAPPING = {"vld": "vld", "backend": "mcme", "disp": "dsp"}


def _disp_frames(system):
    disp = next(
        row.kernel
        for shell in system.shells.values()
        for row in shell.task_table
        if row.name == "disp"
    )
    return disp.display_frames()


def test_refinement_study(benchmark, small_content):
    _params, _frames, bitstream, recon, _stats = small_content

    def run_refined():
        system = build_mpeg_instance()
        system.configure(decode_graph(bitstream, mapping=DECODE_MAPPING))
        return system, system.run()

    def run_coarse():
        system = build_mpeg_instance()
        system.configure(decode_graph_coarse(bitstream, mapping=COARSE_MAPPING))
        return system, system.run()

    sys_r, refined = run_once(benchmark, run_refined)
    sys_c, coarse = run_coarse()
    assert refined.completed and coarse.completed

    # functional equality across abstraction levels (Kahn determinism)
    for a, b in zip(_disp_frames(sys_r), _disp_frames(sys_c)):
        assert np.array_equal(a.y, b.y)

    speedup = coarse.cycles / refined.cycles
    msgs_r = refined.messages_sent
    msgs_c = coarse.messages_sent
    print("\nEXP-A8 refinement study (coarse fused backend vs Figure 2 tasks):")
    print(f"{'model':>10} {'tasks':>6} {'cycles':>9} {'sync msgs':>10}")
    print(f"{'coarse':>10} {3:>6} {coarse.cycles:>9} {msgs_c:>10}")
    print(f"{'refined':>10} {5:>6} {refined.cycles:>9} {msgs_r:>10}")
    print(f"  refinement speedup: {speedup:.2f}x "
          "(task parallelism the fused model serializes)")
    # refinement pays: the pipeline overlaps RLSQ/IDCT/MC
    assert speedup > 1.3
    # and costs: more synchronization traffic
    assert msgs_r > msgs_c
    benchmark.extra_info["refinement_speedup"] = round(speedup, 3)
