"""EXP-A5 — §5.3: budgets and the best-guess scheduler.

Two ablations on the multi-tasking time-shift workload (where
scheduling actually matters — every hardwired coprocessor time-shares
2-3 tasks):

* budget sweep across the paper's 1k-10k-cycle range: small budgets
  buy responsiveness at the cost of task switches, large budgets
  amortize switching;
* best-guess vs naive round-robin: naive dispatching of blocked tasks
  wastes dispatches on steps that immediately abort — measured as
  dispatch accuracy (the paper: best guess "is effective by selecting
  the right tasks in the majority of the cases").
"""

from conftest import run_once

from repro import ShellParams, SystemParams, build_mpeg_instance, timeshift_on_instance
from repro.trace import collect_counters


def run(frames, params, bitstream, shell=None, budgets=None):
    system = build_mpeg_instance(
        SystemParams(sram_size=96 * 1024, dram_latency=60), shell=shell
    )
    from repro.instance.eclipse_mpeg import DECODE_MAPPING, ENCODE_MAPPING
    from repro.media.pipelines import timeshift_graph

    graph = timeshift_graph(
        frames, params, bitstream,
        mapping_encode=ENCODE_MAPPING, mapping_decode=DECODE_MAPPING,
    )
    if budgets:
        for node in graph.tasks.values():
            node.budget = budgets
    system.configure(graph)
    return system, system.run()


def test_budget_sweep(benchmark, small_content):
    params, frames, bitstream, _recon, _stats = small_content
    _sys, base = run_once(benchmark, lambda: run(frames, params, bitstream))
    print("\nEXP-A5 scheduler budget sweep (paper: 1k-10k cycles):")
    print(f"{'budget':>8} {'cycles':>9} {'task switches':>14} {'budget exhaust':>15}")
    for budget in (500, 1000, 2000, 5000, 10000):
        system, r = run(frames, params, bitstream, budgets=budget)
        c = collect_counters(system)
        switches = sum(s["ops"]["task_switches"] for s in c["shells"].values())
        exhaust = sum(s["ops"]["budget_exhaustions"] for s in c["shells"].values())
        print(f"{budget:>8} {r.cycles:>9} {switches:>14} {exhaust:>15}")
        assert r.completed
    benchmark.extra_info["base_cycles"] = base[1].cycles if isinstance(base, tuple) else 0


def test_best_guess_vs_naive(benchmark, small_content):
    params, frames, bitstream, _recon, _stats = small_content
    _sys_bg, bg = run_once(
        benchmark, lambda: run(frames, params, bitstream)
    )
    _sys_nv, nv = run(
        frames, params, bitstream, shell=ShellParams(best_guess_scheduling=False)
    )
    def accuracy(res):
        done = sum(t.steps_completed for t in res.tasks.values())
        aborted = sum(t.steps_aborted for t in res.tasks.values())
        return done / (done + aborted), aborted

    acc_bg, ab_bg = accuracy(bg)
    acc_nv, ab_nv = accuracy(nv)
    print("\nEXP-A5 best-guess vs naive round-robin (time-shift workload):")
    print(f"{'scheduler':>12} {'cycles':>9} {'aborted steps':>14} {'dispatch accuracy':>18}")
    print(f"{'best guess':>12} {bg.cycles:>9} {ab_bg:>14} {100 * acc_bg:>17.1f}%")
    print(f"{'naive':>12} {nv.cycles:>9} {ab_nv:>14} {100 * acc_nv:>17.1f}%")
    # the paper's claim: best guess selects the right task "in the
    # majority of the cases"; naive wastes two orders of magnitude more
    # dispatches on steps that instantly abort
    assert acc_bg > 0.5
    assert acc_bg > 5 * acc_nv
    assert ab_nv > 10 * ab_bg
    assert bg.cycles <= 1.1 * nv.cycles  # and never pays for it in time
    benchmark.extra_info["accuracy_best_guess"] = round(acc_bg, 3)
    benchmark.extra_info["accuracy_naive"] = round(acc_nv, 3)
