"""EXP-F6/F7 — Figures 6-7: cyclic FIFO buffers and distributed
putspace synchronization.

Microbenchmark of the core mechanism: a producer/consumer pair over a
small cyclic buffer, measuring synchronization message counts, denied
GetSpace (backpressure), and sustained throughput.
"""

from conftest import run_once

from repro import ApplicationGraph, CoprocessorSpec, EclipseSystem, SystemParams, TaskNode
from repro.kahn.library import ConsumerKernel, ProducerKernel

PAYLOAD = bytes(i % 256 for i in range(64 * 1024))
CHUNK = 64


def pipe(buffer_size):
    g = ApplicationGraph("sync")
    g.add_task(TaskNode("src", lambda: ProducerKernel(PAYLOAD, chunk=CHUNK, compute_cycles=5), ProducerKernel.PORTS))
    g.add_task(TaskNode("dst", lambda: ConsumerKernel(chunk=CHUNK, compute_cycles=5), ConsumerKernel.PORTS))
    g.connect("src.out", "dst.in", buffer_size=buffer_size)
    return g


def run(buffer_size, msg_latency=4):
    system = EclipseSystem(
        [CoprocessorSpec("p"), CoprocessorSpec("c")],
        SystemParams(sram_size=128 * 1024, msg_latency=msg_latency),
    )
    system.configure(pipe(buffer_size))
    return system.run()


def test_sync_throughput_vs_buffer_size(benchmark, small_content):
    result = run_once(benchmark, lambda: run(buffer_size=512))
    assert result.completed
    assert result.histories["s_src_out"] == PAYLOAD
    print("\nEXP-F6/F7 cyclic-buffer synchronization (64 KiB payload, 64 B packets):")
    print(f"{'buffer':>8} {'cycles':>9} {'B/cycle':>8} {'denied':>7} {'messages':>9}")
    for size in (64, 128, 256, 512, 2048):
        r = run(size)
        s = r.streams["s_src_out"]
        print(
            f"{size:>8} {r.cycles:>9} {len(PAYLOAD) / r.cycles:>8.2f} "
            f"{s.denied_getspace:>7} {s.putspace_messages:>9}"
        )
    benchmark.extra_info["bytes_per_cycle_512B"] = len(PAYLOAD) / result.cycles


def test_sync_message_count_matches_commits(benchmark):
    """Every PutSpace sends exactly one message per remote access point
    (Figure 7's protocol)."""
    result = run_once(benchmark, lambda: run(buffer_size=1024))
    s = result.streams["s_src_out"]
    n_commits = len(PAYLOAD) // CHUNK  # producer commits + consumer commits
    assert s.putspace_messages == 2 * n_commits
    print(f"\nEXP-F7: {s.putspace_messages} putspace messages for "
          f"{2 * n_commits} commits — 1:1 as in Figure 7")


def test_message_latency_sensitivity(benchmark):
    """Tight coupling (tiny buffer) makes throughput latency-bound."""
    print("\nEXP-F7 message-latency sensitivity (128 B buffer):")
    print(f"{'latency':>8} {'cycles':>9}")
    rows = []
    for lat in (0, 4, 16, 64):
        r = run(128, msg_latency=lat)
        rows.append((lat, r.cycles))
        print(f"{lat:>8} {r.cycles:>9}")
    benchmark.pedantic(lambda: run(128, msg_latency=4), rounds=1, iterations=1)
    assert rows[-1][1] > rows[0][1]  # higher latency costs cycles
