"""EXP-A6 — §2.2: worst-case vs average load of data-dependent tasks.

"Eclipse targets the application domain of video encoding and
decoding, which exhibits a large amount of data-dependency ... In
practice, the ratio of worst-case versus average load can be as high
as a factor of 10."

Computed from the per-macroblock workload statistics of an encoded
GOP, through the task cost models: the cycles each task would spend on
each macroblock.
"""

import numpy as np
from conftest import run_once

from repro import CostModel, encode_sequence
from repro.media.gop import FrameType


def per_mb_costs(stats, cost: CostModel):
    """Model cycles per macroblock for the RLSQ/DCT/VLD tasks."""
    pairs = np.array(stats.mb_pairs)
    blocks = np.array(stats.mb_coded_blocks)
    rlsq = cost.rlsq_per_mb + cost.rlsq_per_block * blocks + cost.rlsq_per_pair * pairs
    dct = cost.dct_per_mb + cost.dct_per_block * blocks
    vld = cost.vld_per_mb + cost.vld_per_pair * pairs
    return {"vld": vld, "rlsq": rlsq, "dct": dct}


def test_worst_vs_average_load(benchmark, fig10_content):
    params, frames, _bits, _recon, stats = fig10_content
    cost = CostModel()
    costs = run_once(benchmark, lambda: per_mb_costs(stats, cost))
    print("\nEXP-A6 worst-case vs average per-MB load (paper: up to ~10x):")
    print(f"{'task':>6} {'avg':>8} {'p99':>8} {'worst':>8} {'worst/avg':>10}")
    ratios = {}
    for task, c in costs.items():
        ratio = c.max() / c.mean()
        ratios[task] = ratio
        print(
            f"{task:>6} {c.mean():>8.0f} {np.percentile(c, 99):>8.0f} "
            f"{c.max():>8.0f} {ratio:>10.1f}"
        )
    # strongly irregular: the RLSQ (pair-bound) ratio approaches the
    # paper's factor-of-10 regime
    assert ratios["rlsq"] > 3.0
    assert max(ratios.values()) > 3.0
    benchmark.extra_info["worst_over_avg"] = {k: round(v, 2) for k, v in ratios.items()}


def test_bits_per_frame_irregularity(benchmark, fig10_content):
    """The same irregularity at frame granularity: I frames cost far
    more bits than B frames (drives the VLD/VLE load swings)."""
    params, frames, _bits, _recon, stats = fig10_content
    benchmark(lambda: np.array(stats.frame_bits).mean())
    by_type = {t: [] for t in "IPB"}
    for t, b in zip(stats.frame_types, stats.frame_bits):
        by_type[t.value].append(b)
    print("\nEXP-A6 bits per frame by type:")
    for t in "IPB":
        vals = by_type[t]
        print(f"  {t}: mean {np.mean(vals):8.0f} bits over {len(vals)} frames")
    assert np.mean(by_type["I"]) > 2.5 * np.mean(by_type["B"])
