#!/usr/bin/env python3
"""Design-space exploration with the Eclipse simulator (paper §7).

"Experiments include caching strategies in the shell (e.g. varying
cache size, cache prefetching or not), bus latency and width, etc.
Thereto, the simulator parses a setup file that contains these
architectural parameters."  This script is that loop: it decodes the
same stream under swept template parameters and prints the resulting
execution time and stall behaviour — the quantitative feedback the
Eclipse designers used before "diving into gate-level design".

Run:  python examples/design_space_exploration.py
"""

from repro import (
    CodecParams,
    DECODE_MAPPING,
    ShellParams,
    SystemParams,
    build_mpeg_instance,
    decode_graph,
    encode_sequence,
    synthetic_sequence,
)


def run_decode(bitstream, shell=None, sys_params=None, buffer_packets=3):
    system = build_mpeg_instance(params=sys_params, shell=shell)
    system.configure(decode_graph(bitstream, mapping=DECODE_MAPPING, buffer_packets=buffer_packets))
    result = system.run()
    stalls = sum(t.stall_cycles for t in result.tasks.values())
    return result.cycles, stalls, result


def main() -> None:
    params = CodecParams(width=48, height=32, gop_n=6, gop_m=3)
    frames = synthetic_sequence(params.width, params.height, num_frames=6)
    bitstream, _, _ = encode_sequence(frames, params)
    base_cycles, _, _ = run_decode(bitstream)
    print(f"workload: decode {len(frames)} frames "
          f"({params.width}x{params.height}); baseline {base_cycles} cycles\n")

    print("=== cache size sweep (read-cache lines per shell) ===")
    print(f"{'lines':>6} {'cycles':>9} {'vs base':>8} {'stalls':>9}")
    for lines in (2, 4, 8, 16, 32, 64):
        cycles, stalls, _ = run_decode(bitstream, shell=ShellParams(read_cache_lines=lines))
        print(f"{lines:>6} {cycles:>9} {cycles / base_cycles:>8.3f} {stalls:>9}")

    print("\n=== prefetching on/off (lines fetched ahead) ===")
    print(f"{'ahead':>6} {'cycles':>9} {'vs base':>8} {'stalls':>9}")
    for pf in (0, 1, 2, 4, 8):
        cycles, stalls, _ = run_decode(bitstream, shell=ShellParams(prefetch_lines=pf))
        print(f"{pf:>6} {cycles:>9} {cycles / base_cycles:>8.3f} {stalls:>9}")

    print("\n=== bus width sweep (bytes; paper uses 16 = 128 bits) ===")
    print(f"{'width':>6} {'cycles':>9} {'vs base':>8} {'read-bus util':>14}")
    for width in (4, 8, 16, 32):
        cycles, _, res = run_decode(
            bitstream, sys_params=SystemParams(bus_width=width, dram_latency=60)
        )
        print(f"{width:>6} {cycles:>9} {cycles / base_cycles:>8.3f} "
              f"{100 * res.read_bus_utilization:>13.1f}%")

    print("\n=== bus setup latency sweep (cycles per transaction) ===")
    print(f"{'lat':>6} {'cycles':>9} {'vs base':>8}")
    for lat in (0, 2, 8, 16):
        cycles, _, _ = run_decode(
            bitstream, sys_params=SystemParams(bus_setup_latency=lat, dram_latency=60)
        )
        print(f"{lat:>6} {cycles:>9} {cycles / base_cycles:>8.3f}")

    print("\n=== stream buffer sizing (packets per buffer) ===")
    print(f"{'pkts':>6} {'cycles':>9} {'vs base':>8} {'denied GetSpace':>16}")
    for pkts in (1, 2, 3, 5, 8):
        cycles, _, res = run_decode(bitstream, buffer_packets=pkts)
        denied = sum(s.denied_getspace for s in res.streams.values())
        print(f"{pkts:>6} {cycles:>9} {cycles / base_cycles:>8.3f} {denied:>16}")

    print("\ndone — larger caches/prefetch cut stalls with diminishing "
          "returns; narrow buses and tiny buffers cost throughput.")


if __name__ == "__main__":
    main()
