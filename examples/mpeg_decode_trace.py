#!/usr/bin/env python3
"""Decode an MPEG-2-like stream on the Figure 8 Eclipse instance and
render the paper's Figures 9 and 10.

The script encodes a synthetic sequence (IPBBPBB... GOP), decodes it on
the cycle-level instance (VLD, RLSQ, DCT, MC/ME coprocessors + DSP),
then prints:

* Figure 9's architecture view (utilization) and application view
  (per-task/per-stream statistics);
* Figure 10's buffer-filling traces for the RLSQ, DCT and MC input
  streams with the I/P/B frame row on top;
* the bottleneck attribution per frame type — the paper's headline
  observation (I -> RLSQ, P -> DCT, B -> MC).

Run:  python examples/mpeg_decode_trace.py
"""

import numpy as np

from repro import (
    CodecParams,
    DECODE_MAPPING,
    Sampler,
    build_mpeg_instance,
    decode_graph,
    encode_sequence,
    synthetic_sequence,
)
from repro.trace.analysis import (
    bottleneck_by_frame_type,
    per_frame_type_fill,
    per_frame_type_service,
)
from repro.trace.viewer import (
    render_application_view,
    render_architecture_view,
    render_fill_traces,
    render_task_gantt,
)


def main() -> None:
    params = CodecParams(width=96, height=64, gop_n=12, gop_m=3)
    frames = synthetic_sequence(params.width, params.height, num_frames=12, noise=1.0)
    bitstream, golden, _stats = encode_sequence(frames, params)
    print(f"encoded {len(frames)} frames -> {len(bitstream)} bytes")

    system = build_mpeg_instance()
    system.configure(decode_graph(bitstream, mapping=DECODE_MAPPING))
    sampler = Sampler(system, interval=250)
    result = system.run()
    print(f"decoded in {result.cycles} cycles "
          f"({result.cycles / 150e6 * 1e3:.2f} ms at 150 MHz)\n")

    # bit-exactness against the reference codec
    disp = next(
        row.kernel
        for shell in system.shells.values()
        for row in shell.task_table
        if row.name == "disp"
    )
    for got, ref in zip(disp.display_frames(), golden):
        assert np.array_equal(got.y, ref.y)
    print("decoded output is bit-exact vs the reference codec\n")

    print(render_architecture_view(result))
    print()
    print(render_application_view(result))
    print()
    print("=== task activity (digit = task id, . = idle) ===")
    print(render_task_gantt(sampler, system, width=100))
    print()

    # ---- Figure 10 ----
    plans = params.gop().coded_order(len(frames))
    marks = sampler.frame_boundaries("vld", params.mbs_per_frame)
    frame_types = [p.frame_type.value for p in plans]
    fills = {
        ("coef", "rlsq"): sampler.stream_fill[("coef", "rlsq")],
        ("dequant", "idct"): sampler.stream_fill[("dequant", "idct")],
        ("resid", "mc"): sampler.stream_fill[("resid", "mc")],
    }
    print("=== Figure 10: available data in RLSQ/DCT/MC input streams ===")
    print(
        render_fill_traces(
            fills,
            buffer_sizes={n: s.buffer_size for n, s in result.streams.items()},
            frame_marks=marks,
            frame_types=frame_types,
        )
    )
    print()

    task2cop = {"rlsq": "rlsq", "idct": "dct", "mc": "mcme"}
    service = per_frame_type_service(sampler, plans, params.mbs_per_frame, task2cop)
    print("per-frame-type service time (cycles per macroblock):")
    for task in ("rlsq", "idct", "mc"):
        row = "  ".join(f"{t}:{service[task].get(t, 0):7.0f}" for t in "IPB")
        print(f"  {task:>5}  {row}")
    bottleneck = bottleneck_by_frame_type(service)
    print(f"\nbottleneck per frame type: {bottleneck}")
    print("paper (Figure 10):          {'I': 'rlsq', 'P': 'idct(dct)', 'B': 'mc'}")


if __name__ == "__main__":
    main()
