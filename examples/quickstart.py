#!/usr/bin/env python3
"""Quickstart: build a small Kahn application, run it functionally,
then map it onto a two-coprocessor Eclipse instance and verify the
cycle-level execution reproduces the exact same stream history.

This walks the paper's core loop in miniature:

1. describe the application as tasks + streams (Kahn process network);
2. get the golden behaviour from the reference executor;
3. configure an Eclipse instance (shells, SRAM, buses) for the graph;
4. run cycle-level and compare: Kahn determinism says the histories
   must match byte-for-byte.

Run:  python examples/quickstart.py
"""

from repro import (
    ApplicationGraph,
    CoprocessorSpec,
    EclipseSystem,
    FunctionalExecutor,
    TaskNode,
)
from repro.kahn.library import ConsumerKernel, MapKernel, ProducerKernel


def build_graph(payload: bytes) -> ApplicationGraph:
    """src --> invert --> dst, with 32-byte packets."""
    g = ApplicationGraph("quickstart")
    g.add_task(
        TaskNode(
            "src",
            lambda: ProducerKernel(payload, chunk=32),
            ProducerKernel.PORTS,
            mapping="cp0",
        )
    )
    g.add_task(
        TaskNode(
            "invert",
            lambda: MapKernel(lambda b: bytes(x ^ 0xFF for x in b), chunk=32),
            MapKernel.PORTS,
            mapping="cp1",  # the filter gets its own coprocessor
        )
    )
    g.add_task(
        TaskNode(
            "dst",
            lambda: ConsumerKernel(chunk=32),
            ConsumerKernel.PORTS,
            mapping="cp0",  # multi-tasking: src and dst share cp0
        )
    )
    g.connect("src.out", "invert.in", buffer_size=128)
    g.connect("invert.out", "dst.in", buffer_size=128)
    return g


def main() -> None:
    payload = bytes((7 * i) % 256 for i in range(4096))

    # 1-2. reference functional execution -> golden stream histories
    golden = FunctionalExecutor(build_graph(payload)).run()
    print(f"reference run: {golden.total_steps} processing steps")

    # 3. an Eclipse instance: two coprocessors, shared SRAM, buses
    system = EclipseSystem([CoprocessorSpec("cp0"), CoprocessorSpec("cp1")])
    system.configure(build_graph(payload))

    # 4. cycle-level run
    result = system.run()
    print(f"cycle-level run: {result.cycles} cycles, completed={result.completed}")
    for stream in sorted(golden.histories):
        match = result.histories[stream] == golden.histories[stream]
        print(f"  stream {stream!r}: {len(result.histories[stream])} B, "
              f"matches reference: {match}")
        assert match, "Kahn determinism violated — this is a bug"

    print("\nper-coprocessor utilization:")
    for name, util in sorted(result.utilization.items()):
        print(f"  {name}: {100 * util:.1f}%")
    print(f"read bus utilization:  {100 * result.read_bus_utilization:.1f}%")
    print(f"write bus utilization: {100 * result.write_bus_utilization:.1f}%")
    print(f"putspace/eos messages: {result.messages_sent}")
    print("\nOK — cycle-level Eclipse reproduced the reference history exactly.")


if __name__ == "__main__":
    main()
