#!/usr/bin/env python3
"""The complete Section 6 application: a set-top-box style decode of a
multiplexed audio+video transport stream on the Figure 8 instance.

"Audio decoding, variable-length encoding, and de-multiplexing are
executed in software on the media processor (DSP-CPU)" — here the
software demultiplexer feeds the hardwired video pipeline (streaming
VLD -> RLSQ -> DCT -> MC) and the software ADPCM audio decoder
concurrently, from a single MPEG-TS-like container.

Run:  python examples/av_set_top_box.py
"""

import numpy as np

from repro import CodecParams, encode_sequence, synthetic_sequence
from repro.instance import av_decode_on_instance
from repro.media.audio import BLOCK_SAMPLES, adpcm_decode, adpcm_encode, synthetic_pcm
from repro.media.transport import AUDIO_PID, TS_PACKET, VIDEO_PID, ts_mux


def main() -> None:
    # --- author the content ---
    params = CodecParams(width=64, height=48, gop_n=6, gop_m=3)
    frames = synthetic_sequence(params.width, params.height, num_frames=6)
    video_es, golden_video, _ = encode_sequence(frames, params)
    pcm = synthetic_pcm(BLOCK_SAMPLES * 8)
    audio_es = adpcm_encode(pcm)
    ts = ts_mux({VIDEO_PID: video_es, AUDIO_PID: audio_es})
    print(f"transport stream: {len(ts)} bytes "
          f"({len(ts) // TS_PACKET} packets: video {len(video_es)} B, "
          f"audio {len(audio_es)} B)")

    # --- decode everything on one instance ---
    system, result = av_decode_on_instance(ts, params, len(frames))
    print(f"decoded in {result.cycles} cycles "
          f"({result.cycles / 150e6 * 1e3:.2f} ms at 150 MHz)\n")

    def kernel(name):
        return next(
            row.kernel
            for shell in system.shells.values()
            for row in shell.task_table
            if row.name == name
        )

    # --- verify both media paths ---
    disp = kernel("disp")
    for got, ref in zip(disp.display_frames(), golden_video):
        assert np.array_equal(got.y, ref.y)
    print("video: bit-exact vs the reference decoder")
    sink = kernel("pcm_sink")
    assert np.array_equal(sink.pcm(), adpcm_decode(audio_es))
    print("audio: bit-exact vs the reference ADPCM decoder\n")

    # --- who did what ---
    print("task placement and load:")
    for name in sorted(result.tasks):
        t = result.tasks[name]
        print(f"  {name:>10} on {t.coprocessor:>5}: {t.steps_completed:>5} steps, "
              f"{t.busy_cycles:>8} busy cycles")
    print("\nutilization:")
    for name, util in sorted(result.utilization.items()):
        print(f"  {name:>5}: {100 * util:5.1f}%")
    dsp_tasks = [n for n, t in result.tasks.items() if t.coprocessor == "dsp"]
    print(f"\nsoftware tasks multi-tasked on the DSP-CPU: {sorted(dsp_tasks)}")


if __name__ == "__main__":
    main()
