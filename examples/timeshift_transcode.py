#!/usr/bin/env python3
"""Time-shift on one Eclipse instance: record (encode) one programme
while playing back (decoding) another, simultaneously.

This is the §6 flagship scenario: "standard definition MPEG-2 encoding
in parallel with decoding".  Both application graphs run on the SAME
five computation units via multi-tasking shells — the RLSQ coprocessor
time-shares the encoder's quantize/RLE and IQ tasks, the DCT
coprocessor time-shares forward and inverse DCT, and so on, exactly
the hardware-reuse story the paper tells.

Run:  python examples/timeshift_transcode.py
"""

import numpy as np

from repro import (
    CodecParams,
    encode_sequence,
    synthetic_sequence,
    timeshift_on_instance,
)
from repro.trace import collect_counters


def main() -> None:
    params = CodecParams(width=48, height=32, gop_n=6, gop_m=3)
    # the programme being recorded
    live_frames = synthetic_sequence(params.width, params.height, num_frames=6, seed=7)
    # the previously recorded programme being played back
    old_frames = synthetic_sequence(params.width, params.height, num_frames=6, seed=99)
    playback_bits, playback_golden, _ = encode_sequence(old_frames, params)

    print("running encode + decode simultaneously on one instance...")
    system, result = timeshift_on_instance(live_frames, params, playback_bits)
    print(f"completed in {result.cycles} cycles\n")

    # --- verify the recording half ---
    vle = next(
        row.kernel
        for shell in system.shells.values()
        for row in shell.task_table
        if row.name == "vle"
    )
    ref_bits, _, _ = encode_sequence(live_frames, params)
    assert vle.bitstream() == ref_bits
    print(f"recorded bitstream: {len(vle.bitstream())} bytes — bit-exact vs reference")

    # --- verify the playback half ---
    disp = next(
        row.kernel
        for shell in system.shells.values()
        for row in shell.task_table
        if row.name == "play_disp"
    )
    for got, ref in zip(disp.display_frames(), playback_golden):
        assert np.array_equal(got.y, ref.y)
    print("playback output: bit-exact vs reference decoder\n")

    # --- show the multi-tasking ---
    counters = collect_counters(system)
    print("tasks per coprocessor (multi-tasking shells):")
    for cop in ("vld", "rlsq", "dct", "mcme", "dsp"):
        shell = counters["shells"][cop]
        tasks = ", ".join(sorted(shell["tasks"]))
        switches = shell["ops"]["task_switches"]
        print(f"  {cop:>5}: [{tasks}]  ({switches} task switches)")
    print("\nper-coprocessor utilization:")
    for name, util in sorted(result.utilization.items()):
        print(f"  {name:>5}: {100 * util:5.1f}%")
    print(f"\nputspace/eos messages: {result.messages_sent}")
    print(f"off-chip traffic: {system.dram.bytes_read} B read, "
          f"{system.dram.bytes_written} B written")


if __name__ == "__main__":
    main()
