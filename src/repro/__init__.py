"""Eclipse: heterogeneous multiprocessor architecture for flexible
media processing — a full reproduction of Rutten et al., IPPS 2002.

The package is layered exactly like the paper's system:

``repro.sim``
    discrete-event simulation kernel (the substrate the original
    cycle-accurate simulator was built on).
``repro.kahn``
    the Kahn-process-network model of computation: application graphs,
    the five-primitive task-level interface, and the reference
    functional executor that defines golden stream histories.
``repro.hw``
    memory and interconnect: shared wide SRAM, arbitrated read/write
    buses, off-chip memory port.
``repro.core``
    the Eclipse contribution: coprocessor shells with stream/task
    tables, distributed putspace synchronization, explicit
    sync-driven cache coherency, weighted round-robin best-guess
    scheduling, and the system assembly.
``repro.media``
    the MPEG-2-like workload: a real (simplified) video codec, both as
    a functional reference and as Eclipse task kernels, plus the
    decode/encode/time-shift application graphs.
``repro.instance``
    the paper's first instantiation (Figure 8) and its area/power
    model; baseline architectures for the ablations.
``repro.trace``
    §5.4 measurement: counters, sampling, the Figure 9 viewer, and
    the Figure 10 bottleneck analysis.
``repro.obs``
    the tiered observability contract: recording levels
    (off/counters/series/full), the typed metrics registry, and the
    span tracer with Chrome-trace/Perfetto export.

Quickstart
----------
>>> from repro import (CodecParams, encode_sequence, synthetic_sequence,
...                    build_mpeg_instance, DECODE_MAPPING, decode_graph)
>>> params = CodecParams(width=48, height=32, gop_n=6, gop_m=3)
>>> frames = synthetic_sequence(params.width, params.height, 6)
>>> bits, golden, _ = encode_sequence(frames, params)
>>> system = build_mpeg_instance()
>>> system.configure(decode_graph(bits, mapping=DECODE_MAPPING))
>>> result = system.run()
>>> result.completed
True
"""

from repro.core import (
    CoprocessorSpec,
    DeadlockError,
    EclipseSystem,
    FaultPlan,
    LossPlan,
    ShellParams,
    StalledError,
    StallSpec,
    SystemParams,
    SystemResult,
)
from repro.instance import (
    AreaPowerModel,
    DECODE_MAPPING,
    ENCODE_MAPPING,
    build_mpeg_instance,
    decode_on_instance,
    encode_on_instance,
    timeshift_on_instance,
)
from repro.kahn import (
    ApplicationGraph,
    FunctionalExecutor,
    Kernel,
    PortSpec,
    StepOutcome,
    TaskNode,
    check_determinism,
)
from repro.media import (
    CodecParams,
    decode_sequence,
    encode_sequence,
    synthetic_sequence,
)
from repro.media.pipelines import decode_graph, encode_graph, timeshift_graph
from repro.media.tasks import CostModel
from repro.resilience import (
    InvariantViolation,
    MonitorSuite,
    SnapshotError,
    Supervisor,
    SystemSnapshot,
    capture,
    restore,
)
from repro.obs import MetricsRegistry, ObservabilityLevel, SpanTracer
from repro.runner import ParallelRunner, RunReport, RunResult, RunSpec, run_specs
from repro.trace import Sampler, collect_counters

__version__ = "1.0.0"

__all__ = [
    "ApplicationGraph",
    "AreaPowerModel",
    "CodecParams",
    "CoprocessorSpec",
    "CostModel",
    "DECODE_MAPPING",
    "ENCODE_MAPPING",
    "EclipseSystem",
    "FunctionalExecutor",
    "InvariantViolation",
    "Kernel",
    "DeadlockError",
    "FaultPlan",
    "LossPlan",
    "MetricsRegistry",
    "MonitorSuite",
    "ObservabilityLevel",
    "ParallelRunner",
    "PortSpec",
    "RunReport",
    "RunResult",
    "RunSpec",
    "run_specs",
    "Sampler",
    "ShellParams",
    "SnapshotError",
    "SpanTracer",
    "StalledError",
    "StallSpec",
    "StepOutcome",
    "Supervisor",
    "SystemParams",
    "SystemResult",
    "SystemSnapshot",
    "TaskNode",
    "build_mpeg_instance",
    "capture",
    "check_determinism",
    "collect_counters",
    "restore",
    "decode_graph",
    "decode_on_instance",
    "decode_sequence",
    "encode_graph",
    "encode_on_instance",
    "encode_sequence",
    "synthetic_sequence",
    "timeshift_graph",
    "timeshift_on_instance",
]
