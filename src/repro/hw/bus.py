"""Arbitrated buses.

The first Eclipse instance (paper §6) deploys separate read and write
data buses, each 128 bits at 150 MHz, between the coprocessor shells
and the shared SRAM.  A :class:`Bus` models one of them: masters
request the bus, occupy it for ``setup_latency + ceil(n / width)``
cycles, and release.  Arbitration is FIFO with optional priorities —
with single-outstanding-transaction masters (our shells) FIFO equals
round-robin fairness.

The same class models the off-chip system-bus port used by the MC/ME
and VLD coprocessors, with a larger setup latency (DRAM access).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Tuple, TYPE_CHECKING

from repro.sim import Event, Resource, Simulator
from repro.sim.events import Timeout

__all__ = ["Bus", "FastBus", "BusStats"]


@dataclass
class BusStats:
    """Aggregate traffic counters, per bus."""

    transactions: int = 0
    bytes_transferred: int = 0
    busy_cycles: int = 0
    wait_cycles: int = 0

    def utilization(self, elapsed: int) -> float:
        return self.busy_cycles / elapsed if elapsed > 0 else 0.0


class Bus:
    """One arbitrated data bus.

    Parameters
    ----------
    width_bytes:
        datapath width; a transaction moves this many bytes per cycle.
    setup_latency:
        fixed cycles per transaction (arbitration + address phase; for
        the off-chip port this includes DRAM access latency).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "bus",
        width_bytes: int = 16,
        setup_latency: int = 2,
    ):
        if width_bytes < 1:
            raise ValueError(f"width_bytes must be >= 1, got {width_bytes}")
        if setup_latency < 0:
            raise ValueError(f"setup_latency must be >= 0, got {setup_latency}")
        self.sim = sim
        self.name = name
        self.width_bytes = width_bytes
        self.setup_latency = setup_latency
        self._arbiter = Resource(sim, capacity=1)
        self.stats = BusStats()
        #: per-master byte counters (key: master name)
        self.per_master_bytes: Dict[str, int] = {}

    def occupancy_cycles(self, n_bytes: int) -> int:
        """Cycles one transaction of ``n_bytes`` occupies the bus."""
        beats = -(-n_bytes // self.width_bytes)  # ceil division
        return self.setup_latency + beats

    def transfer(self, n_bytes: int, master: str = "", priority: int = 0) -> Generator:
        """Process-style transaction: ``yield from bus.transfer(...)``.

        Blocks (simulated) until the bus is granted, occupies it for the
        transaction duration, records stats, then releases.
        """
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        t_request = self.sim.now
        grant = self._arbiter.request(priority=priority)
        yield grant
        self.stats.wait_cycles += self.sim.now - t_request
        cycles = self.occupancy_cycles(n_bytes)
        yield self.sim.timeout(cycles)
        self._arbiter.release(grant)
        self.stats.transactions += 1
        self.stats.bytes_transferred += n_bytes
        self.stats.busy_cycles += cycles
        if master:
            self.per_master_bytes[master] = self.per_master_bytes.get(master, 0) + n_bytes

    @property
    def queue_length(self) -> int:
        return self._arbiter.queue_length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Bus {self.name!r} {self.width_bytes}B wide, {self.stats.transactions} txns>"


class FastBus(Bus):
    """:class:`Bus` with the arbiter inlined (fast engine).

    Event-schedule equivalent to the reference: an uncontended request
    still round-trips through a grant event at the same (time,
    priority) — skipping it would reorder same-cycle event sequence
    numbers, which the model's wait counters observe.  Only the
    :class:`~repro.sim.resources.Resource` machinery around that event
    (Request objects, holder sets, grant accounting) is flattened into
    a busy flag and a (priority, seq)-sorted wait list.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._busy = False
        #: (priority, seq, grant event), kept sorted — same grant order
        #: as the reference arbiter's priority-then-FIFO policy
        self._fast_waiting: List[Tuple[int, int, Event]] = []
        self._fast_seq = 0

    def transfer(self, n_bytes: int, master: str = "", priority: int = 0) -> Generator:
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        sim = self.sim
        t_request = sim.now
        grant = Event(sim)
        if not self._busy and not self._fast_waiting:
            self._busy = True
            grant.succeed(None)
        else:
            self._fast_seq += 1
            entry = (priority, self._fast_seq, grant)
            waiting = self._fast_waiting
            idx = len(waiting)
            while idx > 0 and waiting[idx - 1][:2] > entry[:2]:
                idx -= 1
            waiting.insert(idx, entry)
        yield grant
        stats = self.stats
        stats.wait_cycles += sim.now - t_request
        cycles = self.setup_latency - (-n_bytes // self.width_bytes)
        yield Timeout(sim, cycles)
        # release: hand the bus to the next waiter (same scheduling
        # point as the reference's _arbiter.release)
        if self._fast_waiting:
            self._fast_waiting.pop(0)[2].succeed(None)
        else:
            self._busy = False
        stats.transactions += 1
        stats.bytes_transferred += n_bytes
        stats.busy_cycles += cycles
        if master:
            per = self.per_master_bytes
            per[master] = per.get(master, 0) + n_bytes

    @property
    def queue_length(self) -> int:
        return len(self._fast_waiting)
