"""Hardware substrate (substrate S3): memory and interconnect models.

Models the communication hardware of an Eclipse instance (paper §3,
§6): a wide shared on-chip SRAM holding the stream buffers, separate
arbitrated read and write buses, and an off-chip (DRAM) memory used by
the MC/ME and VLD coprocessors through a dedicated system-bus port.

All models carry *real data* — stream buffers hold actual bytes — so a
timing-model bug that corrupts ordering shows up as a functional
mismatch against the reference executor, not just a wrong number.
"""

from repro.hw.bus import Bus, BusStats
from repro.hw.memory import AllocationError, OnChipMemory
from repro.hw.dram import OffChipMemory

__all__ = [
    "AllocationError",
    "Bus",
    "BusStats",
    "OffChipMemory",
    "OnChipMemory",
]
