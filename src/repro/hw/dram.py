"""Off-chip memory model.

Figure 8 of the paper gives the MC/ME coprocessor "a dedicated
connection to the system bus to access MPEG reference frames in
off-chip memory", and the VLD fetches compressed bit-streams the same
way.  :class:`OffChipMemory` models that port: sparse byte storage
behind a :class:`~repro.hw.bus.Bus` with DRAM-scale setup latency.

In this reproduction the media kernels keep reference-frame *content*
as task state (the data never crosses the stream network, exactly as in
the paper) and charge the *timing* of each off-chip access through
this model via the ``ExternalAccessOp`` kernel op.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.hw.bus import Bus
from repro.sim import Simulator

__all__ = ["OffChipMemory"]

_PAGE = 4096


class OffChipMemory:
    """Sparse off-chip memory with a single arbitrated access port."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "dram",
        width_bytes: int = 8,
        access_latency: int = 20,
        bus_cls: type = Bus,
    ):
        self.sim = sim
        self.name = name
        self.bus = bus_cls(sim, name=f"{name}.port", width_bytes=width_bytes, setup_latency=access_latency)
        self._pages: Dict[int, bytearray] = {}
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    # storage (zero-time; used for content when needed)
    # ------------------------------------------------------------------
    def _page(self, number: int) -> bytearray:
        page = self._pages.get(number)
        if page is None:
            page = self._pages[number] = bytearray(_PAGE)
        return page

    def read(self, addr: int, n_bytes: int) -> bytes:
        if addr < 0 or n_bytes < 0:
            raise IndexError("negative address or length")
        out = bytearray()
        while n_bytes:
            off = addr % _PAGE
            take = min(n_bytes, _PAGE - off)
            out.extend(self._page(addr // _PAGE)[off : off + take])
            addr += take
            n_bytes -= take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        if addr < 0:
            raise IndexError("negative address")
        pos = 0
        while pos < len(data):
            off = addr % _PAGE
            take = min(len(data) - pos, _PAGE - off)
            self._page(addr // _PAGE)[off : off + take] = data[pos : pos + take]
            addr += take
            pos += take

    # ------------------------------------------------------------------
    # timed access
    # ------------------------------------------------------------------
    def access(self, n_bytes: int, is_write: bool, master: str = "") -> Generator:
        """Timed transfer over the off-chip port (process-style)."""
        yield from self.bus.transfer(n_bytes, master=master)
        if is_write:
            self.bytes_written += n_bytes
        else:
            self.bytes_read += n_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OffChipMemory {self.name!r} r={self.bytes_read}B w={self.bytes_written}B>"
