"""On-chip SRAM: storage for stream buffers plus a bump allocator.

Paper §3: "communication buffers in a centralized, wide on-chip
memory"; the first instance uses a 32 kB SRAM with a 128-bit datapath
(§6).  Timing lives in the buses (:mod:`repro.hw.bus`) — the SRAM of
the paper runs at twice the bus clock precisely so that it can serve
both buses without being the bottleneck, so modelling it as always-
ready storage behind the buses is faithful.
"""

from __future__ import annotations

from typing import Dict, Tuple

try:  # optional vectorization for large masked writes
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the base image
    _np = None

__all__ = ["OnChipMemory", "AllocationError"]


class AllocationError(MemoryError):
    """Raised when a buffer does not fit in the remaining SRAM."""


class OnChipMemory:
    """Byte-addressable SRAM with bounds checking and an allocator.

    The allocator is a bump allocator with alignment — buffer layout is
    decided once at configuration time (paper: buffers "pre-allocated in
    shared on-chip memory", §5.1), so no free list is needed; ``reset``
    reclaims everything between applications.
    """

    def __init__(self, size_bytes: int):
        if size_bytes < 1:
            raise ValueError(f"size_bytes must be >= 1, got {size_bytes}")
        self.size = size_bytes
        self._mem = bytearray(size_bytes)
        self._next_free = 0
        #: name -> (base, size) of live allocations
        self.allocations: Dict[str, Tuple[int, int]] = {}
        self.total_reads = 0
        self.total_writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, n_bytes: int, name: str = "", align: int = 1) -> int:
        """Reserve ``n_bytes`` aligned to ``align``; returns base address."""
        if n_bytes < 1:
            raise AllocationError(f"allocation {name!r}: size must be >= 1")
        if align < 1 or (align & (align - 1)) != 0:
            raise ValueError(f"align must be a power of two, got {align}")
        base = (self._next_free + align - 1) & ~(align - 1)
        if base + n_bytes > self.size:
            raise AllocationError(
                f"allocation {name!r} ({n_bytes} B) does not fit: "
                f"{self.size - base} B free of {self.size} B"
            )
        self._next_free = base + n_bytes
        if name:
            self.allocations[name] = (base, n_bytes)
        return base

    @property
    def bytes_free(self) -> int:
        return self.size - self._next_free

    @property
    def bytes_allocated(self) -> int:
        return self._next_free

    def reset(self) -> None:
        """Drop all allocations and zero the memory (reconfiguration)."""
        self._next_free = 0
        self.allocations.clear()
        self._mem[:] = bytes(self.size)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def read(self, addr: int, n_bytes: int) -> bytes:
        self._check(addr, n_bytes)
        self.total_reads += 1
        self.bytes_read += n_bytes
        return bytes(self._mem[addr : addr + n_bytes])

    def write(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self.total_writes += 1
        self.bytes_written += len(data)
        self._mem[addr : addr + len(data)] = data

    def write_masked(self, addr: int, data: bytes, mask: bytes) -> None:
        """Write only bytes whose mask byte is nonzero (byte enables).

        This is how a shell's write cache flushes a partially dirty
        line without clobbering a neighbour's committed bytes.
        """
        if len(data) != len(mask):
            raise ValueError("data and mask lengths differ")
        self._check(addr, len(data))
        self.total_writes += 1
        n = len(data)
        zeros = mask.count(0)
        mem = self._mem
        if zeros == 0:
            # fully dirty line: one slice assignment
            mem[addr : addr + n] = data
            self.bytes_written += n
            return
        if zeros == n:
            return
        if _np is not None and n >= 64:
            # mask bytes are byte-enables (0 or nonzero), so a boolean
            # numpy mask selects exactly the enabled positions
            sel = _np.frombuffer(mask, dtype=_np.uint8) != 0
            region = _np.frombuffer(mem, dtype=_np.uint8, count=n, offset=addr).copy()
            region[sel] = _np.frombuffer(data, dtype=_np.uint8)[sel]
            mem[addr : addr + n] = region.tobytes()
        else:
            for i, m in enumerate(mask):
                if m:
                    mem[addr + i] = data[i]
        self.bytes_written += n - zeros

    def export_state(self) -> dict:
        """JSON-safe view: allocator state, counters, and the contents
        of every live allocation (not the whole SRAM — untouched bytes
        past ``_next_free`` are definitionally zero)."""
        return {
            "size": self.size,
            "next_free": self._next_free,
            "allocations": {
                name: {
                    "base": base,
                    "size": size,
                    "data": bytes(self._mem[base : base + size]).hex(),
                }
                for name, (base, size) in sorted(self.allocations.items())
            },
            "counters": {
                "total_reads": self.total_reads,
                "total_writes": self.total_writes,
                "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written,
            },
        }

    def _check(self, addr: int, n_bytes: int) -> None:
        if addr < 0 or n_bytes < 0 or addr + n_bytes > self.size:
            raise IndexError(
                f"SRAM access [{addr}:{addr + n_bytes}) outside [0:{self.size})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OnChipMemory {self.size}B, {self.bytes_free}B free>"
