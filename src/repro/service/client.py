"""Asyncio client for the sweep service's NDJSON protocol.

:class:`SweepClient` drives one unix-socket connection: it assigns
request ids, demultiplexes the interleaved response lines of
concurrent submissions back to their callers, and **verifies the
byte-identity contract on every result** — the parsed ``result``
object is re-canonicalized (:func:`repro.service.store.result_payload`
form) and the bytes must hash to the server's ``payload_sha256``, so a
client can prove "the hit I got is byte-identical to the cold run"
without ever shipping raw bytes over the JSON wire.

The synchronous conveniences (:func:`submit_once`, used by
``repro submit``) wrap one connection in ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.runner import RunSpec
from repro.service import protocol
from repro.service.store import payload_result

__all__ = ["ClientError", "ClientResult", "SweepClient", "submit_once"]


class ClientError(RuntimeError):
    """Server-reported error or a broken byte-identity contract."""


def wire_payload(result_obj: Dict[str, Any]) -> bytes:
    """Re-canonicalize a wire ``result`` object into the exact payload
    bytes the server serves (and stores): sorted keys, two-space
    indent, trailing newline."""
    return (json.dumps(result_obj, indent=2, sort_keys=True) + "\n").encode("utf-8")


@dataclass
class ClientResult:
    """One verified submit outcome, as seen from the client side."""

    rid: Any
    ok: bool
    cache: str
    key: str
    payload: bytes
    payload_sha256: str
    events: List[dict] = field(default_factory=list)

    @property
    def result(self):
        return payload_result(self.payload)


class SweepClient:
    """One NDJSON connection to a running sweep service.

    Use as an async context manager::

        async with SweepClient(path) as client:
            res = await client.submit(spec)

    ``submit`` calls may overlap freely — responses are routed by id.
    """

    def __init__(self, path: str):
        self.path = path
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)
        self._pending: Dict[Any, "asyncio.Future[dict]"] = {}
        self._events: Dict[Any, List[dict]] = {}
        self._watchers: Dict[Any, Callable[[dict], None]] = {}
        self._pump: Optional[asyncio.Task] = None

    async def connect(self) -> "SweepClient":
        self._reader, self._writer = await asyncio.open_unix_connection(self.path)
        self._pump = asyncio.create_task(self._read_loop())
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(ClientError("connection closed"))
        self._pending.clear()

    async def __aenter__(self) -> "SweepClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        assert self._reader is not None
        while True:
            line = await self._reader.readline()
            if not line:
                break
            try:
                msg = protocol.loads_line(line)
            except protocol.ProtocolError:
                continue
            if not isinstance(msg, dict):
                continue
            rid = msg.get("id")
            event = msg.get("event")
            if event in ("result", "stats", "pong", "bye", "error"):
                fut = self._pending.pop(rid, None)
                if fut is not None and not fut.done():
                    fut.set_result(msg)
            else:
                self._events.setdefault(rid, []).append(msg)
                watcher = self._watchers.get(rid)
                if watcher is not None:
                    try:
                        watcher(msg)
                    except Exception:  # noqa: BLE001 — observer only
                        pass
        # EOF: fail whatever is still waiting
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(ClientError("server closed the connection"))
        self._pending.clear()

    async def _request(self, req: Dict[str, Any]) -> dict:
        assert self._writer is not None, "client is not connected"
        rid = req["id"]
        fut: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        self._writer.write(protocol.dumps_line(req))
        await self._writer.drain()
        return await fut

    # ------------------------------------------------------------------
    async def submit(
        self,
        spec: RunSpec,
        priority: int = 0,
        stream: bool = False,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> ClientResult:
        """Submit one spec and return its verified result.

        Raises :class:`ClientError` on a server-side protocol error or
        when the re-canonicalized result bytes do not hash to the
        server's ``payload_sha256`` (a wire- or server-integrity bug a
        caller must never absorb silently).
        """
        rid = next(self._ids)
        if on_event is not None:
            self._watchers[rid] = on_event
            stream = True
        try:
            msg = await self._request(
                protocol.submit_request(spec, rid, priority=priority, stream=stream)
            )
        finally:
            self._watchers.pop(rid, None)
        events = self._events.pop(rid, [])
        if msg.get("event") == "error":
            raise ClientError(msg.get("error", "unknown server error"))
        payload = wire_payload(msg["result"])
        digest = hashlib.sha256(payload).hexdigest()
        if digest != msg.get("payload_sha256"):
            raise ClientError(
                f"byte-identity contract broken: reconstructed payload "
                f"hashes to {digest[:12]}…, server claims "
                f"{str(msg.get('payload_sha256'))[:12]}…"
            )
        return ClientResult(
            rid=rid,
            ok=bool(msg.get("ok")),
            cache=str(msg.get("cache")),
            key=str(msg.get("key")),
            payload=payload,
            payload_sha256=digest,
            events=events,
        )

    async def submit_many(
        self, specs: Sequence[RunSpec], priority: int = 0
    ) -> List[ClientResult]:
        """Submit a batch concurrently; results come back in spec order."""
        return list(await asyncio.gather(
            *(self.submit(spec, priority=priority) for spec in specs)
        ))

    async def stats(self) -> dict:
        msg = await self._request({"op": "stats", "id": next(self._ids)})
        if msg.get("event") == "error":
            raise ClientError(msg.get("error", "unknown server error"))
        return msg["stats"]

    async def ping(self) -> bool:
        msg = await self._request({"op": "ping", "id": next(self._ids)})
        return msg.get("event") == "pong"

    async def shutdown(self) -> None:
        await self._request({"op": "shutdown", "id": next(self._ids)})


def submit_once(
    path: str,
    spec: RunSpec,
    priority: int = 0,
    stream: bool = False,
    on_event: Optional[Callable[[dict], None]] = None,
) -> ClientResult:
    """Synchronous one-shot submit (connect, submit, disconnect)."""

    async def _go() -> ClientResult:
        async with SweepClient(path) as client:
            return await client.submit(
                spec, priority=priority, stream=stream, on_event=on_event
            )

    return asyncio.run(_go())
