"""Canonical cache keys for run requests.

A content-addressed result cache is only sound if the key function is
**injective over everything that can change the served bytes** and
**stable across processes**.  The key here is a SHA-256 over the
canonical JSON form of the whole request:

* the workload **factory** as its canonical ``module:qualname``
  reference (:func:`repro.resilience.snapshot.factory_ref` — lambdas
  and closures are rejected at key time, exactly as they are at
  snapshot-capture time, because they cannot anchor a replay);
* the factory **kwargs, normalized against the factory's signature
  with defaults applied** — so ``quickstart_run()`` and
  ``quickstart_run(engine="reference")`` are *one* cache entry (they
  are the same simulation by construction), while any actual value
  change (engine, obs_level, sample_interval, fault plan/seed, shell
  or coprocessor parameters, payload bytes) produces a different key;
  values are encoded with the snapshot codec, so ``bytes`` payloads
  and ``to_dict``-able parameter dataclasses key on their content;
* the **effective label** (:meth:`repro.runner.RunSpec.describe`),
  because the label is part of the served result bytes — two requests
  that must be served different bytes must never share a key (for an
  unlabelled spec the description is itself a pure function of the
  factory and raw kwargs, so this costs nothing);
* the **execution parameters** that select how the run is produced
  (today: the checkpoint interval of supervised execution).  These
  must never change the result bytes — the resilience suite proves
  supervised == plain — but keying on them means that even a future
  bug in that machinery could only ever cause a cache miss, never
  serve wrong bytes.

Nothing in the key depends on dict insertion order (kwargs are
sorted), on ``PYTHONHASHSEED`` (no Python ``hash()`` anywhere), or on
process identity — the property suite in
``tests/service/test_cache_key.py`` pins all three.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from typing import Any, Dict, Mapping, Optional

from repro.resilience.snapshot import SnapshotError, encode_value, factory_ref
from repro.runner import RunSpec, resolve_factory

__all__ = ["KEY_SCHEMA", "CacheKeyError", "canonical_request", "cache_key"]

#: Schema tag hashed into every key; bump it on any change to the key
#: material so old store entries miss instead of being misread.
KEY_SCHEMA = "repro.service.key/1"


class CacheKeyError(ValueError):
    """The request cannot be canonically keyed (unanchorable factory,
    unencodable kwarg)."""


def _normalized_kwargs(factory, kwargs: Mapping[str, Any]) -> Dict[str, Any]:
    """Bind ``kwargs`` to the factory signature and apply defaults, so
    an omitted kwarg and its explicit default value key identically.
    Falls back to the raw kwargs when the signature cannot bind them
    (the execution error will then name the real problem)."""
    try:
        sig = inspect.signature(factory)
        bound = sig.bind(**dict(kwargs))
        bound.apply_defaults()
    except (TypeError, ValueError):
        return dict(kwargs)
    out: Dict[str, Any] = {}
    for name, value in bound.arguments.items():
        param = sig.parameters[name]
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            out.update(value)
        elif param.kind is inspect.Parameter.VAR_POSITIONAL:
            out[name] = list(value)
        else:
            out[name] = value
    return out


def canonical_request(
    spec: RunSpec, checkpoint_interval: Optional[int] = None
) -> Dict[str, Any]:
    """The JSON-safe canonical form of one run request — the exact
    material the cache key digests (useful for debugging a miss)."""
    try:
        ref = factory_ref(spec.factory)
    except (SnapshotError, ImportError, ValueError, TypeError) as e:
        raise CacheKeyError(
            f"request is not cacheable: {e} "
            f"(the factory must be a module-level function or a "
            f"'module:function' string)"
        ) from e
    try:
        factory = resolve_factory(ref)
    except (ImportError, ValueError, TypeError) as e:
        raise CacheKeyError(f"request is not cacheable: {e}") from e
    if not callable(factory):
        raise CacheKeyError(
            f"request is not cacheable: {ref!r} resolves to a "
            f"non-callable {type(factory).__name__}"
        )
    kwargs = _normalized_kwargs(factory, spec.kwargs)
    try:
        encoded = {str(k): encode_value(v) for k, v in sorted(kwargs.items())}
    except SnapshotError as e:
        raise CacheKeyError(f"request is not cacheable: {e}") from e
    return {
        "schema": KEY_SCHEMA,
        "factory": ref,
        "kwargs": encoded,
        "label": spec.describe(),
        "exec": {"checkpoint_interval": checkpoint_interval},
    }


def cache_key(spec: RunSpec, checkpoint_interval: Optional[int] = None) -> str:
    """SHA-256 hex digest of the canonical request."""
    blob = json.dumps(
        canonical_request(spec, checkpoint_interval),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
