"""Content-addressed result store with digest-verified reads.

One cache entry per :func:`repro.service.cachekey.cache_key`, stored
as **two files** under ``<root>/objects/<key[:2]>/``:

``<key>.json``
    the payload — exactly the bytes the service serves, which are the
    canonical JSON of one deterministic :class:`~repro.runner.
    RunResult` (``to_dict(include_timing=False)``, sorted keys,
    two-space indent, trailing newline: the same canonical form the
    run reports use).  Keeping the payload verbatim on disk means a
    cache hit is a plain file read and the byte-identity contract is
    checkable with ``cmp``.
``<key>.meta.json``
    the entry's integrity record: schema tag, the key it belongs to,
    and the SHA-256 of the payload bytes.

Every read re-hashes the payload and cross-checks the metadata.  Any
mismatch — a flipped payload byte, a truncated file, metadata for the
wrong key, a schema from a future format — **evicts the entry and
reports a miss**, so corruption is recomputed, never served.  Writes
are atomic (temp file + ``os.replace``), payload before metadata, so
a crash mid-write leaves either no entry or a complete one; a payload
without metadata is treated as corrupt and swept on the next read.

Timing stays out by construction: :func:`result_payload` hardcodes
``include_timing=False``, so wall-clock fields and attempt counts can
never reach a cached entry no matter what the caller asked the report
layer for (regression-tested in ``tests/service``).

The store also owns the per-key **checkpoint directories**
(``<root>/ckpt/<key>/``) that the service's supervised execution path
uses for crash recovery and warm-start recomputation — see
:mod:`repro.service.warmstart`.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.runner import RunResult

__all__ = ["STORE_SCHEMA", "ResultStore", "result_payload", "payload_result"]

STORE_SCHEMA = "repro.service.store/1"


def result_payload(result: RunResult) -> bytes:
    """The canonical served bytes for one run result.

    ``include_timing`` is deliberately not a parameter: cached entries
    must never contain wall-clock fields, supervisor metrics, or
    attempt counts, and the one function that produces cacheable bytes
    is where that rule is enforced.
    """
    doc = result.to_dict(include_timing=False)
    return (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode("utf-8")


def payload_result(payload: bytes) -> RunResult:
    """Rebuild the :class:`RunResult` a payload serializes."""
    return RunResult.from_dict(json.loads(payload.decode("utf-8")))


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ResultStore:
    """File-backed content-addressed cache of run-result payloads.

    All methods are synchronous and cheap (one small file read/write);
    the asyncio service calls them inline between awaits, which also
    makes the miss-check/in-flight-registration sequence atomic on the
    event loop.  ``metrics`` may be shared with the owning service so
    store health lands in the same registry as the cache counters.
    """

    def __init__(self, root: str, metrics: Optional[MetricsRegistry] = None):
        self.root = root
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        os.makedirs(os.path.join(root, "objects"), exist_ok=True)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def payload_path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], f"{key}.json")

    def meta_path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], f"{key}.meta.json")

    def checkpoint_dir(self, key: str) -> str:
        """The per-entry checkpoint directory (created on demand) that
        supervised execution of this request uses."""
        d = os.path.join(self.root, "ckpt", key)
        os.makedirs(d, exist_ok=True)
        return d

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    @staticmethod
    def _atomic_write(path: str, data: bytes) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)

    def put(self, key: str, payload: bytes) -> None:
        """Store ``payload`` under ``key`` (atomic, payload first)."""
        ppath = self.payload_path(key)
        os.makedirs(os.path.dirname(ppath), exist_ok=True)
        self._atomic_write(ppath, payload)
        meta = {
            "schema": STORE_SCHEMA,
            "key": key,
            "payload_sha256": _sha256(payload),
            "size": len(payload),
        }
        self._atomic_write(
            self.meta_path(key),
            (json.dumps(meta, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )
        self.metrics.counter("store.puts").inc()

    def evict(self, key: str) -> bool:
        """Remove an entry (both files); True if anything was removed."""
        removed = False
        for path in (self.meta_path(key), self.payload_path(key)):
            try:
                os.remove(path)
                removed = True
            except FileNotFoundError:
                pass
        if removed:
            self.metrics.counter("store.evictions").inc()
        return removed

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        """The verified payload bytes for ``key``, or None.

        A present-but-unverifiable entry (digest mismatch, truncated or
        missing file, foreign metadata) is evicted and counted in
        ``store.corrupt_evictions`` — the caller sees a plain miss and
        recomputes.
        """
        self.metrics.counter("store.gets").inc()
        try:
            with open(self.meta_path(key), "rb") as fh:
                meta = json.loads(fh.read().decode("utf-8"))
        except FileNotFoundError:
            # a payload without metadata is a torn write: sweep it
            if os.path.exists(self.payload_path(key)):
                self._evict_corrupt(key, "payload present without metadata")
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._evict_corrupt(key, "unreadable metadata")
            return None
        try:
            with open(self.payload_path(key), "rb") as fh:
                payload = fh.read()
        except OSError:
            self._evict_corrupt(key, "unreadable payload")
            return None
        if (
            not isinstance(meta, dict)
            or meta.get("schema") != STORE_SCHEMA
            or meta.get("key") != key
            or meta.get("payload_sha256") != _sha256(payload)
        ):
            self._evict_corrupt(key, "digest/identity mismatch")
            return None
        return payload

    def _evict_corrupt(self, key: str, reason: str) -> None:
        self.metrics.counter("store.corrupt_evictions").inc()
        self.evict(key)

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.meta_path(key))

    def keys(self) -> Iterator[str]:
        objects = os.path.join(self.root, "objects")
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".meta.json"):
                    yield name[: -len(".meta.json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
