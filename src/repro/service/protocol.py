"""The sweep service's wire protocol: newline-delimited JSON.

One request per line, one terminal response line per request, optional
progress-event lines in between (``"stream": true``).  Every line is a
single JSON object serialized compactly with sorted keys and terminated
by ``\\n`` — no framing beyond the newline, no dependencies beyond the
standard library, equally at home on a unix socket or a pipe pair.

Requests (client → server), matched on ``op``:

``{"op": "submit", "id": 1, "factory": "repro.workloads:quickstart_run",
  "kwargs": {...}, "label": "", "priority": 0, "stream": false}``
    run (or serve from cache) one simulation.  ``kwargs`` values are
    encoded with the snapshot codec (:func:`repro.resilience.snapshot.
    encode_value`) so byte payloads survive JSON.  ``id`` is an opaque
    client token echoed on every response line for that request —
    requests on one connection run concurrently, so responses may
    interleave and the ``id`` is how the client reassembles them.
``{"op": "stats", "id": 2}``
    health snapshot: queue depth, in-flight count, cache/store
    counters, span summary.
``{"op": "ping", "id": 3}`` / ``{"op": "shutdown", "id": 4}``
    liveness probe / orderly stop (the server answers ``bye`` first).

Responses (server → client), matched on ``event``:

``{"event": "result", "id": 1, "ok": true, "cache": "hit|miss|dedup",
  "key": "<sha256>", "payload_sha256": "<sha256>", "result": {...}}``
    the terminal line of a submit.  ``result`` is the parsed canonical
    payload; the byte-level contract is carried by ``payload_sha256``:
    re-canonicalizing ``result`` (sorted keys, two-space indent,
    trailing newline — :func:`repro.service.store.result_payload`'s
    form) must reproduce exactly that digest, and the client verifies
    this on every response.
``{"event": "queued"|"started"|"finished"|"hit"|"joined", "id": 1, ...}``
    streamed progress (only when the submit asked for it).
``{"event": "stats"|"pong"|"bye", "id": ...}``
    terminal lines of the other ops.
``{"event": "error", "id": 1, "error": "..."}``
    the request could not be served (unknown op, unparseable line,
    uncacheable spec).  Never sent for a *failed run* — that is a
    normal ``result`` with ``ok: false``.

Execution note: the service runs submissions without the batch
runner's per-spec wall-clock timeout/retry budget; crash tolerance in
supervised mode comes from the Supervisor's own restart budget.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.resilience.snapshot import SnapshotError, decode_value, encode_value, factory_ref
from repro.runner import RunSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.server import ServiceResponse

__all__ = [
    "PROTOCOL_SCHEMA",
    "STATS_SCHEMA",
    "ProtocolError",
    "dumps_line",
    "loads_line",
    "submit_request",
    "spec_from_wire",
    "result_response",
    "error_response",
]

PROTOCOL_SCHEMA = "repro.service/1"
STATS_SCHEMA = "repro.service.stats/1"


class ProtocolError(ValueError):
    """A wire line or request that cannot be honored."""


# ----------------------------------------------------------------------
# line codec
# ----------------------------------------------------------------------
def dumps_line(obj: Dict[str, Any]) -> bytes:
    """One wire line: compact JSON, sorted keys, newline-terminated."""
    return (json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def loads_line(line: bytes) -> Any:
    try:
        return json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as e:
        raise ProtocolError(f"unparseable line: {e}") from e


# ----------------------------------------------------------------------
# request / response builders
# ----------------------------------------------------------------------
def submit_request(
    spec: RunSpec,
    rid: Any,
    priority: int = 0,
    stream: bool = False,
) -> Dict[str, Any]:
    """The wire form of one submission (raises :class:`ProtocolError`
    for specs that cannot cross the wire — lambda factories,
    unencodable kwargs)."""
    try:
        ref = factory_ref(spec.factory)
        kwargs = {str(k): encode_value(v) for k, v in sorted(spec.kwargs.items())}
    except (SnapshotError, ImportError, ValueError, TypeError) as e:
        raise ProtocolError(f"spec is not wire-safe: {e}") from e
    return {
        "op": "submit",
        "id": rid,
        "factory": ref,
        "kwargs": kwargs,
        "label": spec.label,
        "priority": priority,
        "stream": bool(stream),
    }


def spec_from_wire(req: Dict[str, Any]) -> RunSpec:
    """Rebuild the :class:`RunSpec` a submit request describes."""
    factory = req.get("factory")
    if not isinstance(factory, str) or ":" not in factory:
        raise ProtocolError(
            f"submit needs a 'module:function' factory string, got {factory!r}"
        )
    raw = req.get("kwargs", {})
    if not isinstance(raw, dict):
        raise ProtocolError(f"kwargs must be an object, got {type(raw).__name__}")
    try:
        kwargs = {str(k): decode_value(v) for k, v in raw.items()}
    except (SnapshotError, ValueError, TypeError, KeyError) as e:
        raise ProtocolError(f"undecodable kwargs: {e}") from e
    label = req.get("label", "")
    if not isinstance(label, str):
        raise ProtocolError(f"label must be a string, got {type(label).__name__}")
    return RunSpec(factory=factory, kwargs=kwargs, label=label)


def result_response(rid: Any, resp: "ServiceResponse") -> Dict[str, Any]:
    """The terminal line of one submit."""
    return {
        "schema": PROTOCOL_SCHEMA,
        "event": "result",
        "id": rid,
        "ok": resp.ok,
        "cache": resp.cache,
        "key": resp.key,
        "payload_sha256": resp.payload_sha256,
        "result": json.loads(resp.payload.decode("utf-8")),
    }


def error_response(rid: Any, message: str) -> Dict[str, Any]:
    return {"schema": PROTOCOL_SCHEMA, "event": "error", "id": rid,
            "error": message}
