"""The asyncio sweep service: queue, workers, single-flight, cache.

:class:`SweepService` is the long-running core that turns the repo's
batch machinery (:class:`~repro.runner.ParallelRunner` semantics,
:class:`~repro.resilience.Supervisor` execution) into a traffic-serving
system:

* **submit** computes the request's canonical cache key
  (:func:`repro.service.cachekey.cache_key`) and serves a verified
  store hit without simulating anything;
* a miss registers a **single flight**: concurrent identical requests
  — no matter how many clients — attach to the same in-flight future
  and exactly one execution happens (``tests/service/
  test_single_flight.py`` proves exactly-one under concurrency);
* novel requests queue with a **priority** (lower runs earlier,
  FIFO within a priority) and a **bounded worker pool** fans them out
  to a process pool (or, when a ``checkpoint_interval`` is configured,
  to crash-tolerant supervised workers that checkpoint, restart from
  snapshots, and warm-start recomputations — see
  :mod:`repro.service.warmstart`);
* results are canonical deterministic bytes
  (:func:`repro.service.store.result_payload`): a cache hit is
  byte-identical to the cold run, and a batch submitted through the
  service reassembles into a :class:`~repro.runner.RunReport` that is
  byte-identical to a plain runner's at any jobs count.

Failed runs resolve every waiter with the failure result but are
**never cached** — failures caused by infrastructure (a crashed
worker, an exhausted restart budget) are not pure functions of the
spec, so caching them would poison the key.

Observability: the service's :class:`~repro.obs.metrics.
MetricsRegistry` carries the cache counters (``service.cache.hits`` /
``.misses`` / ``.dedup_inflight``), queue instruments
(``service.queue.depth`` gauge, ``service.queue.wait_us`` histogram),
execution counters, and the folded supervisor health of supervised
runs; the :class:`~repro.obs.spans.SpanRecorder` records a queue-wait
span and an execution span per flight plus cache instants, exported as
Chrome-trace JSON like every other timeline in the repo.  All of it is
wall-clock and none of it can reach a cached payload.

The wire frontends (:func:`serve_unix`, :func:`serve_stdio`) speak the
newline-delimited JSON protocol of :mod:`repro.service.protocol` —
``repro serve`` / ``repro submit`` on the CLI, no dependencies beyond
the standard library.
"""

from __future__ import annotations

import asyncio
import itertools
import sys
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.runner import RunReport, RunResult, RunSpec, _execute_spec
from repro.service import protocol
from repro.service.cachekey import CacheKeyError, cache_key
from repro.service.store import ResultStore, payload_result, result_payload
from repro.service.warmstart import (
    checkpoint_cycle,
    has_checkpoint,
    prepare_recompute,
)

__all__ = ["ServiceError", "ServiceResponse", "SweepService",
           "serve_unix", "serve_stdio"]


class ServiceError(RuntimeError):
    """Service-level misuse or lifecycle failure."""


@dataclass
class ServiceResponse:
    """What one submission got back: the served bytes plus provenance."""

    key: str
    payload: bytes
    #: "hit" (served from the store), "miss" (this submission triggered
    #: the execution), or "dedup" (attached to an in-flight execution)
    cache: str
    ok: bool = True

    @property
    def result(self) -> RunResult:
        """The payload parsed back into a (fresh) RunResult."""
        return payload_result(self.payload)

    @property
    def payload_sha256(self) -> str:
        import hashlib

        return hashlib.sha256(self.payload).hexdigest()


@dataclass
class _Outcome:
    payload: bytes
    ok: bool
    error: Optional[str] = None


@dataclass
class _Flight:
    key: str
    spec: RunSpec
    priority: int
    seq: int
    future: "asyncio.Future[_Outcome]"
    enqueued_us: int
    subscribers: List[Callable[[dict], None]] = field(default_factory=list)


class SweepService:
    """Priority queue + bounded workers + single-flight result cache.

    ``jobs`` bounds concurrent executions (and sizes the process
    pool).  ``checkpoint_interval=None`` executes requests in a plain
    process pool; an integer switches every execution to a supervised
    worker that checkpoints every that-many cycles into the store's
    per-key directory (crash recovery + warm-start recomputation).
    ``use_process_pool=False`` executes in threads instead — slower,
    but handy for tests and tiny deployments.

    Use as an async context manager, or call :meth:`start` /
    :meth:`close` explicitly.
    """

    def __init__(
        self,
        store: ResultStore,
        jobs: int = 2,
        checkpoint_interval: Optional[int] = None,
        max_restarts: int = 2,
        heartbeat_timeout: float = 30.0,
        use_process_pool: bool = True,
        span_capacity: int = 100_000,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        self.store = store
        self.jobs = jobs
        self.checkpoint_interval = checkpoint_interval
        self.max_restarts = max_restarts
        self.heartbeat_timeout = heartbeat_timeout
        self.use_process_pool = use_process_pool
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(capacity=span_capacity,
                                  process_name="repro.service")
        #: test hook, mirroring Supervisor.sabotage: applied to the
        #: FIRST worker of the next supervised execution, then cleared
        self.sabotage: Optional[dict] = None
        self._queue: "asyncio.PriorityQueue[Tuple[int, int, _Flight]]" = (
            asyncio.PriorityQueue()
        )
        self._inflight: Dict[str, _Flight] = {}
        self._workers: List[asyncio.Task] = []
        self._seq = itertools.count()
        self._pool: Optional[ProcessPoolExecutor] = None
        self.shutdown_requested = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._workers:
            raise ServiceError("service already started")
        self._workers = [
            asyncio.create_task(self._worker(i), name=f"sweep-worker-{i}")
            for i in range(self.jobs)
        ]

    async def close(self) -> None:
        for task in self._workers:
            task.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        for flight in list(self._inflight.values()):
            if not flight.future.done():
                flight.future.set_result(_Outcome(
                    payload=result_payload(RunResult(
                        index=0, label=flight.spec.describe(), ok=False,
                        error="ServiceError: service closed before execution",
                    )),
                    ok=False,
                    error="service closed",
                ))
        self._inflight.clear()

    async def __aenter__(self) -> "SweepService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(
        self,
        spec: RunSpec,
        priority: int = 0,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> ServiceResponse:
        """Serve one request: store hit, in-flight attach, or enqueue.

        ``priority``: lower runs earlier; equal priorities run in
        submission order.  ``on_event`` (optional, synchronous)
        receives progress dicts: ``hit``/``joined``/``queued`` at
        submission, then ``started`` and ``finished`` from the worker.
        """
        key = cache_key(spec, self.checkpoint_interval)
        # the store check and the in-flight registration below run
        # without an await between them, so they are atomic on the
        # event loop: two identical submissions can never both miss
        # the in-flight table.
        payload = self.store.get(key)
        if payload is not None:
            self.metrics.counter("service.cache.hits").inc()
            self.spans.instant("cache_hit", "cache", "service", key=key[:12])
            if on_event is not None:
                on_event({"event": "hit", "key": key})
            return ServiceResponse(key=key, payload=payload, cache="hit")
        flight = self._inflight.get(key)
        if flight is not None:
            self.metrics.counter("service.cache.dedup_inflight").inc()
            self.spans.instant("dedup_join", "cache", "service", key=key[:12])
            if on_event is not None:
                flight.subscribers.append(on_event)
                on_event({"event": "joined", "key": key})
            # shield: a cancelled waiter must not cancel the shared
            # future out from under the other waiters
            outcome = await asyncio.shield(flight.future)
            return ServiceResponse(key=key, payload=outcome.payload,
                                   cache="dedup", ok=outcome.ok)
        self.metrics.counter("service.cache.misses").inc()
        flight = _Flight(
            key=key,
            spec=spec,
            priority=priority,
            seq=next(self._seq),
            future=asyncio.get_running_loop().create_future(),
            enqueued_us=self.spans.now(),
        )
        if on_event is not None:
            flight.subscribers.append(on_event)
        self._inflight[key] = flight
        self._queue.put_nowait((priority, flight.seq, flight))
        self.metrics.gauge("service.queue.depth").set(self._queue.qsize())
        self.metrics.histogram("service.queue.enqueued_depth").observe(
            self._queue.qsize()
        )
        self._emit(flight, {"event": "queued", "key": key,
                            "priority": priority})
        outcome = await asyncio.shield(flight.future)
        return ServiceResponse(key=key, payload=outcome.payload,
                               cache="miss", ok=outcome.ok)

    async def run_batch(
        self, specs: Sequence[RunSpec], priority: int = 0
    ) -> RunReport:
        """Submit a whole spec list and reassemble a RunReport whose
        deterministic payload is byte-identical to a plain
        :class:`~repro.runner.ParallelRunner` run of the same list —
        results in spec order, duplicates deduplicated behind the
        scenes but reported per position."""
        responses = await asyncio.gather(
            *(self.submit(spec, priority=priority) for spec in specs)
        )
        results: List[RunResult] = []
        for i, resp in enumerate(responses):
            result = resp.result
            result.index = i
            results.append(result)
        return RunReport(results=results, jobs=self.jobs)

    def stats(self) -> dict:
        """Deterministically-shaped health snapshot (values vary)."""
        return {
            "schema": protocol.STATS_SCHEMA,
            "jobs": self.jobs,
            "checkpoint_interval": self.checkpoint_interval,
            "queue_depth": self._queue.qsize(),
            "inflight": len(self._inflight),
            "metrics": self.metrics.to_dict(),
            "store": self.store.metrics.to_dict(),
            "spans": self.spans.summary(),
        }

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _emit(self, flight: _Flight, event: dict) -> None:
        for sub in flight.subscribers:
            try:
                sub(dict(event))
            except Exception:  # noqa: BLE001 — observers must not kill flights
                pass

    async def _worker(self, wid: int) -> None:
        thread = f"worker-{wid}"
        while True:
            _prio, _seq, flight = await self._queue.get()
            self.metrics.gauge("service.queue.depth").set(self._queue.qsize())
            now = self.spans.now()
            self.spans.complete(
                "queue-wait", "queue", "queue",
                ts=flight.enqueued_us, dur=now - flight.enqueued_us,
                key=flight.key[:12], priority=flight.priority,
            )
            self.metrics.histogram("service.queue.wait_us").observe(
                max(0, now - flight.enqueued_us)
            )
            self._emit(flight, {"event": "started", "key": flight.key})
            span = self.spans.begin("execute", "execute", thread,
                                    key=flight.key[:12])
            result = await self._execute(flight)
            self.spans.end(span, ok=result.ok)
            self.metrics.counter("service.executions").inc()
            payload = result_payload(result)
            if result.ok:
                self.store.put(flight.key, payload)
            else:
                # infrastructure failures are not pure functions of the
                # spec; caching them would poison the key
                self.metrics.counter("service.execution_failures").inc()
            # finished-event before set_result so streamed events stay
            # ordered ahead of the waiters' result lines
            self._emit(flight, {"event": "finished", "key": flight.key,
                                "ok": bool(result.ok)})
            del self._inflight[flight.key]
            flight.future.set_result(
                _Outcome(payload=payload, ok=bool(result.ok),
                         error=result.error)
            )
            self._queue.task_done()

    async def _execute(self, flight: _Flight) -> RunResult:
        """One execution, never raising: failures come back as
        ok=False results exactly like the batch runner's."""
        try:
            if self.checkpoint_interval is not None:
                result, sup_counters, warm = await asyncio.to_thread(
                    self._run_supervised, flight
                )
                for name, value in sorted(sup_counters.items()):
                    self.metrics.counter(f"service.{name}").inc(value)
                if warm:
                    self.metrics.counter("service.warmstart.resumes").inc()
                return result
            loop = asyncio.get_running_loop()
            if self.use_process_pool:
                if self._pool is None:
                    self._pool = ProcessPoolExecutor(max_workers=self.jobs)
                return await loop.run_in_executor(
                    self._pool, _execute_spec, 0, flight.spec
                )
            return await asyncio.to_thread(_execute_spec, 0, flight.spec)
        except asyncio.CancelledError:
            raise
        except Exception as e:  # noqa: BLE001 — the result carries it
            return RunResult(
                index=0,
                label=flight.spec.describe(),
                ok=False,
                error=f"{type(e).__name__}: {e}",
                metrics={"traceback": traceback.format_exc(limit=8)},
            )

    def _run_supervised(self, flight: _Flight):
        """Blocking (thread-side) supervised execution of one request:
        checkpoints into the store's per-key directory, restarts
        crashed/hung workers from snapshots, warm-starts a
        recomputation from any surviving checkpoint."""
        from repro.resilience.supervisor import Supervisor

        directory = self.store.checkpoint_dir(flight.key)
        resume = prepare_recompute(directory)
        warm = resume and has_checkpoint(directory)
        if warm:
            self.spans.instant(
                "warm_start", "cache", "service",
                key=flight.key[:12], cycle=checkpoint_cycle(directory),
            )
        supervisor = Supervisor(
            checkpoint_dir=directory,
            interval=self.checkpoint_interval,
            jobs=1,
            heartbeat_timeout=self.heartbeat_timeout,
            max_restarts=self.max_restarts,
        )
        sabotage, self.sabotage = self.sabotage, None
        if sabotage:
            supervisor.sabotage = {0: dict(sabotage)}
        report = supervisor.run([flight.spec], resume=resume)
        counters = {
            name: supervisor.metrics.counter(name).value
            for name in ("supervisor.worker_crashes",
                         "supervisor.worker_hangs",
                         "supervisor.worker_restarts")
            if name in supervisor.metrics
        }
        return report.results[0], counters, warm


# ----------------------------------------------------------------------
# wire frontends: newline-delimited JSON over a unix socket or stdio
# ----------------------------------------------------------------------
async def _handle_request(service: SweepService, req: Any,
                          send: Callable[[dict], None]) -> None:
    """Dispatch one parsed request; every path answers with exactly one
    terminal line (result/stats/pong/bye/error) plus optional streamed
    progress events."""
    if not isinstance(req, dict):
        send(protocol.error_response(None, "request must be a JSON object"))
        return
    rid = req.get("id")
    op = req.get("op")
    if op == "ping":
        send({"id": rid, "event": "pong"})
        return
    if op == "stats":
        send({"id": rid, "event": "stats", "stats": service.stats()})
        return
    if op == "shutdown":
        send({"id": rid, "event": "bye"})
        service.shutdown_requested.set()
        return
    if op == "submit":
        try:
            spec = protocol.spec_from_wire(req)
            priority = int(req.get("priority", 0))
        except (protocol.ProtocolError, TypeError, ValueError) as e:
            send(protocol.error_response(rid, str(e)))
            return
        on_event = None
        if req.get("stream"):
            def on_event(ev: dict, _rid=rid) -> None:
                ev["id"] = _rid
                send(ev)
        try:
            resp = await service.submit(spec, priority=priority,
                                        on_event=on_event)
        except CacheKeyError as e:
            send(protocol.error_response(rid, str(e)))
            return
        send(protocol.result_response(rid, resp))
        return
    send(protocol.error_response(rid, f"unknown op {op!r}"))


async def _serve_streams(service: SweepService, reader: asyncio.StreamReader,
                         send: Callable[[dict], None]) -> None:
    """Read request lines until EOF; each request runs as its own task
    so submissions on one connection execute concurrently."""
    tasks: List[asyncio.Task] = []
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            if not line.strip():
                continue
            try:
                req = protocol.loads_line(line)
            except protocol.ProtocolError as e:
                send(protocol.error_response(None, str(e)))
                continue
            tasks.append(asyncio.create_task(
                _handle_request(service, req, send)
            ))
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


async def serve_unix(service: SweepService, path: str) -> asyncio.AbstractServer:
    """Serve the NDJSON protocol on a unix domain socket at ``path``."""

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        outbox: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()

        async def pump() -> None:
            while True:
                obj = await outbox.get()
                if obj is None:
                    break
                writer.write(protocol.dumps_line(obj))
                await writer.drain()

        pump_task = asyncio.create_task(pump())
        try:
            await _serve_streams(service, reader, outbox.put_nowait)
        except asyncio.CancelledError:
            # loop/server teardown while the connection is open: exit
            # quietly (py3.11 streams logs cancelled handler tasks)
            pass
        finally:
            outbox.put_nowait(None)
            try:
                await pump_task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pump_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    return await asyncio.start_unix_server(handle, path=path)


async def serve_stdio(service: SweepService) -> None:
    """Serve the NDJSON protocol on stdin/stdout until EOF (one client,
    the parent process — no socket file needed)."""
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
    )

    def send(obj: dict) -> None:
        sys.stdout.buffer.write(protocol.dumps_line(obj))
        sys.stdout.buffer.flush()

    await _serve_streams(service, reader, send)
