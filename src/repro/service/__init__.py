"""Sweep-as-a-service: the async exploration server.

The batch tools (:mod:`repro.runner`, :mod:`repro.explore`,
:mod:`repro.resilience`) answer "run this list of simulations"; this
package answers **"keep answering simulation requests"** — a
long-running asyncio server with a priority queue, a bounded worker
pool, and a content-addressed result cache, exposed over a
newline-delimited JSON protocol (``repro serve`` / ``repro submit``).

The load-bearing guarantees, each pinned by ``tests/service``:

* **sound keys** — the cache key (:mod:`~repro.service.cachekey`) is a
  SHA-256 over the canonical request and is injective over everything
  that can change the served bytes: engine, observability tier, sample
  interval, fault plan and seed, shell/coprocessor parameters, label;
* **byte-identity** — a cache hit serves exactly the bytes a cold run
  of the same request produces (:mod:`~repro.service.store` keeps the
  payload verbatim and digest-verifies every read; corruption is
  evicted and recomputed, never served);
* **single-flight** — N concurrent identical submissions cost exactly
  one execution, and all N receive identical bytes
  (:mod:`~repro.service.server`);
* **no timing in the cache** — wall-clock and attempt counts are
  structurally excluded from cacheable bytes;
* **crash tolerance & warm starts** — with a checkpoint interval
  configured, executions run under the PR-4
  :class:`~repro.resilience.Supervisor` and recomputations resume from
  surviving snapshots (:mod:`~repro.service.warmstart`).

See ``docs/sweep-service.md`` for the protocol and operational story.
"""

from repro.service.cachekey import (
    KEY_SCHEMA,
    CacheKeyError,
    cache_key,
    canonical_request,
)
from repro.service.client import ClientError, ClientResult, SweepClient, submit_once
from repro.service.protocol import PROTOCOL_SCHEMA, ProtocolError
from repro.service.server import (
    ServiceError,
    ServiceResponse,
    SweepService,
    serve_stdio,
    serve_unix,
)
from repro.service.store import (
    STORE_SCHEMA,
    ResultStore,
    payload_result,
    result_payload,
)
from repro.service.warmstart import checkpoint_cycle, has_checkpoint, prepare_recompute

__all__ = [
    "KEY_SCHEMA",
    "PROTOCOL_SCHEMA",
    "STORE_SCHEMA",
    "CacheKeyError",
    "ClientError",
    "ClientResult",
    "ProtocolError",
    "ResultStore",
    "ServiceError",
    "ServiceResponse",
    "SweepClient",
    "SweepService",
    "cache_key",
    "canonical_request",
    "checkpoint_cycle",
    "has_checkpoint",
    "payload_result",
    "prepare_recompute",
    "result_payload",
    "serve_stdio",
    "serve_unix",
    "submit_once",
]
