"""Warm-start memoization of run prefixes via PR-4 snapshots.

Supervised execution of a request checkpoints the simulation every N
cycles into the request's per-key directory
(:meth:`repro.service.store.ResultStore.checkpoint_dir`).  Those
checkpoints outlive the run, so when the *same* request has to be
computed again — its cache entry was evicted after corruption, an
operator cleared the objects tree, a crashed worker is being replaced
— the new worker does not start from cycle 0: the
:class:`~repro.resilience.Supervisor` restores the latest snapshot
(digest-verified, as always) and simulates only the remaining suffix.
The shared prefix of the two runs is paid for once.

The one sharp edge this module owns: the Supervisor also persists
per-run **result files**, and on ``resume=True`` it serves them
without re-executing.  That is exactly right for sweep resume, but
wrong for a cache recomputation — the service evicted the cached
entry precisely because it refuses to serve stale bytes it cannot
verify, so the stale result file must go too.  :func:`prepare_recompute`
drops result files (and heartbeats) while keeping ``sweep.json`` and
every ``*.ckpt.json``, then tells the caller whether the directory is
resumable.  Byte-identity is not at risk either way:
``restore(snapshot).run()`` is proven byte-identical to an
uninterrupted run by the resilience suite, and the snapshot digest
cross-check turns a stale or corrupted checkpoint into a clean error
instead of a wrong result.
"""

from __future__ import annotations

import json
import os
from typing import Optional

__all__ = ["prepare_recompute", "has_checkpoint", "checkpoint_cycle"]


def prepare_recompute(ckpt_dir: str) -> bool:
    """Ready a per-key checkpoint directory for (re)computation.

    Returns True when the directory already anchors this request
    (``sweep.json`` exists) and the Supervisor should be called with
    ``resume=True`` to pick up any surviving checkpoint; False for a
    fresh directory.  Stale result files and heartbeats are removed so
    resumption re-executes instead of serving the previous result.
    """
    if not os.path.exists(os.path.join(ckpt_dir, "sweep.json")):
        return False
    for name in os.listdir(ckpt_dir):
        if name.endswith(".result.json") or name.endswith(".hb"):
            try:
                os.remove(os.path.join(ckpt_dir, name))
            except FileNotFoundError:
                pass
    return True


def has_checkpoint(ckpt_dir: str) -> bool:
    """True when at least one snapshot survives to warm-start from."""
    try:
        return any(n.endswith(".ckpt.json") for n in os.listdir(ckpt_dir))
    except FileNotFoundError:
        return False


def checkpoint_cycle(ckpt_dir: str) -> Optional[int]:
    """The boundary cycle of the surviving snapshot (run 0), or None.

    Cheap peek for logging/metrics — the authoritative verification
    (checksum, schema, replay digest) happens inside
    :meth:`repro.resilience.snapshot.SystemSnapshot.load`/``restore``
    when the worker actually resumes.
    """
    path = os.path.join(ckpt_dir, "run-000.ckpt.json")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        return int(doc["body"]["cycle"])
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None
