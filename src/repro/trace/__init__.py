"""Performance measurement support (paper Section 5.4, Figures 9-10).

Eclipse shells accumulate measurements in the stream and task tables;
the main CPU reads them over the control bus at intervals.  This
package provides:

* :mod:`counters` — one-shot snapshots of every shell table (the
  "CPU collects measurement data" role);
* :mod:`sampler` — the periodic sampling process of §5.4 that records
  bounded-memory time series (buffer filling, utilization, task
  progress);
* :mod:`viewer` — Figure 9's architecture view (utilization) and
  application view (buffer filling, stalls), rendered as ASCII charts
  and CSV.
"""

from repro.trace.counters import collect_counters
from repro.trace.sampler import Sampler
from repro.trace.viewer import (
    render_application_view,
    render_architecture_view,
    render_fill_traces,
    render_task_gantt,
    series_to_csv,
    sparkline,
)

__all__ = [
    "Sampler",
    "collect_counters",
    "render_application_view",
    "render_architecture_view",
    "render_fill_traces",
    "render_task_gantt",
    "series_to_csv",
    "sparkline",
]
