"""Analysis of sampled runs: the Figure 10 bottleneck attribution.

The paper's Figure 10 discussion concludes that "the overall
performance is constrained by a different task for each type of MPEG
frame": RLSQ on I frames, DCT on P frames, MC on B frames.  These
helpers compute that attribution from a :class:`repro.trace.Sampler`:

* per-frame-type *service time* — busy cycles per macroblock of each
  task while it was processing that frame, the direct "who is slowest"
  measure;
* per-frame-type *buffer filling* — the mean available data in each
  task's input stream during each frame, Figure 10's plotted signal.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.media.codec import CodecParams
from repro.media.gop import FramePlan
from repro.trace.sampler import Sampler

__all__ = [
    "per_frame_type_service",
    "per_frame_type_fill",
    "bottleneck_by_frame_type",
]


def per_frame_type_service(
    sampler: Sampler,
    plans: List[FramePlan],
    mbs_per_frame: int,
    task_to_coprocessor: Mapping[str, str],
) -> Dict[str, Dict[str, float]]:
    """Mean busy cycles per macroblock, per task, per frame type.

    Frame boundaries are taken from each task's own progress series
    (sampled completed-step counts); busy time comes from the sampled
    utilization of the coprocessor the task runs on.  With one task
    per coprocessor (the decode mapping) the attribution is exact.
    """
    out: Dict[str, Dict[str, float]] = {}
    for task, cop in task_to_coprocessor.items():
        steps = sampler.task_steps[task]
        util = sampler.utilization[cop]
        interval = sampler.interval
        busy_cum: List[float] = []
        acc = 0.0
        for v in util.values:
            acc += v * interval
            busy_cum.append(acc)
        n = min(len(busy_cum), len(steps))
        per_type: Dict[str, List[float]] = defaultdict(list)
        frame = 0
        last_idx = 0
        for i in range(n):
            if steps.values[i] >= (frame + 1) * mbs_per_frame:
                per_type[plans[frame].frame_type.value].append(
                    (busy_cum[i] - busy_cum[last_idx]) / mbs_per_frame
                )
                frame += 1
                last_idx = i
                if frame >= len(plans):
                    break
        out[task] = {t: float(np.mean(v)) for t, v in per_type.items()}
    return out


def per_frame_type_fill(
    sampler: Sampler,
    plans: List[FramePlan],
    mbs_per_frame: int,
    streams: Mapping[str, Tuple[str, str]],
    progress_task: str = "vld",
) -> Dict[str, Dict[str, float]]:
    """Mean buffer filling per stream per frame type (Figure 10's
    series, aggregated).  ``streams`` maps label -> (stream, consumer)
    keys of ``sampler.stream_fill``."""
    marks = sampler.frame_boundaries(progress_task, mbs_per_frame)
    bounds = [0] + [marks[i] for i in sorted(marks)]
    out: Dict[str, Dict[str, float]] = {}
    for label, key in streams.items():
        series = sampler.stream_fill[key]
        per_type: Dict[str, List[float]] = defaultdict(list)
        for i, plan in enumerate(plans):
            hi = bounds[i + 1] if i + 1 < len(bounds) else (series.times[-1] + 1 if len(series) else 0)
            window = series.window(bounds[i], hi)
            if len(window):
                per_type[plan.frame_type.value].append(window.mean())
        out[label] = {t: float(np.mean(v)) for t, v in per_type.items()}
    return out


def bottleneck_by_frame_type(
    service: Mapping[str, Mapping[str, float]]
) -> Dict[str, str]:
    """The slowest (highest service time) task per frame type — the
    paper's 'constrained by' attribution."""
    out: Dict[str, str] = {}
    types = {t for per in service.values() for t in per}
    for t in types:
        out[t] = max(
            (task for task in service if t in service[task]),
            key=lambda task: service[task][t],
        )
    return out
