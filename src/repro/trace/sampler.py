"""Periodic measurement sampling (paper §5.4).

"To reduce hardware costs of measurement support, a separate process in
the shell takes measurement samples at regular intervals."  The
:class:`Sampler` is that process: attach it to a configured system
before ``run()`` and it records, every ``interval`` cycles,

* the filling (space value) of every consumer stream row — Figure 10's
  signal ("available data in the stream buffers for the input of ...
  tasks"),
* each coprocessor's utilization within the window — Figure 9's
  architecture view,
* each task's completed-step count — used to segment the timeline into
  frames.

The sampler stops by itself once every coprocessor has powered down,
so it never keeps the simulation alive.
"""

from __future__ import annotations

from typing import Dict, Tuple, TYPE_CHECKING

from repro.sim import Series

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import EclipseSystem

__all__ = ["Sampler"]


class Sampler:
    """Bounded-memory time-series recorder for one system run.

    Attach via :meth:`repro.core.system.EclipseSystem.attach_sampler`
    (or ``SystemParams.sample_interval`` / ``--sample-interval`` on the
    CLI), which routes through the engine registry so both engines
    sample identically.  Requires ``obs_level`` >= ``"series"``.
    """

    def __init__(self, system: "EclipseSystem", interval: int = 500):
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if not system.coprocessors:
            raise RuntimeError(
                "attach the Sampler after EclipseSystem.configure() — the "
                "coprocessors it samples do not exist yet (build the system, "
                "configure(graph), then attach; or set "
                "SystemParams.sample_interval to have configure() attach it)"
            )
        if not system.obs.series:
            raise RuntimeError(
                f"time-series sampling is disabled at obs_level={system.obs!s} — "
                "build the system with obs_level='series' or 'full' "
                "(SystemParams.obs_level, or --obs-level on the CLI)"
            )
        self.system = system
        self.interval = interval
        #: stream fill series keyed by (stream, consumer task)
        self.stream_fill: Dict[Tuple[str, str], Series] = {}
        #: windowed utilization per coprocessor
        self.utilization: Dict[str, Series] = {}
        #: cumulative completed steps per task
        self.task_steps: Dict[str, Series] = {}
        #: which task id each coprocessor's scheduler held per sample
        #: (-1 = none selected yet) — feeds the task Gantt view
        self.running_task: Dict[str, Series] = {}
        self._busy_prev: Dict[str, int] = {}
        for cname, coproc in system.coprocessors.items():
            self.utilization[cname] = Series(f"util:{cname}")
            self.running_task[cname] = Series(f"task:{cname}")
            self._busy_prev[cname] = 0
        for shell in system.shells.values():
            for row in shell.stream_table:
                if not row.is_producer:
                    key = (row.stream, row.task)
                    self.stream_fill[key] = Series(f"fill:{row.stream}->{row.task}")
            for task in shell.task_table:
                self.task_steps[task.name] = Series(f"steps:{task.name}")
        system.sim.process(self._run())

    def _sample_once(self) -> None:
        now = self.system.sim.now
        for shell in self.system.shells.values():
            for row in shell.stream_table:
                if not row.is_producer:
                    self.stream_fill[(row.stream, row.task)].record(now, row.available())
            for task in shell.task_table:
                self.task_steps[task.name].record(now, task.steps_completed)
        for cname, coproc in self.system.coprocessors.items():
            busy = coproc.utilization.busy_cycles()
            window = busy - self._busy_prev[cname]
            self._busy_prev[cname] = busy
            self.utilization[cname].record(now, window / self.interval)
            current = self.system.shells[cname].scheduler.current
            busy_now = coproc.utilization.is_busy
            self.running_task[cname].record(
                now, current if (current is not None and busy_now) else -1
            )

    def _run(self):
        while True:
            self._sample_once()
            if all(not c.is_alive for c in self.system.coprocessors.values()):
                return
            yield self.system.sim.timeout(self.interval)

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def frame_boundaries(self, task: str, mbs_per_frame: int) -> Dict[int, int]:
        """Map frame index -> first sample time at which ``task`` had
        completed that frame's macroblocks (segments Figure 10's
        x-axis into frames using the task-progress series)."""
        series = self.task_steps[task]
        out: Dict[int, int] = {}
        frame = 0
        for t, steps in series:
            while steps >= (frame + 1) * mbs_per_frame:
                frame += 1
                out[frame] = t
        return out
