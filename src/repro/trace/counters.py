"""Shell-table counter snapshots.

"All shell tables are memory-mapped and accessible to the main CPU via
a control bus" (paper §5.4).  :func:`collect_counters` is that read-out
as one nested, JSON-able dictionary — per shell, per task row, per
stream row, plus cache and bus counters.
"""

from __future__ import annotations

from typing import Any, Dict, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import EclipseSystem

__all__ = ["collect_counters"]


def collect_counters(system: EclipseSystem) -> Dict[str, Any]:
    """Snapshot every hardware counter in the system, at `sim.now`."""
    shells: Dict[str, Any] = {}
    for name, shell in system.shells.items():
        coproc = system.coprocessors.get(name)
        shells[name] = {
            "tasks": {
                t.name: {
                    "steps_completed": t.steps_completed,
                    "steps_aborted": t.steps_aborted,
                    "busy_cycles": t.busy_cycles,
                    "compute_cycles": t.compute_cycles,
                    "stall_cycles": t.stall_cycles,
                    "budget": t.budget,
                    "finished": t.finished,
                }
                for t in shell.task_table
            },
            "streams": {
                f"{row.stream}:{row.port}": {
                    "is_producer": row.is_producer,
                    "space": row.available(),
                    "granted_window": row.granted,
                    "position": row.position,
                    "denied_getspace": row.denied_getspace,
                    "granted_getspace": row.granted_getspace,
                    "putspace_messages": row.putspace_messages_sent,
                    "committed_bytes": row.committed_bytes,
                    "fill_mean": row.fill_stat.mean() if row.fill_stat else None,
                    "fill_max": row.fill_stat.maximum if row.fill_stat else None,
                }
                for row in shell.stream_table
            },
            "read_cache": {
                "hits": shell.read_cache.stats.hits,
                "misses": shell.read_cache.stats.misses,
                "hit_rate": shell.read_cache.stats.hit_rate(),
                "invalidations": shell.read_cache.stats.invalidations,
                "evictions": shell.read_cache.stats.evictions,
                "prefetch_fills": shell.read_cache.stats.prefetch_fills,
            },
            "write_cache": {
                "hits": shell.write_cache.stats.hits,
                "misses": shell.write_cache.stats.misses,
                "evictions": shell.write_cache.stats.evictions,
            },
            "ops": {
                "getspace": shell.getspace_ops,
                "putspace": shell.putspace_ops,
                "gettask": shell.gettask_ops,
                "task_switches": shell.scheduler.task_switches,
                "budget_exhaustions": shell.scheduler.budget_exhaustions,
                "idle_wait_cycles": shell.idle_wait_cycles,
            },
            "robustness": {
                "messages_delivered": shell.messages_delivered,
                "credits_applied": shell.credits_applied,
                "watchdog_fires": shell.watchdog_fires,
                "retries_sent": shell.retries_sent,
                "recoveries": shell.recoveries,
                "corruptions_detected": shell.corruptions_detected,
            },
            "utilization": coproc.utilization.utilization() if coproc else 0.0,
        }
    return {
        "now": system.sim.now,
        "shells": shells,
        "read_bus": {
            "transactions": system.read_bus.stats.transactions,
            "bytes": system.read_bus.stats.bytes_transferred,
            "busy_cycles": system.read_bus.stats.busy_cycles,
            "wait_cycles": system.read_bus.stats.wait_cycles,
        },
        "write_bus": {
            "transactions": system.write_bus.stats.transactions,
            "bytes": system.write_bus.stats.bytes_transferred,
            "busy_cycles": system.write_bus.stats.busy_cycles,
            "wait_cycles": system.write_bus.stats.wait_cycles,
        },
        "dram": {
            "bytes_read": system.dram.bytes_read,
            "bytes_written": system.dram.bytes_written,
        },
        "fabric_messages": system.fabric.messages_sent,
        "fabric": {
            "messages_sent": system.fabric.messages_sent,
            "messages_delivered": system.fabric.messages_delivered,
            "messages_dropped": system.fabric.messages_dropped,
            "bytes_signalled": system.fabric.bytes_signalled,
        },
        "faults_injected": (
            system.fault_injector.stats.to_dict()
            if system.fault_injector is not None
            else None
        ),
        "resilience": dict(system.resilience),
    }
