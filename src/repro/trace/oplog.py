"""Operation logging: a structured trace of task-level-interface ops.

The §7 simulator was a *design tool*: when a run misbehaves, designers
need to see exactly which primitive each coprocessor issued when.
:class:`OpLog` attaches to a configured system and records every
GetTask/GetSpace/Read/Write/PutSpace/compute/external access and every
fabric message as ``(time, unit, task, kind, detail)`` records, with an
optional filter and a bounded buffer (oldest records dropped).

Zero cost when not attached; deterministic (pure observation).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import EclipseSystem

__all__ = ["OpRecord", "OpLog", "render_oplog"]


@dataclass(frozen=True)
class OpRecord:
    """One logged operation."""

    time: int
    unit: str
    task: str
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time:>10}] {self.unit:>6} {self.task:>12} {self.kind:<9} {self.detail}"


class OpLog:
    """Bounded in-memory operation trace for one system."""

    def __init__(
        self,
        system: EclipseSystem,
        capacity: int = 10_000,
        predicate: Optional[Callable[[OpRecord], bool]] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not system.coprocessors:
            raise RuntimeError(
                "attach the OpLog after EclipseSystem.configure() — it wraps "
                "the running coprocessors, which do not exist yet"
            )
        if not system.obs.oplog:
            raise RuntimeError(
                f"operation logging is disabled at obs_level={system.obs!s} — "
                "build the system with obs_level='full' "
                "(SystemParams.obs_level, or --obs-level on the CLI)"
            )
        self.system = system
        self.capacity = capacity
        self.predicate = predicate
        self.records: Deque[OpRecord] = deque(maxlen=capacity)
        self.dropped = 0
        self.total = 0
        self._install()

    # ------------------------------------------------------------------
    def _emit(self, unit: str, task: str, kind: str, detail: str) -> None:
        rec = OpRecord(self.system.sim.now, unit, task, kind, detail)
        if self.predicate is not None and not self.predicate(rec):
            return
        self.total += 1
        if len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append(rec)

    def _install(self) -> None:
        for cname, coproc in self.system.coprocessors.items():
            self._wrap_coprocessor(cname, coproc)
        fabric = self.system.fabric
        original_send = fabric.send

        def send(dest, msg, _orig=original_send):
            self._emit("fabric", "-", type(msg).__name__, f"-> {dest.name} {msg}")
            _orig(dest, msg)

        fabric.send = send  # type: ignore[method-assign]

    def _wrap_coprocessor(self, cname: str, coproc) -> None:
        original = coproc._run_step

        log = self._emit

        def run_step(row, _orig=original):
            log(cname, row.name, "step", "begin")
            outcome = yield from _orig(row)
            log(cname, row.name, "step", f"end:{outcome.value}")
            return outcome

        coproc._run_step = run_step  # type: ignore[method-assign]
        shell = coproc.shell
        for name in ("get_space", "put_space"):
            original_prim = getattr(shell, name)

            def prim(task, port, n, _orig=original_prim, _name=name):
                result = yield from _orig(task, port, n)
                detail = f"{port}:{n}"
                if _name == "get_space":
                    detail += f" -> {'grant' if result else 'DENY'}"
                    if getattr(result, "eos", False):
                        detail += "(eos)"
                log(cname, task.name, _name, detail)
                return result

            setattr(shell, name, prim)

    # ------------------------------------------------------------------
    def filter(self, kind: Optional[str] = None, task: Optional[str] = None) -> List[OpRecord]:
        return [
            r
            for r in self.records
            if (kind is None or r.kind == kind) and (task is None or r.task == task)
        ]

    def __len__(self) -> int:
        return len(self.records)


def render_oplog(log: OpLog, last: int = 40) -> str:
    """The tail of the trace, one op per line."""
    records = list(log.records)[-last:]
    header = (
        f"op log: showing {len(records)} of {log.total} records "
        f"({log.dropped} dropped by the ring buffer)"
    )
    return "\n".join([header] + [str(r) for r in records])
