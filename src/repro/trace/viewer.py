"""Figure 9-style performance visualization, in text.

"The viewer differentiates between architecture views (e.g. VLD
coprocessor utilization) and application views (e.g. stream buffer
filling, stall time of tasks)" (paper §7).  The original tool was
graphical; the content — which series exist and how they are
attributed per task/stream — is what matters, so this module renders
the same views as ASCII charts and CSV.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, TYPE_CHECKING

from repro.sim import Series

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import SystemResult

__all__ = [
    "sparkline",
    "bar",
    "render_fill_traces",
    "render_architecture_view",
    "render_application_view",
    "render_task_gantt",
    "series_to_csv",
]

_LEVELS = " .:-=+*#%@"


def sparkline(values: Iterable[float], vmax: Optional[float] = None, width: Optional[int] = None) -> str:
    """Values -> one line of density characters (0..vmax)."""
    vals = list(values)
    if not vals:
        return ""
    if width is not None and len(vals) > width:
        # decimate by taking the max of each bucket (peaks matter for
        # buffer-filling plots)
        bucket = len(vals) / width
        vals = [
            max(vals[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            for i in range(width)
        ]
    top = vmax if vmax is not None else max(vals)
    if top <= 0:
        return _LEVELS[0] * len(vals)
    out = []
    for v in vals:
        idx = int(min(max(v / top, 0.0), 1.0) * (len(_LEVELS) - 1))
        out.append(_LEVELS[idx])
    return "".join(out)


def bar(fraction: float, width: int = 40) -> str:
    """A utilization bar: ``[#####.....] 50.0%``."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return f"[{'#' * filled}{'.' * (width - filled)}] {100 * fraction:5.1f}%"


def render_fill_traces(
    fill: Mapping[Tuple[str, str], Series],
    buffer_sizes: Optional[Mapping[str, int]] = None,
    width: int = 100,
    frame_marks: Optional[Mapping[int, int]] = None,
    frame_types: Optional[List[str]] = None,
) -> str:
    """The Figure 10 plot: available input data per stream over time.

    ``frame_marks`` (frame index -> cycle) and ``frame_types`` add the
    paper's I/P/B row on top.
    """
    lines: List[str] = []
    all_series = list(fill.items())
    if not all_series:
        return "(no streams sampled)"
    t_end = max((s.times[-1] for _k, s in all_series if len(s)), default=0)
    if frame_marks and frame_types and t_end > 0:
        ruler = [" "] * width
        for frame, t in frame_marks.items():
            pos = min(int(t / t_end * (width - 1)), width - 1)
            if 0 < frame <= len(frame_types):
                ruler[pos] = frame_types[frame - 1]
        lines.append("frames  " + "".join(ruler))
    name_w = max(len(f"{stream}->{task}") for (stream, task), _s in all_series)
    for (stream, task), series in sorted(all_series):
        cap = buffer_sizes.get(stream) if buffer_sizes else None
        label = f"{stream}->{task}".ljust(name_w)
        spark = sparkline(series.values, vmax=cap, width=width)
        suffix = f"  (max {series.max():.0f}" + (f"/{cap} B)" if cap else " B)")
        lines.append(f"{label}  {spark}{suffix}")
    return "\n".join(lines)


def render_architecture_view(result: SystemResult) -> str:
    """Figure 9's architecture view: per-unit utilization, buses,
    caches."""
    lines = ["=== architecture view ==="]
    for name in sorted(result.utilization):
        lines.append(f"{name:>10}  {bar(result.utilization[name])}")
    lines.append(f"{'read bus':>10}  {bar(result.read_bus_utilization)}")
    lines.append(f"{'write bus':>10}  {bar(result.write_bus_utilization)}")
    for name in sorted(result.cache_hit_rate):
        lines.append(
            f"{name:>10}  read-cache hit rate {100 * result.cache_hit_rate[name]:5.1f}%"
        )
    lines.append(f"messages sent: {result.messages_sent}")
    return "\n".join(lines)


def render_application_view(result: SystemResult) -> str:
    """Figure 9's application view: per-task and per-stream statistics
    — progress, aborted steps, stall time, buffer filling."""
    lines = ["=== application view ==="]
    lines.append(
        f"{'task':>12} {'on':>6} {'steps':>8} {'aborts':>7} {'busy':>10} "
        f"{'stall':>9} {'stall%':>7}"
    )
    for name in sorted(result.tasks):
        t = result.tasks[name]
        stall_pct = 100 * t.stall_cycles / t.busy_cycles if t.busy_cycles else 0.0
        lines.append(
            f"{name:>12} {t.coprocessor:>6} {t.steps_completed:>8} "
            f"{t.steps_aborted:>7} {t.busy_cycles:>10} {t.stall_cycles:>9} "
            f"{stall_pct:>6.1f}%"
        )
    lines.append("")
    lines.append(
        f"{'stream':>12} {'bytes':>10} {'fill mean':>10} {'fill max':>9} "
        f"{'denied':>7} {'msgs':>7}"
    )
    for name in sorted(result.streams):
        s = result.streams[name]
        lines.append(
            f"{name:>12} {s.bytes_transferred:>10} {s.fill_mean:>10.1f} "
            f"{s.fill_max:>9.0f} {s.denied_getspace:>7} {s.putspace_messages:>7}"
        )
    return "\n".join(lines)


def render_task_gantt(sampler, system, width: int = 100) -> str:
    """Per-coprocessor task activity over time (the multi-tasking view).

    One row per coprocessor; each column is a sampling window showing
    which task the shell's scheduler held while the unit was busy
    (digit = task id in that shell's table, '.' = idle).  Makes the
    time-sharing of e.g. the DCT coprocessor between forward and
    inverse DCT directly visible."""
    lines: List[str] = []
    legend: List[str] = []
    for cname in sorted(sampler.running_task):
        series = sampler.running_task[cname]
        vals = series.values
        if width and len(vals) > width:
            bucket = len(vals) / width
            vals = [vals[int(i * bucket)] for i in range(width)]
        row = "".join("." if v < 0 else str(int(v) % 10) for v in vals)
        lines.append(f"{cname:>8}  {row}")
        names = [t.name for t in system.shells[cname].task_table]
        legend.append(f"{cname}: " + ", ".join(f"{i}={n}" for i, n in enumerate(names)))
    return "\n".join(lines) + "\n" + "\n".join(legend)


def series_to_csv(series: Mapping[str, Series] | Mapping[Tuple[str, str], Series]) -> str:
    """Export sampled series as CSV (name,time,value rows)."""
    lines = ["name,time,value"]
    for key, s in series.items():
        name = key if isinstance(key, str) else "->".join(key)
        for t, v in s:
            lines.append(f"{name},{t},{v}")
    return "\n".join(lines)
