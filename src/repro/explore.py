"""Design-space exploration runner (paper §7, as a library).

"The simulator parses a setup file that contains these architectural
parameters and collects measurement data" — this module is that loop
as an API: declare a workload factory and a set of parameter axes, and
:func:`sweep` runs every point (full factorial or one-at-a-time),
collecting the metrics the §7 experiments report.

Example
-------
>>> from repro.explore import Axis, sweep           # doctest: +SKIP
>>> points = sweep(
...     workload,                                    # () -> (system, graph)
...     axes=[Axis("prefetch", [0, 2, 8],
...                lambda cfg, v: cfg.shell.update(prefetch_lines=v))],
... )
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.config import CoprocessorSpec, ShellParams, SystemParams
from repro.core.system import EclipseSystem, SystemResult
from repro.kahn.graph import ApplicationGraph

__all__ = ["Axis", "SweepPoint", "sweep", "render_sweep"]


@dataclass(frozen=True)
class Axis:
    """One swept template parameter.

    ``name`` labels the column; ``values`` are the levels; ``apply``
    maps (base_shell, base_system, value) -> (shell, system) parameter
    sets.  The apply function must be pure (it receives copies).
    """

    name: str
    values: Sequence[Any]
    apply: Callable[[ShellParams, SystemParams, Any], tuple]


def shell_axis(name: str, values: Sequence[Any], **_ignored) -> Axis:
    """Axis over one ShellParams field of the same name."""
    return Axis(name, values, lambda sh, sy, v: (sh.with_(**{name: v}), sy))


def system_axis(name: str, values: Sequence[Any]) -> Axis:
    """Axis over one SystemParams field of the same name."""
    return Axis(name, values, lambda sh, sy, v: (sh, sy.with_(**{name: v})))


@dataclass
class SweepPoint:
    """One executed configuration and its headline metrics."""

    settings: Dict[str, Any]
    cycles: int
    stall_cycles: int
    denied_getspace: int
    messages: int
    utilization: Dict[str, float]
    result: SystemResult = field(repr=False, default=None)


def _build_point(build, shell, sys_params):
    """Module-level RunSpec factory for one sweep point: the axis
    ``apply`` closures already ran in the parent, so only ``build`` and
    the two parameter dataclasses cross the process boundary."""
    return build(shell, sys_params)


def _point_from_metrics(combo: Dict[str, Any], metrics: Dict[str, Any]) -> SweepPoint:
    """SweepPoint from a RunResult's deterministic metrics dict."""
    return SweepPoint(
        settings=dict(combo),
        cycles=metrics["cycles"],
        stall_cycles=sum(t["stall_cycles"] for t in metrics["tasks"].values()),
        denied_getspace=sum(s["denied_getspace"] for s in metrics["streams"].values()),
        messages=metrics["messages_sent"],
        utilization=dict(metrics["utilization"]),
    )


def sweep(
    build: Callable[[ShellParams, SystemParams], "tuple[EclipseSystem, ApplicationGraph]"],
    axes: Sequence[Axis],
    base_shell: Optional[ShellParams] = None,
    base_system: Optional[SystemParams] = None,
    mode: str = "factorial",
    keep_results: bool = False,
    parallel: bool = False,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> List[SweepPoint]:
    """Run the exploration.

    ``build(shell, system_params)`` must return a fresh configured-able
    (system, graph) pair for the given parameters.  ``mode`` is
    ``"factorial"`` (cross product of all axes) or ``"oat"``
    (one-at-a-time around the base point).

    With ``parallel=True`` (or ``jobs`` set) the points are fanned out
    over :class:`repro.runner.ParallelRunner`: ``build`` must then be a
    module-level (picklable) callable, and points come back in the same
    deterministic order as the serial path.  ``keep_results`` is a
    serial-only feature (full SystemResults stay in-process).
    """
    base_shell = base_shell or ShellParams()
    base_system = base_system or SystemParams()
    if mode == "factorial":
        combos = [
            dict(zip([a.name for a in axes], values))
            for values in itertools.product(*[a.values for a in axes])
        ]
    elif mode == "oat":
        combos = [{}]
        for axis in axes:
            combos.extend({axis.name: v} for v in axis.values)
    else:
        raise ValueError(f"unknown mode {mode!r}")

    # resolve each combo to concrete parameter sets up front — the axis
    # apply() closures never cross a process boundary
    resolved = []
    for combo in combos:
        shell, sys_params = base_shell, base_system
        for axis in axes:
            if axis.name in combo:
                shell, sys_params = axis.apply(shell, sys_params, combo[axis.name])
        resolved.append((combo, shell, sys_params))

    if parallel or jobs is not None:
        if keep_results:
            raise ValueError("keep_results requires the serial path (jobs=1, parallel=False)")
        from repro.runner import ParallelRunner, RunSpec

        specs = [
            RunSpec(
                factory=_build_point,
                kwargs={"build": build, "shell": shell, "sys_params": sys_params},
                label=f"sweep[{i}] {combo}",
            )
            for i, (combo, shell, sys_params) in enumerate(resolved)
        ]
        report = ParallelRunner(jobs=jobs, timeout=timeout, retries=retries).run(specs)
        failed = report.failures
        if failed:
            raise RuntimeError(
                f"{len(failed)}/{len(specs)} sweep points failed; first: "
                f"{failed[0].label}: {failed[0].error}"
            )
        return [
            _point_from_metrics(combo, res.metrics)
            for (combo, _sh, _sy), res in zip(resolved, report.results)
        ]

    out: List[SweepPoint] = []
    for combo, shell, sys_params in resolved:
        system, graph = build(shell, sys_params)
        system.configure(graph)
        result = system.run()
        point = _point_from_metrics(combo, result.to_dict())
        point.result = result if keep_results else None
        out.append(point)
    return out


def render_sweep(points: Sequence[SweepPoint], baseline: Optional[SweepPoint] = None) -> str:
    """Comparison table over the executed points."""
    if not points:
        return "(no points)"
    base = baseline or points[0]
    names = sorted({k for p in points for k in p.settings})
    header = " ".join(f"{n:>12}" for n in names) + f" {'cycles':>9} {'vs base':>8} {'stalls':>8} {'denied':>7}"
    lines = [header]
    for p in points:
        cols = " ".join(f"{str(p.settings.get(n, '-')):>12}" for n in names)
        lines.append(
            f"{cols} {p.cycles:>9} {p.cycles / base.cycles:>8.3f} "
            f"{p.stall_cycles:>8} {p.denied_getspace:>7}"
        )
    return "\n".join(lines)
