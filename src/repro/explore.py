"""Design-space exploration runner (paper §7, as a library).

"The simulator parses a setup file that contains these architectural
parameters and collects measurement data" — this module is that loop
as an API: declare a workload factory and a set of parameter axes, and
:func:`sweep` runs every point (full factorial or one-at-a-time),
collecting the metrics the §7 experiments report.

Since PR 9 the sweep composes with the configuration solver
(:mod:`repro.verify.solve`): a ``prune`` callable rejects infeasible
points *statically* — no simulation spent on a configuration the
constraint model already refutes — and :func:`successive_halving`
races the surviving frontier across fidelity rungs, promoting only the
best half at each rung.

Example
-------
>>> from repro.explore import Axis, sweep           # doctest: +SKIP
>>> points = sweep(
...     workload,                                    # () -> (system, graph)
...     axes=[Axis("prefetch", [0, 2, 8],
...                lambda cfg, v: cfg.shell.update(prefetch_lines=v))],
... )
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CoprocessorSpec, ShellParams, SystemParams
from repro.core.system import EclipseSystem, SystemResult
from repro.kahn.graph import ApplicationGraph

__all__ = [
    "Axis",
    "SweepPoint",
    "sweep",
    "render_sweep",
    "feasibility_pruner",
    "successive_halving",
]


@dataclass(frozen=True)
class Axis:
    """One swept template parameter.

    ``name`` labels the column; ``values`` are the levels; ``apply``
    maps (base_shell, base_system, value) -> (shell, system) parameter
    sets.  The apply function must be pure (it receives copies).
    """

    name: str
    values: Sequence[Any]
    apply: Callable[[ShellParams, SystemParams, Any], tuple]


def shell_axis(name: str, values: Sequence[Any], **_ignored) -> Axis:
    """Axis over one ShellParams field of the same name."""
    return Axis(name, values, lambda sh, sy, v: (sh.with_(**{name: v}), sy))


def system_axis(name: str, values: Sequence[Any]) -> Axis:
    """Axis over one SystemParams field of the same name."""
    return Axis(name, values, lambda sh, sy, v: (sh, sy.with_(**{name: v})))


@dataclass
class SweepPoint:
    """One executed configuration and its headline metrics."""

    settings: Dict[str, Any]
    cycles: int
    stall_cycles: int
    denied_getspace: int
    messages: int
    utilization: Dict[str, float]
    result: SystemResult = field(repr=False, default=None)


def _build_point(build, shell, sys_params):
    """Module-level RunSpec factory for one sweep point: the axis
    ``apply`` closures already ran in the parent, so only ``build`` and
    the two parameter dataclasses cross the process boundary."""
    return build(shell, sys_params)


def _point_from_metrics(combo: Dict[str, Any], metrics: Dict[str, Any]) -> SweepPoint:
    """SweepPoint from a RunResult's deterministic metrics dict."""
    return SweepPoint(
        settings=dict(combo),
        cycles=metrics["cycles"],
        stall_cycles=sum(t["stall_cycles"] for t in metrics["tasks"].values()),
        denied_getspace=sum(s["denied_getspace"] for s in metrics["streams"].values()),
        messages=metrics["messages_sent"],
        utilization=dict(metrics["utilization"]),
    )


def _enumerate_combos(axes: Sequence[Axis], mode: str) -> List[Dict[str, Any]]:
    if mode == "factorial":
        return [
            dict(zip([a.name for a in axes], values))
            for values in itertools.product(*[a.values for a in axes])
        ]
    if mode == "oat":
        combos: List[Dict[str, Any]] = [{}]
        for axis in axes:
            combos.extend({axis.name: v} for v in axis.values)
        return combos
    raise ValueError(f"unknown mode {mode!r}")


def _resolve_combos(
    combos: Sequence[Dict[str, Any]],
    axes: Sequence[Axis],
    base_shell: ShellParams,
    base_system: SystemParams,
) -> List[Tuple[Dict[str, Any], ShellParams, SystemParams]]:
    """Concrete parameter sets per combo — the axis apply() closures
    run here, never across a process boundary."""
    resolved = []
    for combo in combos:
        shell, sys_params = base_shell, base_system
        for axis in axes:
            if axis.name in combo:
                shell, sys_params = axis.apply(shell, sys_params, combo[axis.name])
        resolved.append((combo, shell, sys_params))
    return resolved


def _run_resolved(
    resolved: Sequence[Tuple[Dict[str, Any], ShellParams, SystemParams]],
    build,
    keep_results: bool,
    parallel: bool,
    jobs: Optional[int],
    timeout: Optional[float],
    retries: int,
) -> List[SweepPoint]:
    if parallel or jobs is not None:
        if keep_results:
            raise ValueError("keep_results requires the serial path (jobs=1, parallel=False)")
        from repro.runner import ParallelRunner, RunSpec

        specs = [
            RunSpec(
                factory=_build_point,
                kwargs={"build": build, "shell": shell, "sys_params": sys_params},
                label=f"sweep[{i}] {combo}",
            )
            for i, (combo, shell, sys_params) in enumerate(resolved)
        ]
        report = ParallelRunner(jobs=jobs, timeout=timeout, retries=retries).run(specs)
        failed = report.failures
        if failed:
            raise RuntimeError(
                f"{len(failed)}/{len(specs)} sweep points failed; first: "
                f"{failed[0].label}: {failed[0].error}"
            )
        return [
            _point_from_metrics(combo, res.metrics)
            for (combo, _sh, _sy), res in zip(resolved, report.results)
        ]

    out: List[SweepPoint] = []
    for combo, shell, sys_params in resolved:
        system, graph = build(shell, sys_params)
        system.configure(graph)
        result = system.run()
        point = _point_from_metrics(combo, result.to_dict())
        point.result = result if keep_results else None
        out.append(point)
    return out


def sweep(
    build: Callable[[ShellParams, SystemParams], "tuple[EclipseSystem, ApplicationGraph]"],
    axes: Sequence[Axis],
    base_shell: Optional[ShellParams] = None,
    base_system: Optional[SystemParams] = None,
    mode: str = "factorial",
    keep_results: bool = False,
    parallel: bool = False,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    prune: Optional[Callable[[Dict[str, Any], ShellParams, SystemParams], Optional[str]]] = None,
    pruned: Optional[List[Tuple[Dict[str, Any], str]]] = None,
) -> List[SweepPoint]:
    """Run the exploration.

    ``build(shell, system_params)`` must return a fresh configured-able
    (system, graph) pair for the given parameters.  ``mode`` is
    ``"factorial"`` (cross product of all axes) or ``"oat"``
    (one-at-a-time around the base point).

    ``prune(combo, shell, sys_params)`` returns a reason string to
    reject the point *before any simulation* (None keeps it); use
    :func:`feasibility_pruner` to reject everything the static
    constraint model refutes.  Rejected combos (with reasons) are
    appended to the ``pruned`` list when one is passed.

    With ``parallel=True`` (or ``jobs`` set) the points are fanned out
    over :class:`repro.runner.ParallelRunner`: ``build`` must then be a
    module-level (picklable) callable, and points come back in the same
    deterministic order as the serial path.  ``keep_results`` is a
    serial-only feature (full SystemResults stay in-process).
    """
    base_shell = base_shell or ShellParams()
    base_system = base_system or SystemParams()
    combos = _enumerate_combos(axes, mode)
    resolved = _resolve_combos(combos, axes, base_shell, base_system)

    if prune is not None:
        surviving = []
        for combo, shell, sys_params in resolved:
            reason = prune(combo, shell, sys_params)
            if reason is None:
                surviving.append((combo, shell, sys_params))
            elif pruned is not None:
                pruned.append((dict(combo), reason))
        resolved = surviving

    return _run_resolved(resolved, build, keep_results, parallel, jobs, timeout, retries)


def feasibility_pruner(
    build: Callable[[ShellParams, SystemParams], "tuple[EclipseSystem, ApplicationGraph]"],
) -> Callable[[Dict[str, Any], ShellParams, SystemParams], Optional[str]]:
    """A ``prune`` callable backed by the shared constraint model.

    Builds the point (cheap — no ``configure``, no simulation) and
    refutes it statically on two levels: the *declared* configuration
    must pass the graph linter with zero errors, and even the *minimal*
    allocation the solver would derive must fit the instance SRAM —
    if it cannot, no amount of tuning rescues the point.
    """

    def prune(combo, shell, sys_params):
        from repro.verify.graph_lint import lint_graph
        from repro.verify.run import _instance_params
        from repro.verify.solve import SolveError, solve_graph

        system, graph = build(shell, sys_params)
        cache_line, sram_size = _instance_params(system)
        report = lint_graph(graph, cache_line=cache_line, sram_size=sram_size)
        if report.has_errors:
            first = report.errors[0]
            return f"{first.rule_id}: {first.message}"
        try:
            solve_graph(graph, sram_size=sram_size, cache_line=cache_line)
        except SolveError as e:
            first = e.report.diagnostics[0]
            return f"{first.rule_id}: {first.message}"
        return None

    return prune


def successive_halving(
    build: Callable[[ShellParams, SystemParams], "tuple[EclipseSystem, ApplicationGraph]"],
    axes: Sequence[Axis],
    rung_axis: Axis,
    base_shell: Optional[ShellParams] = None,
    base_system: Optional[SystemParams] = None,
    keep: float = 0.5,
    metric: Callable[[SweepPoint], Any] = None,
    prune: Optional[Callable[[Dict[str, Any], ShellParams, SystemParams], Optional[str]]] = None,
    pruned: Optional[List[Tuple[Dict[str, Any], str]]] = None,
    parallel: bool = False,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> List[SweepPoint]:
    """Race the (statically feasible) frontier across fidelity rungs.

    ``rung_axis`` orders the fidelity levels cheapest-first (e.g. a
    short payload up to the full-length run).  Every surviving combo
    runs at the cheapest rung; the best ``keep`` fraction (by
    ``metric``, default cycles; deterministic tie-break on the
    settings) is promoted to the next rung, and so on.  The returned
    points are the survivors evaluated at the *final* rung, best
    first.  Budget: N + N/2 + N/4 + … runs instead of N x rungs.
    """
    if not rung_axis.values:
        raise ValueError("rung_axis needs at least one fidelity level")
    if not 0 < keep <= 1:
        raise ValueError(f"keep must be in (0, 1], got {keep}")
    metric = metric or (lambda p: p.cycles)
    base_shell = base_shell or ShellParams()
    base_system = base_system or SystemParams()

    combos = _enumerate_combos(axes, "factorial")
    if prune is not None:
        kept = []
        for combo, shell, sys_params in _resolve_combos(
            combos, axes, base_shell, base_system
        ):
            reason = prune(combo, shell, sys_params)
            if reason is None:
                kept.append(combo)
            elif pruned is not None:
                pruned.append((dict(combo), reason))
        combos = kept

    points: List[SweepPoint] = []
    for i, rung in enumerate(rung_axis.values):
        if not combos:
            return []
        resolved = []
        for combo, shell, sys_params in _resolve_combos(
            combos, axes, base_shell, base_system
        ):
            shell, sys_params = rung_axis.apply(shell, sys_params, rung)
            resolved.append((combo, shell, sys_params))
        points = _run_resolved(
            resolved, build, False, parallel, jobs, timeout, retries
        )
        points.sort(key=lambda p: (metric(p), sorted(p.settings.items()).__repr__()))
        if i < len(rung_axis.values) - 1:
            n_keep = max(1, int(len(points) * keep))
            combos = [p.settings for p in points[:n_keep]]
    return points


def render_sweep(points: Sequence[SweepPoint], baseline: Optional[SweepPoint] = None) -> str:
    """Comparison table over the executed points."""
    if not points:
        return "(no points)"
    base = baseline or points[0]
    names = sorted({k for p in points for k in p.settings})
    header = " ".join(f"{n:>12}" for n in names) + f" {'cycles':>9} {'vs base':>8} {'stalls':>8} {'denied':>7}"
    lines = [header]
    for p in points:
        cols = " ".join(f"{str(p.settings.get(n, '-')):>12}" for n in names)
        lines.append(
            f"{cols} {p.cycles:>9} {p.cycles / base.cycles:>8.3f} "
            f"{p.stall_cycles:>8} {p.denied_getspace:>7}"
        )
    return "\n".join(lines)
