"""Time-weighted statistics probes.

These back the hardware performance counters of Section 5.4 of the
Eclipse paper: buffer filling, coprocessor utilization, access latency.
All probes work on integer simulation time and are safe to sample at
any moment (they fold in the partial interval up to "now").
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["TimeWeightedStat", "UtilizationProbe", "Series"]


class TimeWeightedStat:
    """Tracks a piecewise-constant quantity's time-weighted statistics.

    Call :meth:`update` whenever the quantity changes; query
    :meth:`mean`, :attr:`minimum`, :attr:`maximum` at any time.  Used
    for stream-buffer filling levels.
    """

    def __init__(self, sim: "Simulator", initial: float = 0.0):
        self.sim = sim
        self._value = initial
        self._last_change = sim.now
        self._weighted_sum = 0.0
        self._origin = sim.now
        self.minimum = initial
        self.maximum = initial

    @property
    def value(self) -> float:
        return self._value

    def update(self, new_value: float) -> None:
        now = self.sim.now
        self._weighted_sum += self._value * (now - self._last_change)
        self._value = new_value
        self._last_change = now
        if new_value < self.minimum:
            self.minimum = new_value
        if new_value > self.maximum:
            self.maximum = new_value

    def add(self, delta: float) -> None:
        self.update(self._value + delta)

    def mean(self) -> float:
        """Time-weighted mean over the observation window (up to now)."""
        now = self.sim.now
        total = now - self._origin
        if total <= 0:
            return self._value
        return (self._weighted_sum + self._value * (now - self._last_change)) / total


class UtilizationProbe:
    """Tracks the busy fraction of a unit (coprocessor utilization).

    Mark work intervals with :meth:`set_busy` / :meth:`set_idle`;
    :meth:`utilization` returns busy-time / elapsed-time.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._busy = False
        self._busy_since = 0
        self._busy_total = 0
        self._origin = sim.now

    @property
    def is_busy(self) -> bool:
        return self._busy

    def set_busy(self) -> None:
        if not self._busy:
            self._busy = True
            self._busy_since = self.sim.now

    def set_idle(self) -> None:
        if self._busy:
            self._busy_total += self.sim.now - self._busy_since
            self._busy = False

    def busy_cycles(self) -> int:
        extra = (self.sim.now - self._busy_since) if self._busy else 0
        return self._busy_total + extra

    def utilization(self) -> float:
        elapsed = self.sim.now - self._origin
        if elapsed <= 0:
            return 0.0
        return self.busy_cycles() / elapsed


class Series:
    """A recorded time series of (time, value) samples.

    This is what the Figure 9/10 viewer plots.  Recording every change
    of a fast signal would need unbounded memory, so the paper samples
    at intervals (Section 5.4); :class:`repro.trace.sampler.Sampler`
    drives :meth:`record` periodically.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[int] = []
        self.values: List[float] = []

    def record(self, time: int, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def window(self, t0: int, t1: int) -> "Series":
        """Samples with t0 <= time < t1, as a new Series."""
        out = Series(self.name)
        for t, v in zip(self.times, self.values):
            if t0 <= t < t1:
                out.record(t, v)
        return out

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0
