"""Queued resources: mutual exclusion and producer/consumer hand-off.

``Resource`` models an arbitrated shared unit (a bus, a memory port):
processes ``request()`` it, wait for the grant event, and ``release()``
when done.  Grant order is FIFO or priority-then-FIFO — both
deterministic, matching hardware arbiters.

``Store`` is an unbounded or bounded deposit box used for message
networks (putspace messages between shells travel through stores).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.events import Event
from repro.sim.kernel import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["Resource", "Store", "Request"]


class Request(Event):
    """Grant event for :class:`Resource`, carrying its request time."""

    __slots__ = ("request_time",)

    def __init__(self, sim: "Simulator"):
        super().__init__(sim)
        self.request_time = sim.now


class Resource:
    """A shared resource with ``capacity`` simultaneous holders.

    ``request(priority=...)`` returns an :class:`Event` that fires when
    the resource is granted.  Lower priority values are served first;
    equal priorities are FIFO.  ``release(grant)`` frees the slot.

    Example
    -------
    >>> from repro.sim import Simulator
    >>> sim = Simulator()
    >>> bus = Resource(sim, capacity=1)
    >>> def user(sim, bus):
    ...     grant = bus.request()
    ...     yield grant
    ...     yield sim.timeout(4)     # occupy the bus for 4 cycles
    ...     bus.release(grant)
    >>> _ = sim.process(user(sim, bus))
    >>> sim.run()
    """

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._holders: set[Event] = set()
        self._waiting: List[Tuple[int, int, Event]] = []  # (priority, seq, event)
        self._seq = 0
        # instrumentation
        self.total_grants = 0
        self.total_wait_cycles = 0

    @property
    def in_use(self) -> int:
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, priority: int = 0) -> "Request":
        """Ask for the resource; returns the grant event."""
        grant = Request(self.sim)
        if len(self._holders) < self.capacity and not self._waiting:
            self._grant(grant)
        else:
            self._seq += 1
            # insertion keeping (priority, seq) order; linear scan is fine
            # for hardware-scale queues (a handful of masters).
            entry = (priority, self._seq, grant)
            idx = len(self._waiting)
            while idx > 0 and self._waiting[idx - 1][:2] > entry[:2]:
                idx -= 1
            self._waiting.insert(idx, entry)
        return grant

    def _grant(self, grant: "Request") -> None:
        self._holders.add(grant)
        self.total_grants += 1
        self.total_wait_cycles += self.sim.now - grant.request_time
        grant.succeed(self)

    def release(self, grant: Event) -> None:
        """Release a previously granted slot."""
        if grant not in self._holders:
            raise SimulationError("release() of a grant that is not held")
        self._holders.remove(grant)
        if self._waiting and len(self._holders) < self.capacity:
            _prio, _seq, nxt = self._waiting.pop(0)
            self._grant(nxt)

    def cancel(self, grant: Event) -> None:
        """Withdraw a pending (not yet granted) request."""
        for i, (_p, _s, ev) in enumerate(self._waiting):
            if ev is grant:
                del self._waiting[i]
                return
        raise SimulationError("cancel() of a request that is not pending")


class Store:
    """FIFO deposit box with optional capacity bound.

    ``put(item)`` returns an event firing when the item is accepted
    (immediately if below capacity); ``get()`` returns an event firing
    with the oldest item once one is available.
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()
        self.total_puts = 0
        self.total_gets = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first) — for inspection only."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        ev = Event(self.sim)
        if self._getters:
            # hand straight to the oldest waiting getter
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
            self.total_puts += 1
            self.total_gets += 1
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
            self.total_puts += 1
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
            self.total_gets += 1
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed(None)
                self.total_puts += 1
        else:
            self._getters.append(ev)
        return ev
