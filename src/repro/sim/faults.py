"""Deterministic fault injection for the shell/transport layer.

The Eclipse shells are sold on "absorbing system-level issues" —
distributed putspace synchronization, explicit coherency, best-guess
scheduling — but a happy-path simulator cannot demonstrate that the
protocol actually tolerates the message loss, duplication, reordering
and stalls a real interconnect exhibits.  This module provides the
adversary: a seed-driven :class:`FaultPlan` describing *what* to break,
and a :class:`FaultInjector` that makes the per-event decisions
reproducibly (same plan + same event order → byte-identical schedule).

The injector is deliberately model-agnostic: it only ever sees opaque
messages, coprocessor names and cache-line payloads.  The hooks live in
:mod:`repro.core.messages` (message faults), :mod:`repro.core.shell`
(read-cache corruption) and :mod:`repro.core.coprocessor` (stalls);
the recovery machinery that makes these faults survivable — idempotent
cumulative putspace credits, the shell watchdog, the deadlock detector
— lives in :mod:`repro.core` as well.

Kahn determinism is the oracle: under any *eventually recovered* fault
schedule the cycle-level stream histories must stay byte-identical to
the functional executor's (see ``tests/integration/
test_conformance_differential.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "StallSpec",
    "LossPlan",
    "CORRUPTION_MODES",
    "corrupt_state",
]


@dataclass(frozen=True)
class LossPlan:
    """Seed-driven description of a lossy network ingest link.

    This is the *network* fault axis: it shapes the packet transport in
    front of the demux (:mod:`repro.net`), while the sibling knobs on
    :class:`FaultPlan` shape the on-chip fabric inside the simulated
    system.  The split matters for determinism — the link has its own
    ``random.Random(seed)``, so adding network loss never perturbs the
    in-simulation fault schedule of the same seed.

    Probabilities are per transmitted packet.  ``fec_group`` data
    packets share one XOR parity packet (0 disables FEC); NACK-driven
    retransmission starts ``rtx_timeout`` ticks after a gap is
    detected and backs off by ``rtx_backoff`` per attempt (the
    watchdog's :class:`repro.core.backoff.ExponentialBackoff`
    discipline), giving up after ``max_rtx`` attempts.  ``deadline``
    ticks after the last send, still-missing packets are declared lost
    and the decode degrades gracefully instead of waiting forever.
    """

    seed: int = 0
    #: probability a packet is dropped on the link
    drop_prob: float = 0.0
    #: probability a packet is delivered twice
    dup_prob: float = 0.0
    #: probability a packet gets extra jitter (letting later packets
    #: overtake it in arrival order)
    reorder_prob: float = 0.0
    #: maximum extra delay (ticks) per jitter/reorder decision
    max_jitter: int = 8
    #: +/- fractional variation of the send pacing (rate variation)
    rate_var: float = 0.0
    #: data packets per XOR parity group (0 = FEC off)
    fec_group: int = 4
    #: ticks without a missing seq before the first NACK
    rtx_timeout: int = 16
    #: multiplicative backoff per NACK attempt
    rtx_backoff: int = 2
    #: NACK attempts per missing packet before giving up
    max_rtx: int = 3
    #: ticks past the last send before missing packets are declared lost
    deadline: int = 400

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "reorder_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if not 0.0 <= self.rate_var <= 1.0:
            raise ValueError(f"rate_var must be in [0, 1], got {self.rate_var}")
        if self.max_jitter < 1:
            raise ValueError(f"max_jitter must be >= 1, got {self.max_jitter}")
        if self.fec_group < 0:
            raise ValueError(f"fec_group must be >= 0, got {self.fec_group}")
        if self.rtx_timeout < 1:
            raise ValueError(f"rtx_timeout must be >= 1, got {self.rtx_timeout}")
        if self.rtx_backoff < 1:
            raise ValueError(f"rtx_backoff must be >= 1, got {self.rtx_backoff}")
        if self.max_rtx < 0:
            raise ValueError(f"max_rtx must be >= 0, got {self.max_rtx}")
        if self.deadline < 1:
            raise ValueError(f"deadline must be >= 1, got {self.deadline}")

    # ------------------------------------------------------------------
    def any_loss(self) -> bool:
        """True if this link can disturb the packet flow at all."""
        return bool(self.drop_prob or self.dup_prob or self.reorder_prob
                    or self.rate_var)

    def with_(self, **kw) -> "LossPlan":
        """Copy with overrides (seed-sweep helper)."""
        return replace(self, **kw)

    def to_dict(self) -> Dict[str, object]:
        return {
            name: getattr(self, name)
            for name in (
                "seed", "drop_prob", "dup_prob", "reorder_prob", "max_jitter",
                "rate_var", "fec_group", "rtx_timeout", "rtx_backoff",
                "max_rtx", "deadline",
            )
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LossPlan":
        return cls(**data)

    _PRESETS = {
        "none": {},
        "mild": {"drop_prob": 0.02, "reorder_prob": 0.05},
        "moderate": {"drop_prob": 0.05, "dup_prob": 0.02,
                     "reorder_prob": 0.10, "rate_var": 0.2},
        "heavy": {"drop_prob": 0.20, "dup_prob": 0.05,
                  "reorder_prob": 0.20, "rate_var": 0.4},
        "jitter": {"reorder_prob": 0.5, "max_jitter": 24, "rate_var": 0.3},
    }

    @classmethod
    def parse(cls, spec: str, seed: Optional[int] = None) -> "LossPlan":
        """Build a plan from a CLI spec string: a preset name
        (``none``, ``mild``, ``moderate``, ``heavy``, ``jitter``) or a
        comma list of ``key=value`` pairs, e.g. ``drop=0.1,seed=3``.
        Keys: drop, dup, reorder, rate_var (floats); max_jitter,
        fec_group, rtx_timeout, rtx_backoff, max_rtx, deadline, seed
        (integers)."""
        spec = spec.strip()
        if spec in cls._PRESETS:
            plan = cls(**cls._PRESETS[spec])
            return plan.with_(seed=seed) if seed is not None else plan
        alias = {"drop": "drop_prob", "dup": "dup_prob",
                 "reorder": "reorder_prob", "loss": "drop_prob"}
        kw: Dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"bad loss-plan item {item!r} (want key=value)")
            key, value = (s.strip() for s in item.split("=", 1))
            key = alias.get(key, key)
            if key in ("seed", "max_jitter", "fec_group", "rtx_timeout",
                       "rtx_backoff", "max_rtx", "deadline"):
                kw[key] = int(value)
            elif key.endswith("_prob") or key == "rate_var":
                kw[key] = float(value)
            else:
                raise ValueError(f"unknown loss-plan key {key!r}")
        if seed is not None:
            kw["seed"] = seed
        return cls(**kw)

    def describe(self) -> str:
        """Compact human-readable summary of the non-default knobs."""
        parts = [f"seed={self.seed}"]
        for name, label in (("drop_prob", "drop"), ("dup_prob", "dup"),
                            ("reorder_prob", "reorder"), ("rate_var", "rate_var")):
            v = getattr(self, name)
            if v:
                parts.append(f"{label}={v:g}")
        parts.append(f"fec={self.fec_group}" if self.fec_group else "fec=off")
        parts.append(f"rtx={self.max_rtx}")
        return ",".join(parts)


@dataclass(frozen=True)
class StallSpec:
    """One scheduled coprocessor stall: freeze ``coprocessor`` for
    ``cycles`` at its first step boundary at or after ``at_cycle``."""

    coprocessor: str
    at_cycle: int
    cycles: int

    def __post_init__(self) -> None:
        if self.at_cycle < 0:
            raise ValueError(f"at_cycle must be >= 0, got {self.at_cycle}")
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles}")

    def to_dict(self) -> Dict[str, object]:
        return {"coprocessor": self.coprocessor, "at_cycle": self.at_cycle,
                "cycles": self.cycles}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StallSpec":
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """Seed-driven description of the faults to inject.

    Probabilities are per-event (per message sent, per coprocessor step
    boundary, per cache-line fill).  ``drop_limit`` caps the total
    number of dropped messages: a finite cap makes the schedule
    *eventually recovered* by construction, which is what the
    differential conformance harness needs to terminate.
    """

    seed: int = 0
    #: probability a putspace/eos message is silently dropped
    drop_prob: float = 0.0
    #: probability a message is delivered twice
    dup_prob: float = 0.0
    #: probability a message is delayed by 1..max_delay extra cycles
    delay_prob: float = 0.0
    #: probability a message is reordered (an independent extra delay
    #: that lets later messages overtake it)
    reorder_prob: float = 0.0
    #: maximum extra delay per delay/reorder/duplicate decision
    max_delay: int = 48
    #: probability a coprocessor stalls at a step boundary
    stall_prob: float = 0.0
    #: maximum stall length in cycles
    max_stall: int = 256
    #: probability a read-cache line fill is corrupted (transient;
    #: detected by the shell's parity check and refetched)
    corrupt_prob: float = 0.0
    #: hard cap on total dropped messages (None = unlimited)
    drop_limit: Optional[int] = None
    #: explicit scheduled stalls, on top of the probabilistic ones
    stalls: Tuple[StallSpec, ...] = ()
    #: network-ingest loss axis (consumed at workload-build time by
    #: :mod:`repro.net`, not by the in-simulation injector)
    loss: Optional[LossPlan] = None

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "delay_prob", "reorder_prob",
                     "stall_prob", "corrupt_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {self.max_delay}")
        if self.max_stall < 1:
            raise ValueError(f"max_stall must be >= 1, got {self.max_stall}")
        if self.drop_limit is not None and self.drop_limit < 0:
            raise ValueError(f"drop_limit must be >= 0, got {self.drop_limit}")

    # ------------------------------------------------------------------
    def any_faults(self) -> bool:
        """True if this plan can inject anything at all."""
        return bool(
            self.drop_prob or self.dup_prob or self.delay_prob
            or self.reorder_prob or self.stall_prob or self.corrupt_prob
            or self.stalls
        )

    def with_(self, **kw) -> "FaultPlan":
        """Copy with overrides (seed-sweep helper)."""
        return replace(self, **kw)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form; round-trips through :meth:`from_dict` (the
        run reports serialize the plan alongside the measurements)."""
        out: Dict[str, object] = {
            name: getattr(self, name)
            for name in (
                "seed", "drop_prob", "dup_prob", "delay_prob", "reorder_prob",
                "max_delay", "stall_prob", "max_stall", "corrupt_prob",
                "drop_limit",
            )
        }
        out["stalls"] = [s.to_dict() for s in self.stalls]
        # the loss axis is omitted when unset so pre-network plans (and
        # their snapshot digests) serialize exactly as before
        if self.loss is not None:
            out["loss"] = self.loss.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        data = dict(data)
        stalls = tuple(StallSpec.from_dict(s) for s in data.pop("stalls", ()))
        loss = data.pop("loss", None)
        if loss is not None and not isinstance(loss, LossPlan):
            loss = LossPlan.from_dict(loss)
        return cls(stalls=stalls, loss=loss, **data)

    # ------------------------------------------------------------------
    @classmethod
    def chaos(cls, seed: int = 0, drop_limit: Optional[int] = 64) -> "FaultPlan":
        """A moderate everything-at-once plan: drops (capped so the
        schedule is eventually recovered), duplicates, delays,
        reordering, stalls and transient cache corruption."""
        return cls(
            seed=seed,
            drop_prob=0.15,
            dup_prob=0.10,
            delay_prob=0.25,
            reorder_prob=0.20,
            max_delay=64,
            stall_prob=0.02,
            max_stall=300,
            corrupt_prob=0.02,
            drop_limit=drop_limit,
        )

    _PRESETS = {
        "none": {},
        "chaos": None,  # handled specially (classmethod defaults)
        "drop": {"drop_prob": 0.3, "drop_limit": 64},
        "dup": {"dup_prob": 0.3},
        "delay": {"delay_prob": 0.4, "reorder_prob": 0.3, "max_delay": 80},
        "stall": {"stall_prob": 0.05, "max_stall": 400},
        "corrupt": {"corrupt_prob": 0.05},
        "blackout": {"drop_prob": 1.0},  # recovery-off deadlock demo
    }

    @classmethod
    def parse(cls, spec: str, seed: Optional[int] = None) -> "FaultPlan":
        """Build a plan from a CLI spec string.

        Either a preset name (``chaos``, ``drop``, ``dup``, ``delay``,
        ``stall``, ``corrupt``, ``blackout``, ``none``) or a comma list
        of ``key=value`` pairs, e.g. ``drop=0.2,delay=0.3,seed=7``.
        Keys: drop, dup, delay, reorder, stall, corrupt (probabilities);
        max_delay, max_stall, drop_limit, seed (integers).
        """
        spec = spec.strip()
        if spec in cls._PRESETS:
            if spec == "chaos":
                plan = cls.chaos()
            else:
                plan = cls(**cls._PRESETS[spec])
            return plan.with_(seed=seed) if seed is not None else plan
        alias = {
            "drop": "drop_prob", "dup": "dup_prob", "delay": "delay_prob",
            "reorder": "reorder_prob", "stall": "stall_prob",
            "corrupt": "corrupt_prob",
        }
        kw: Dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"bad fault-plan item {item!r} (want key=value)")
            key, value = (s.strip() for s in item.split("=", 1))
            key = alias.get(key, key)
            if key == "loss":
                kw["loss"] = LossPlan.parse(value)
            elif key in ("seed", "max_delay", "max_stall", "drop_limit"):
                kw[key] = int(value)
            elif key.endswith("_prob"):
                kw[key] = float(value)
            else:
                raise ValueError(f"unknown fault-plan key {key!r}")
        if seed is not None:
            kw["seed"] = seed
        return cls(**kw)

    def describe(self) -> str:
        """Compact human-readable summary of the non-default knobs."""
        parts = [f"seed={self.seed}"]
        for name, label in (
            ("drop_prob", "drop"), ("dup_prob", "dup"), ("delay_prob", "delay"),
            ("reorder_prob", "reorder"), ("stall_prob", "stall"),
            ("corrupt_prob", "corrupt"),
        ):
            v = getattr(self, name)
            if v:
                parts.append(f"{label}={v:g}")
        if self.drop_limit is not None and self.drop_prob:
            parts.append(f"drop_limit={self.drop_limit}")
        if self.stalls:
            parts.append(f"stalls={len(self.stalls)}")
        if self.loss is not None:
            parts.append(f"loss=[{self.loss.describe()}]")
        return ",".join(parts)


@dataclass
class FaultStats:
    """What the injector actually did (all monotone counters)."""

    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    messages_reordered: int = 0
    stalls_injected: int = 0
    stall_cycles: int = 0
    corruptions_injected: int = 0

    def total_injected(self) -> int:
        return (
            self.messages_dropped + self.messages_duplicated
            + self.messages_delayed + self.messages_reordered
            + self.stalls_injected + self.corruptions_injected
        )

    def to_dict(self) -> Dict[str, int]:
        return {
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "messages_delayed": self.messages_delayed,
            "messages_reordered": self.messages_reordered,
            "stalls_injected": self.stalls_injected,
            "stall_cycles": self.stall_cycles,
            "corruptions_injected": self.corruptions_injected,
        }


class FaultInjector:
    """Makes the per-event fault decisions for one simulation run.

    One private ``random.Random(plan.seed)`` drives every decision, so
    a (plan, model) pair replays the identical fault schedule — the
    property the differential seed sweep relies on.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.stats = FaultStats()
        self._pending_stalls: List[StallSpec] = sorted(
            plan.stalls, key=lambda s: s.at_cycle
        )

    def export_state(self) -> Dict[str, object]:
        """JSON-safe view of the injector's progress (plan, stats, and
        which scheduled stalls have not fired yet).  The RNG cursor is
        not serialized — snapshot restore replays the run from cycle 0,
        which reconstructs it exactly."""
        return {
            "plan": self.plan.to_dict(),
            "stats": self.stats.to_dict(),
            "pending_stalls": [s.to_dict() for s in self._pending_stalls],
        }

    # ------------------------------------------------------------------
    # message faults (hook: MessageFabric.send)
    # ------------------------------------------------------------------
    def plan_message(self, msg: object) -> List[int]:
        """Decide the fate of one message: a list of extra delivery
        delays — ``[0]`` is a clean delivery, ``[]`` a drop, two
        entries a duplication."""
        p, r = self.plan, self.rng
        if p.drop_prob and r.random() < p.drop_prob:
            if p.drop_limit is None or self.stats.messages_dropped < p.drop_limit:
                self.stats.messages_dropped += 1
                return []
        delays = [0]
        if p.delay_prob and r.random() < p.delay_prob:
            delays[0] += r.randrange(1, p.max_delay + 1)
            self.stats.messages_delayed += 1
        if p.reorder_prob and r.random() < p.reorder_prob:
            delays[0] += r.randrange(1, p.max_delay + 1)
            self.stats.messages_reordered += 1
        if p.dup_prob and r.random() < p.dup_prob:
            delays.append(delays[0] + r.randrange(0, p.max_delay + 1))
            self.stats.messages_duplicated += 1
        return delays

    # ------------------------------------------------------------------
    # coprocessor stalls (hook: Coprocessor step loop)
    # ------------------------------------------------------------------
    def coproc_stall(self, name: str, now: int) -> int:
        """Cycles ``name`` must freeze at this step boundary (0 = none).
        Explicit :class:`StallSpec` entries fire once each; the
        probabilistic stalls come on top."""
        cycles = 0
        keep: List[StallSpec] = []
        for spec in self._pending_stalls:
            if spec.coprocessor == name and spec.at_cycle <= now:
                cycles += spec.cycles
            else:
                keep.append(spec)
        self._pending_stalls = keep
        p = self.plan
        if p.stall_prob and self.rng.random() < p.stall_prob:
            cycles += self.rng.randrange(1, p.max_stall + 1)
        if cycles:
            self.stats.stalls_injected += 1
            self.stats.stall_cycles += cycles
        return cycles

    # ------------------------------------------------------------------
    # read-cache corruption (hook: Shell._fetch_line)
    # ------------------------------------------------------------------
    def corrupt_line(self, data: bytes) -> Optional[bytes]:
        """Maybe flip one bit of a cache-line fill; None = leave it."""
        p = self.plan
        if not p.corrupt_prob or not data:
            return None
        if self.rng.random() >= p.corrupt_prob:
            return None
        i = self.rng.randrange(len(data))
        bit = 1 << self.rng.randrange(8)
        out = bytearray(data)
        out[i] ^= bit
        self.stats.corruptions_injected += 1
        return bytes(out)


# ----------------------------------------------------------------------
# state-corruption modes (adversary for the online invariant monitors)
# ----------------------------------------------------------------------
# Unlike the transient faults above — which the shell protocol is built
# to survive — these silently break the synchronization state itself:
# the failures a soft error in a stream-table SRAM cell or a logic bug
# would cause.  Nothing recovers from them; the point is that the
# `repro.resilience` monitors *detect* them.  Everything is duck-typed
# on the system object (shells with stream/task tables, an SRAM, a
# write cache) so this module still never imports `repro.core`.


def _rows(system):
    for shell in system.shells.values():
        for row in shell.stream_table:
            yield shell, row


def _corrupt_credit_loss(system) -> str:
    """Grant a consumer row space the producer never committed —
    violates putspace credit conservation (monitor I101)."""
    for _shell, row in _rows(system):
        if not row.is_producer:
            row.space += 8
            return f"{row.task}.{row.port}: space += 8 beyond producer position"
    raise ValueError("no consumer row to corrupt")


def _corrupt_buffer_overrun(system) -> str:
    """Extend a granted window beyond the cyclic buffer —
    violates buffer containment (monitor I102)."""
    for _shell, row in _rows(system):
        row.granted = row.buffer.size + 8
        return f"{row.task}.{row.port}: granted = buffer.size + 8"
    raise ValueError("no stream row to corrupt")


def _corrupt_counter_rewind(system) -> str:
    """Rewind a cumulative stream position — violates counter
    monotonicity (monitor I103)."""
    best = None
    for _shell, row in _rows(system):
        if row.position > 0:
            best = row
            break
    if best is None:
        raise ValueError("no row with position > 0 to rewind")
    best.position -= 1
    return f"{best.task}.{best.port}: position -= 1"


def _corrupt_stale_dirty_line(system) -> str:
    """Plant a dirty write-cache line outside every granted producer
    window — violates explicit cache coherency (monitor I104)."""
    for name, shell in sorted(system.shells.items()):
        line = shell.write_cache.line_size
        addr = (system.sram._next_free + line - 1) // line * line
        if addr + line > system.sram.size:
            continue
        shell.write_cache.write(addr, b"\xff" * 4)
        return f"{name}: dirty line at {addr} outside all windows"
    raise ValueError("no room past the allocator for a stale line")


def _corrupt_task_miscount(system) -> str:
    """Desynchronize the system's unfinished-task count from the task
    tables — violates task accounting (monitor I105)."""
    system._unfinished_tasks += 1
    return "_unfinished_tasks += 1 vs task tables"


#: mode name -> (callable(system) -> description, monitor id it must trip)
CORRUPTION_MODES = {
    "credit-loss": (_corrupt_credit_loss, "I101"),
    "buffer-overrun": (_corrupt_buffer_overrun, "I102"),
    "counter-rewind": (_corrupt_counter_rewind, "I103"),
    "stale-dirty-line": (_corrupt_stale_dirty_line, "I104"),
    "task-miscount": (_corrupt_task_miscount, "I105"),
}


def corrupt_state(system, mode: str) -> str:
    """Apply one named corruption mode to a configured system; returns
    a description of what was broken.  Raises KeyError on unknown mode."""
    fn, _monitor = CORRUPTION_MODES[mode]
    return fn(system)
