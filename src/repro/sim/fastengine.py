"""The fast execution core (engine ``"fast"``).

The reference kernel in :mod:`repro.sim.kernel` is written to be
*obviously* correct: every event pops through :meth:`Simulator.step`,
every process resume goes through two method calls, every factory
re-imports its event class.  That clarity costs real wall-clock time —
the DES machinery alone is ~25-30%% of a decode run.  This module is
the drop-in replacement core selected with ``engine="fast"`` on
:class:`repro.core.config.SystemParams`:

* :class:`FastSimulator` — the same (time, priority, seq) heap with the
  run loop flattened into one frame (no ``step``/``peek`` calls per
  event) and the cyclic garbage collector parked while the loop runs;
* :class:`FastProcess` — the same generator trampoline with the
  callback subscription inlined (one attribute probe instead of a
  method call per yield).

The byte-identity contract
--------------------------
The fast engine must reproduce the reference engine *exactly*: same
``SystemResult``, same counters, same oplog, same ``export_state()``
digest at every quiescent boundary.  Because the model's observable
counters (``wait_cycles``, ``idle_wait_cycles``, fill statistics)
encode the event schedule itself, the only safe optimizations are ones
that leave the schedule untouched:

1. **constant-factor flattening** — fewer Python frames per event, but
   every ``schedule()`` call still happens in the same order at the
   same (time, priority), so the relative sequence numbers (the heap
   tie-breaker) are preserved;
2. **event-compressed time** — leaping over a window is only legal
   when the queue proves that *nothing* can fire inside it.  The one
   such window the model exhibits is the deadlock tail (see
   ``EclipseSystem._deadlock_monitor``): when the queue holds no event
   but the monitor's own poll, progress is frozen forever and the
   verdict cycle is computable in closed form.  Any other pending
   event — a watchdog retry, a fault stall, a sampler tick — pins the
   compression boundary, because its callbacks can reschedule work.

``tests/sim/test_fastengine_equivalence.py`` enforces the contract
property-wise; the golden traces and the conformance matrix enforce it
on the canonical workloads.  See docs/fast-engine.md.
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable, Generator, Optional

from repro.sim.events import Event, Interrupt, Timeout
from repro.sim.kernel import PRIORITY_URGENT, SimulationError, Simulator
from repro.sim.process import Process

__all__ = ["ENGINES", "resolve_engine", "FastSimulator", "FastProcess"]

#: The engine registry: every name ``SystemParams.engine`` accepts.
ENGINES = ("reference", "fast")


def resolve_engine(name: str) -> str:
    """Validate an engine name, with a diagnostic naming the registry.

    Every layer that accepts an engine name (``SystemParams``, the CLI
    ``--engine`` flag, the runner) funnels through here, so an unknown
    name — a typo, or a future engine an old build does not ship —
    fails with the same clean message everywhere instead of a
    ``KeyError`` deep inside system assembly.
    """
    if name not in ENGINES:
        raise ValueError(
            f"unknown engine {name!r} (known engines: {', '.join(ENGINES)})"
        )
    return name


class FastProcess(Process):
    """:class:`Process` with the resume trampoline flattened.

    Behaviour-identical: the same exceptions escape at the same points,
    the same ``SimulationError`` diagnostics fire for protocol misuse,
    and subscription order on the target event is unchanged — only the
    per-yield overhead (property lookups, ``add_callback``) is inlined.
    """

    __slots__ = ()

    def _step(self, event: Event) -> None:
        try:
            exc = event._exc
            if exc is not None:
                event.defused = True
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value, priority=PRIORITY_URGENT)
            return
        except Interrupt as iexc:
            # Process let an interrupt escape: treat as failure.
            self.fail(iexc, priority=PRIORITY_URGENT)
            return
        except Exception as gexc:
            self.fail(gexc, priority=PRIORITY_URGENT)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, expected Event"
            )
        if target is self:
            raise SimulationError(f"process {self.name!r} waited on itself")
        self._waiting_on = target
        callbacks = target.callbacks
        if callbacks is None:
            # target already fired: resume synchronously, exactly like
            # Event.add_callback would
            self._resume(target)
        else:
            callbacks.append(self._resume)


class FastSimulator(Simulator):
    """:class:`Simulator` with the run loop flattened into one frame.

    The heap, the (time, priority, seq) ordering and every scheduling
    decision are inherited unchanged — an event sequence produced under
    this class is *the same sequence* the reference produces.  The two
    differences are wall-clock only: the ``step()``/``peek()`` calls
    per event are inlined, and Python's cyclic garbage collector is
    suspended for the duration of the loop (the model allocates many
    short-lived events; reference counting reclaims them, and parking
    the collector avoids whole-heap scans mid-run).
    """

    def step(self) -> None:
        """Fire the single next event, advancing time to it."""
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        event._fire()

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
        advance_time: bool = True,
    ) -> None:
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        fired = 0
        queue = self._queue
        pop = heapq.heappop
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while queue:
                if stop is not None and stop():
                    return
                when = queue[0][0]
                if until is not None and when >= until:
                    self._now = until
                    return
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible livelock"
                    )
                item = pop(queue)
                self._now = item[0]
                item[3]._fire()
                fired += 1
            if advance_time and until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()

    # ------------------------------------------------------------------
    # factories: same objects, imports hoisted to module level
    # ------------------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> FastProcess:
        return FastProcess(self, generator)
