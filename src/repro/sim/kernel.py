"""Simulation kernel: time, the event queue, and the run loop.

The kernel is deliberately small.  All model behaviour lives in
processes (see :mod:`repro.sim.process`); the kernel only orders event
callbacks in (time, priority, insertion) order and advances the clock.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = ["Simulator", "SimulationError", "PRIORITY_URGENT", "PRIORITY_NORMAL"]

#: Priority for events that must fire before same-time normal events
#: (e.g. process resumption after an interrupt).
PRIORITY_URGENT = 0
#: Default event priority.
PRIORITY_NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for kernel misuse (time travel, re-triggering events...)."""


class Simulator:
    """Discrete-event simulator with integer (cycle) time.

    The simulator is the rendezvous object of a model: every event and
    process is created against one ``Simulator`` and scheduled on its
    queue.  Time is an ``int`` so that cycle-level hardware models never
    accumulate floating-point error and schedules replay exactly.

    Example
    -------
    >>> sim = Simulator()
    >>> log = []
    >>> def proc(sim):
    ...     yield sim.timeout(5)
    ...     log.append(sim.now)
    >>> _ = sim.process(proc(sim))
    >>> sim.run()
    >>> log
    [5]
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: list[tuple[int, int, int, Any]] = []
        self._seq: int = 0
        self._running = False

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, event: Any, delay: int = 0, priority: int = PRIORITY_NORMAL) -> None:
        """Enqueue *event* to fire ``delay`` cycles from now.

        ``event`` must expose a ``_fire()`` method (all events in
        :mod:`repro.sim.events` do).  Ties at identical (time, priority)
        are broken by insertion order for determinism.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + int(delay), priority, self._seq, event))

    # ------------------------------------------------------------------
    # factories (convenience mirrors of the events / process modules)
    # ------------------------------------------------------------------
    def event(self):
        from repro.sim.events import Event

        return Event(self)

    def timeout(self, delay: int, value: Any = None):
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    def process(self, generator: Generator):
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Any]):
        from repro.sim.events import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Any]):
        from repro.sim.events import AnyOf

        return AnyOf(self, list(events))

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Fire the single next event, advancing time to it."""
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - guarded by schedule()
            raise SimulationError("event queue corrupted: time went backwards")
        self._now = when
        event._fire()

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or ``None`` if queue empty."""
        return self._queue[0][0] if self._queue else None

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
        advance_time: bool = True,
    ) -> None:
        """Run until the queue drains, ``until`` cycles, or ``max_events``.

        ``until`` is an absolute simulation time; events scheduled at
        exactly ``until`` are *not* executed (time stops at ``until``).
        ``max_events`` bounds total fired events — a safety net for
        models suspected of livelock.
        ``stop`` is polled between events; returning True ends the run
        at the current time.  Monitor processes (watchdogs, deadlock
        detectors) keep the queue populated forever, so their users
        need a model-level completion predicate instead of queue drain.
        ``advance_time=False`` leaves the clock at the last fired event
        when the queue drains before ``until`` — so an incremental
        ``advance(n); advance(2*n); ...`` sequence ends at exactly the
        same final time as one uninterrupted run.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if stop is not None and stop():
                    return
                when = self._queue[0][0]
                if until is not None and when >= until:
                    self._now = until
                    return
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible livelock"
                    )
                self.step()
                fired += 1
            if advance_time and until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_events(self) -> int:
        """Number of events currently queued (mainly for tests)."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now} pending={len(self._queue)}>"
