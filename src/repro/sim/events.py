"""Events: one-shot occurrences that processes can wait on.

An :class:`Event` has a three-state lifecycle:

``pending`` → ``triggered`` (scheduled on the queue) → ``fired``
(callbacks executed, value/exception delivered).

Processes (see :mod:`repro.sim.process`) yield events; the process is
resumed with the event's value when it fires, or the event's exception
is thrown into the generator.

Compression-boundary contract: the fast engine (see
:mod:`repro.sim.fastengine` and ``EclipseSystem._deadlock_monitor``)
may leap the clock over an idle window only when the event queue is
*empty* at the decision point — any triggered-but-unfired event
(watchdog timeout, sampler tick, fault injection) therefore pins a
compression boundary simply by being scheduled.  Nothing here needs to
cooperate beyond the existing rule that every future occurrence lives
on the queue as an event.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.sim.kernel import PRIORITY_NORMAL, PRIORITY_URGENT, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["Event", "Timeout", "Interrupt", "AllOf", "AnyOf"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`repro.sim.process.Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence with a value or an exception.

    Callbacks are callables of one argument (the event itself), invoked
    in registration order when the event fires.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_fired", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._fired = False
        #: Set when a failure was handled (waited on); unhandled failed
        #: events raise at fire time so errors never pass silently.
        self.defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def fired(self) -> bool:
        """True once callbacks have run."""
        return self._fired

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (no exception)."""
        return self._fired and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: int = 0, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule this event to fire successfully with *value*."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim.schedule(self, delay, priority)
        return self

    def fail(self, exc: BaseException, delay: int = 0, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule this event to fire with exception *exc*."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim.schedule(self, delay, priority)
        return self

    # -- firing -----------------------------------------------------------
    def _fire(self) -> None:
        if self._fired:
            raise SimulationError(f"{self!r} fired twice")
        self._fired = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)
        if self._exc is not None and not self.defused:
            # Nobody waited on this failure: surface it instead of
            # silently dropping a model error.
            raise self._exc

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already fired: run immediately (same semantics as SimPy's
            # schedule-now would give, but without a queue round-trip —
            # used only by condition events and process wakeups, which
            # tolerate synchronous invocation).
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires ``delay`` cycles after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(sim)
        self.delay = int(delay)
        self._triggered = True
        self._value = value
        sim.schedule(self, self.delay)


class _Condition(Event):
    """Base for AllOf/AnyOf: fires when a predicate over children holds."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._child_fired)

    def _child_fired(self, ev: Event) -> None:
        if self._triggered:
            if ev.exception is not None:
                ev.defused = True
            return
        self._n_fired += 1
        if ev.exception is not None:
            ev.defused = True
            self.fail(ev.exception, priority=PRIORITY_URGENT)
        elif self._satisfied():
            self.succeed(self._collect(), priority=PRIORITY_URGENT)

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict:
        return {i: ev._value for i, ev in enumerate(self.events) if ev.fired and ev.exception is None}


class AllOf(_Condition):
    """Fires when all child events have fired (value: dict index→value)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired == len(self.events)


class AnyOf(_Condition):
    """Fires when any child event has fired (value: dict index→value)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired >= 1
