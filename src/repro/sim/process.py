"""Generator-driven processes.

A process wraps a Python generator.  The generator yields
:class:`~repro.sim.events.Event` instances; the process subscribes to
each yielded event and resumes the generator with the event's value
when it fires (or throws the event's exception into the generator).

A ``Process`` is itself an :class:`Event` that fires when the generator
returns — so processes can wait on each other, join-style.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.sim.events import Event, Interrupt
from repro.sim.kernel import PRIORITY_URGENT, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["Process"]


class Process(Event):
    """Drive *generator* as a concurrent process of *sim*.

    The process starts at the current simulation time (its first resume
    is scheduled immediately, not run synchronously, so creation order
    and execution order are decoupled deterministically).

    Example
    -------
    >>> from repro.sim import Simulator
    >>> sim = Simulator()
    >>> def child(sim):
    ...     yield sim.timeout(3)
    ...     return "done"
    >>> def parent(sim):
    ...     result = yield sim.process(child(sim))
    ...     assert result == "done"
    >>> _ = sim.process(parent(sim))
    >>> sim.run()
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process needs a generator, got {type(generator).__name__}")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off via an initialisation event so the body runs inside
        # the event loop, not inside the constructor.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed(None, priority=PRIORITY_URGENT)

    # -- introspection ----------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not returned or raised."""
        return not self._triggered

    # -- control -----------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The interrupt is delivered urgently (before same-time normal
        events).  Interrupting a dead process is an error; interrupting
        a process blocked on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        ev = Event(self.sim)
        ev.callbacks.append(self._deliver_interrupt)
        ev.fail(Interrupt(cause), priority=PRIORITY_URGENT)
        ev.defused = True

    def _deliver_interrupt(self, ev: Event) -> None:
        if not self.is_alive:
            return  # finished before delivery
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        self._step(ev)

    # -- engine -------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self._step(event)

    def _step(self, event: Event) -> None:
        try:
            if event.exception is not None:
                event.defused = True
                target = self._generator.throw(event.exception)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value, priority=PRIORITY_URGENT)
            return
        except Interrupt as exc:
            # Process let an interrupt escape: treat as failure.
            self.fail(exc, priority=PRIORITY_URGENT)
            return
        except Exception as exc:
            self.fail(exc, priority=PRIORITY_URGENT)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, expected Event"
            )
        if target is self:
            raise SimulationError(f"process {self.name!r} waited on itself")
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'dead'}>"
