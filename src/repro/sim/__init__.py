"""Discrete-event simulation kernel (substrate S1).

A compact, deterministic, generator-driven discrete-event simulation
kernel in the style of SimPy, purpose-built for cycle-level hardware
modelling.  The Eclipse paper's results come from a proprietary
cycle-accurate simulator; this package is the equivalent substrate.

Key classes
-----------
``Simulator``
    Owns simulation time (integer cycles) and the event queue.
``Event`` / ``Timeout`` / ``AllOf`` / ``AnyOf``
    One-shot occurrences that processes wait on.
``Process``
    A generator that yields events; resumed when they fire.
``Resource`` / ``Store``
    Queued mutual exclusion (bus arbitration) and producer/consumer
    hand-off.
``probe``
    Time-weighted statistics used by the performance-measurement
    infrastructure (Section 5.4 of the paper).

Determinism: ties in the event queue are broken by a monotonically
increasing sequence number, so a given program always replays the same
schedule.  Simulation time is integral (clock cycles); there is no
floating-point time drift.
"""

from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.faults import FaultInjector, FaultPlan, FaultStats, LossPlan, StallSpec
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.process import Process
from repro.sim.probe import Series, TimeWeightedStat, UtilizationProbe
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "FaultInjector",
    "FaultPlan",
    "LossPlan",
    "FaultStats",
    "Interrupt",
    "Process",
    "StallSpec",
    "Resource",
    "Series",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeWeightedStat",
    "Timeout",
    "UtilizationProbe",
]
