"""Crash tolerance for long runs: checkpoint/restore, supervised
execution, and online invariant monitors.

Eclipse keeps all synchronization state in explicit local structures
(stream/task tables, cyclic buffers in shared SRAM), so the whole
system state is capturable and its invariants mechanically checkable.
This package exploits exactly that property:

* :mod:`repro.resilience.snapshot` — versioned, checksummed
  :class:`SystemSnapshot` files; ``restore(snapshot).run()`` is
  byte-identical to an uninterrupted run.
* :mod:`repro.resilience.monitors` — runtime invariant checks (stable
  IDs ``I101``–``I105``) raising :class:`InvariantViolation` naming
  ``task.port``.
* :mod:`repro.resilience.supervisor` — a :class:`Supervisor` running
  each sweep point in a checkpointed worker with heartbeat-based
  crash/hang detection and bounded restarts; whole sweeps resume
  across process restarts from their checkpoint directory.

See ``docs/resilience.md`` for the file formats and the invariant
catalogue.
"""

from repro.resilience.monitors import (
    MONITORS,
    InvariantViolation,
    Monitor,
    MonitorSuite,
    check_system,
)
from repro.resilience.snapshot import (
    SNAPSHOT_SCHEMA,
    SnapshotError,
    SystemSnapshot,
    capture,
    restore,
)
from repro.resilience.supervisor import Supervisor, SupervisorError

__all__ = [
    "MONITORS",
    "InvariantViolation",
    "Monitor",
    "MonitorSuite",
    "check_system",
    "SNAPSHOT_SCHEMA",
    "SnapshotError",
    "SystemSnapshot",
    "capture",
    "restore",
    "Supervisor",
    "SupervisorError",
]
