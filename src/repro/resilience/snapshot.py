"""Versioned, checksummed system snapshots with deterministic restore.

The Eclipse model is built from explicit, local state — stream-table
rows with cumulative credits, task tables, cyclic buffers in shared
SRAM, cache line maps, scheduler cursors, in-flight fabric messages —
which makes the *whole* system state capturable as plain data
(:meth:`repro.core.system.EclipseSystem.export_state`).  What is NOT
capturable are the live Python generator frames of the coprocessor
processes.  A snapshot therefore stores two things:

1. a **replay anchor**: the workload factory reference plus its kwargs
   and the boundary cycle, from which a bit-exact twin of the
   interrupted system can be rebuilt (the simulator is fully
   deterministic: integer time, seeded RNGs, insertion-order
   tie-breaking), and
2. the **captured state** itself plus its SHA-256 digest, which
   :func:`restore` re-derives from the replayed twin and compares —
   so a nondeterministic workload, a corrupted snapshot file, or state
   rotted between capture and restore is *detected*, never silently
   resumed.

``restore(snapshot).run()`` is therefore byte-identical to an
uninterrupted run, and the digest cross-check is what earns the word
"checkpoint" rather than "restart".  File format: one JSON document
with a whole-body checksum (see :meth:`SystemSnapshot.save`).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.system import EclipseSystem
from repro.kahn.graph import ApplicationGraph
from repro.runner import resolve_factory

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SnapshotError",
    "SystemSnapshot",
    "capture",
    "restore",
    "encode_value",
    "decode_value",
    "state_digest",
    "diff_states",
]

#: Schema tag written into every snapshot file; bumped on breaking
#: format changes so a stale file fails loudly instead of resuming
#: garbage.
SNAPSHOT_SCHEMA = "repro.snapshot/1"


class SnapshotError(RuntimeError):
    """A snapshot could not be saved, loaded, or faithfully restored
    (checksum mismatch, schema drift, or replay divergence)."""


# ----------------------------------------------------------------------
# JSON-safe kwargs codec (factories may take bytes, e.g. a bitstream)
# ----------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """Encode one factory kwarg into a JSON-safe form (bytes tagged)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {"__bytes__": bytes(value).hex()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): encode_value(v) for k, v in value.items()}
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return {
            "__to_dict__": f"{type(value).__module__}:{type(value).__qualname__}",
            "value": to_dict(),
        }
    raise SnapshotError(
        f"cannot encode factory kwarg of type {type(value).__name__} "
        f"into a snapshot (not JSON-safe and no to_dict())"
    )


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if set(value) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        if set(value) == {"__to_dict__", "value"}:
            cls = resolve_factory(value["__to_dict__"])
            return cls.from_dict(value["value"])
        return {k: decode_value(v) for k, v in value.items()}
    return value


def state_digest(state: Dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON form of an exported state dict."""
    blob = json.dumps(state, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def factory_ref(factory: Union[str, Callable]) -> str:
    """Canonical ``module:qualname`` reference for a workload factory.

    The reference must round-trip through :func:`repro.runner.
    resolve_factory` to the same object — lambdas and closures cannot
    anchor a replay and are rejected here, at capture time."""
    if isinstance(factory, str):
        resolve_factory(factory)  # raises if not importable
        return factory
    ref = f"{factory.__module__}:{getattr(factory, '__qualname__', '')}"
    try:
        resolved = resolve_factory(ref)
    except Exception as e:
        raise SnapshotError(
            f"factory {factory!r} is not snapshot-anchorable: {e}"
        ) from e
    if resolved is not factory:
        raise SnapshotError(
            f"factory {factory!r} does not round-trip through {ref!r}; "
            f"use a module-level function"
        )
    return ref


# ----------------------------------------------------------------------
# the snapshot object
# ----------------------------------------------------------------------
@dataclass
class SystemSnapshot:
    """One captured checkpoint of a running :class:`EclipseSystem`."""

    schema: str
    factory: str
    kwargs: Dict[str, Any]
    cycle: int
    state: Dict[str, Any]
    digest: str

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "factory": self.factory,
            "kwargs": {k: encode_value(v) for k, v in sorted(self.kwargs.items())},
            "cycle": self.cycle,
            "state": self.state,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SystemSnapshot":
        if data.get("schema") != SNAPSHOT_SCHEMA:
            raise SnapshotError(
                f"unsupported snapshot schema {data.get('schema')!r} "
                f"(this build reads {SNAPSHOT_SCHEMA!r})"
            )
        return cls(
            schema=data["schema"],
            factory=data["factory"],
            kwargs={k: decode_value(v) for k, v in data["kwargs"].items()},
            cycle=data["cycle"],
            state=data["state"],
            digest=data["digest"],
        )

    # ------------------------------------------------------------------
    # file format: {"checksum": sha256(body), "body": {...}} — a
    # truncated or bit-flipped file fails the checksum before anything
    # tries to interpret it.
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Atomically write the snapshot (write temp + rename)."""
        body = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        checksum = hashlib.sha256(body.encode("utf-8")).hexdigest()
        doc = json.dumps({"checksum": checksum, "body": json.loads(body)},
                         sort_keys=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(doc)
            fh.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "SystemSnapshot":
        """Load and verify a snapshot file (checksum, schema, digest)."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as e:
            raise SnapshotError(f"cannot read snapshot {path!r}: {e}") from e
        if not isinstance(doc, dict) or "checksum" not in doc or "body" not in doc:
            raise SnapshotError(f"{path!r} is not a snapshot file")
        body = json.dumps(doc["body"], sort_keys=True, separators=(",", ":"))
        checksum = hashlib.sha256(body.encode("utf-8")).hexdigest()
        if checksum != doc["checksum"]:
            raise SnapshotError(
                f"snapshot {path!r} failed its checksum (corrupted or truncated)"
            )
        snap = cls.from_dict(doc["body"])
        if state_digest(snap.state) != snap.digest:
            raise SnapshotError(
                f"snapshot {path!r}: state does not match its recorded digest"
            )
        return snap


# ----------------------------------------------------------------------
# capture / restore
# ----------------------------------------------------------------------
def _build(factory_str: str, kwargs: Dict[str, Any]) -> EclipseSystem:
    """Rebuild and configure a system from its replay anchor."""
    factory = resolve_factory(factory_str)
    built = factory(**kwargs)
    if isinstance(built, tuple):
        system, graph = built
    else:  # pragma: no cover - factories in this repo return pairs
        system, graph = built, None
    if not isinstance(system, EclipseSystem):
        raise SnapshotError(
            f"factory {factory_str!r} returned {type(system).__name__}, "
            f"not an EclipseSystem"
        )
    if graph is not None and not system._configured:
        if not isinstance(graph, ApplicationGraph):
            raise SnapshotError(
                f"factory {factory_str!r} returned a second value of type "
                f"{type(graph).__name__}, not an ApplicationGraph"
            )
        system.configure(graph)
    return system


def capture(
    system: EclipseSystem,
    factory: Union[str, Callable],
    kwargs: Optional[Dict[str, Any]] = None,
) -> SystemSnapshot:
    """Capture the running system's state at the current cycle.

    ``factory``/``kwargs`` are the replay anchor: calling the factory
    with those kwargs (and configuring the returned graph) must
    reproduce this run — the same contract :class:`repro.runner.
    RunSpec` already imposes for process fan-out.
    """
    state = system.export_state()
    return SystemSnapshot(
        schema=SNAPSHOT_SCHEMA,
        factory=factory_ref(factory),
        kwargs=dict(kwargs or {}),
        cycle=system.sim.now,
        state=state,
        digest=state_digest(state),
    )


def restore(
    snapshot: SystemSnapshot, verify: bool = True, engine: Optional[str] = None
) -> EclipseSystem:
    """Reconstruct the captured system, positioned at ``snapshot.cycle``.

    Rebuilds from the replay anchor and advances to the boundary; with
    ``verify`` (the default) the reconstructed state's digest must equal
    the captured one, else :class:`SnapshotError` names the diverging
    state paths.  The returned system continues with ``run()`` exactly
    as the interrupted original would have.

    ``engine`` overrides the anchor's ``engine`` kwarg: because the fast
    engine is byte-identical and :meth:`EclipseSystem.export_state` is
    engine-independent, a snapshot taken under one engine restores (and
    digest-verifies) under the other — the cross-engine compatibility
    contract tested by tests/sim/test_fastengine_equivalence.py.
    """
    kwargs = dict(snapshot.kwargs)
    if engine is not None:
        kwargs["engine"] = engine
    system = _build(snapshot.factory, kwargs)
    system.advance(snapshot.cycle)
    if verify:
        state = system.export_state()
        digest = state_digest(state)
        if digest != snapshot.digest:
            paths = diff_states(snapshot.state, state)
            shown = ", ".join(paths[:8]) or "<structure differs>"
            raise SnapshotError(
                f"restore diverged from snapshot at cycle {snapshot.cycle}: "
                f"digest {digest[:12]} != {snapshot.digest[:12]}; "
                f"first differing paths: {shown}"
            )
    return system


def diff_states(a: Any, b: Any, prefix: str = "") -> List[str]:
    """Paths where two exported states differ (for error messages)."""
    if isinstance(a, dict) and isinstance(b, dict):
        out: List[str] = []
        for key in sorted(set(a) | set(b)):
            sub = f"{prefix}.{key}" if prefix else str(key)
            if key not in a or key not in b:
                out.append(sub)
            else:
                out.extend(diff_states(a[key], b[key], sub))
        return out
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return [f"{prefix}[len {len(a)} != {len(b)}]"]
        out = []
        for i, (x, y) in enumerate(zip(a, b)):
            out.extend(diff_states(x, y, f"{prefix}[{i}]"))
        return out
    return [] if a == b else [prefix or "<root>"]
