"""Online invariant monitors over a live :class:`EclipseSystem`.

The shell protocol's correctness rests on a handful of mechanically
checkable invariants over the explicit synchronization state (paper
§5.1–§5.3): cumulative putspace credit conservation, containment of
every granted window in its cyclic buffer, monotonicity of the
cumulative counters, and cache-coherency marks consistent with the
GetSpace/PutSpace history.  A happy-path run maintains them by
construction; a soft error in a stream-table cell, a miscounted
credit, or a model bug breaks them *silently* — the run either
deadlocks much later or completes with corrupt data.

These monitors check the invariants at checkpoint boundaries (and
on demand) and raise a structured :class:`InvariantViolation` naming
the offending ``task.port`` the moment the state goes bad.  Each
monitor has a stable ID (``I101``…), used by tests, docs and reports:

========  ======================  =========================================
ID        name                    invariant
========  ======================  =========================================
``I101``  credit-conservation     a consumer is never credited beyond the
                                  producer's committed position, and a
                                  producer never regains more room than the
                                  consumer consumed
``I102``  buffer-containment      granted windows and space fields lie
                                  inside the cyclic buffer
``I103``  counter-monotonicity    cumulative counters never decrease;
                                  ``finished`` and ``eos_position`` never
                                  un-happen
``I104``  cache-coherency         dirty write-cache bytes only inside
                                  granted producer windows; poison marks
                                  only on cached lines; lines aligned and
                                  in SRAM
``I105``  task-accounting         the system's unfinished-task count
                                  matches the task tables
========  ======================  =========================================

The adversary exercising them lives in :data:`repro.sim.faults.
CORRUPTION_MODES`.  Checks run *between* events — the shells restore
every invariant before yielding control — so a clean run reports zero
violations at any checkpoint boundary (asserted by the test suite).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import EclipseSystem

__all__ = [
    "InvariantViolation",
    "Monitor",
    "MonitorSuite",
    "MONITORS",
    "check_system",
]


class InvariantViolation(RuntimeError):
    """One broken runtime invariant, located as ``task.port``."""

    def __init__(
        self,
        monitor: str,
        message: str,
        task: Optional[str] = None,
        port: Optional[str] = None,
        shell: Optional[str] = None,
        cycle: Optional[int] = None,
    ):
        self.monitor = monitor
        self.task = task
        self.port = port
        self.shell = shell
        self.cycle = cycle
        where = f"{task}.{port}" if task and port else (task or shell or "system")
        at = f" at t={cycle}" if cycle is not None else ""
        super().__init__(f"[{monitor}] {where}{at}: {message}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "monitor": self.monitor,
            "task": self.task,
            "port": self.port,
            "shell": self.shell,
            "cycle": self.cycle,
            "message": str(self),
        }


class Monitor:
    """Base class: one named invariant over the live system state."""

    id: str = "I000"
    title: str = "abstract"

    def check(self, system: "EclipseSystem") -> List[InvariantViolation]:
        raise NotImplementedError

    def _violation(self, system, message, **kw) -> InvariantViolation:
        return InvariantViolation(self.id, message, cycle=system.sim.now, **kw)


# ----------------------------------------------------------------------
# I101 — putspace credit conservation
# ----------------------------------------------------------------------
class CreditConservationMonitor(Monitor):
    """Producer/consumer cumulative credits must conserve bytes.

    For every producer row P and the consumer row C on arm *a*:
    ``C.position + C.space <= P.position`` (a consumer can only be
    credited data the producer actually committed) and
    ``P.applied_credit(a) <= C.position`` (a producer can only regain
    room the consumer actually consumed).
    """

    id = "I101"
    title = "credit-conservation"

    def check(self, system):
        out: List[InvariantViolation] = []
        for shell in system.shells.values():
            for row in shell.stream_table:
                if not row.is_producer:
                    continue
                for arm, remote in enumerate(row.remotes):
                    cons = remote.shell.stream_table[remote.row_id]
                    credited = cons.position + cons.space
                    if credited > row.position:
                        out.append(self._violation(
                            system,
                            f"consumer credited {credited} B but the producer "
                            f"committed only {row.position} B on stream "
                            f"{row.stream!r}",
                            task=cons.task, port=cons.port,
                            shell=remote.shell.name,
                        ))
                    regained = row.applied_credit(arm)
                    if regained > cons.position:
                        out.append(self._violation(
                            system,
                            f"producer regained room up to {regained} B but "
                            f"the arm-{arm} consumer consumed only "
                            f"{cons.position} B on stream {row.stream!r}",
                            task=row.task, port=row.port, shell=shell.name,
                        ))
        return out


# ----------------------------------------------------------------------
# I102 — buffer containment of granted windows
# ----------------------------------------------------------------------
class BufferContainmentMonitor(Monitor):
    """Windows and space fields must fit the cyclic buffer."""

    id = "I102"
    title = "buffer-containment"

    def check(self, system):
        out: List[InvariantViolation] = []
        for shell in system.shells.values():
            for row in shell.stream_table:
                size = row.buffer.size
                loc = dict(task=row.task, port=row.port, shell=shell.name)
                if row.position < 0:
                    out.append(self._violation(
                        system, f"negative position {row.position}", **loc))
                if not 0 <= row.granted <= size:
                    out.append(self._violation(
                        system,
                        f"granted window of {row.granted} B outside the "
                        f"{size} B buffer of stream {row.stream!r}", **loc))
                    continue
                if row.is_producer:
                    for arm, space in enumerate(row.arm_space):
                        if not 0 <= space <= size:
                            out.append(self._violation(
                                system,
                                f"arm-{arm} space {space} outside "
                                f"[0, {size}]", **loc))
                    if row.arm_space and row.granted > min(row.arm_space):
                        out.append(self._violation(
                            system,
                            f"granted {row.granted} B exceeds available room "
                            f"{min(row.arm_space)} B", **loc))
                else:
                    if not 0 <= row.space <= size:
                        out.append(self._violation(
                            system,
                            f"space {row.space} outside [0, {size}]", **loc))
                    elif row.granted > row.space:
                        out.append(self._violation(
                            system,
                            f"granted {row.granted} B exceeds valid data "
                            f"{row.space} B", **loc))
        return out


# ----------------------------------------------------------------------
# I103 — monotonicity of cumulative counters
# ----------------------------------------------------------------------
class MonotonicityMonitor(Monitor):
    """Cumulative counters only grow between checks.

    Stateful: the first check records a baseline; every later check
    compares against the previous one.  Positions, committed bytes,
    applied credits, fabric message counts and step counts must be
    non-decreasing; ``finished`` never reverts; ``eos_position`` never
    changes once set.
    """

    id = "I103"
    title = "counter-monotonicity"

    def __init__(self) -> None:
        self._last: Optional[Dict[str, object]] = None

    def _observe(self, system) -> Dict[str, object]:
        obs: Dict[str, object] = {
            "fabric.messages_sent": system.fabric.messages_sent,
            "fabric.messages_delivered": system.fabric.messages_delivered,
        }
        for name, shell in system.shells.items():
            obs[f"{name}.credits_applied"] = shell.credits_applied
            for i, row in enumerate(shell.stream_table):
                key = f"{row.task}.{row.port}"
                obs[f"{name}.row{i}.{key}.position"] = row.position
                obs[f"{name}.row{i}.{key}.committed_bytes"] = row.committed_bytes
                obs[f"{name}.row{i}.{key}.putspace_messages_sent"] = (
                    row.putspace_messages_sent)
                obs[f"{name}.row{i}.{key}.eos_position"] = row.eos_position
            for t in shell.task_table:
                obs[f"{name}.task.{t.name}.steps_completed"] = t.steps_completed
                obs[f"{name}.task.{t.name}.finished"] = int(t.finished)
        return obs

    def check(self, system):
        cur = self._observe(system)
        last, self._last = self._last, cur
        if last is None:
            return []
        out: List[InvariantViolation] = []
        for key, value in cur.items():
            prev = last.get(key)
            if prev is None:
                continue
            task = port = None
            parts = key.split(".")
            if len(parts) >= 4 and parts[1].startswith("row"):
                task, port = parts[2], parts[3]
            elif len(parts) >= 3 and parts[1] == "task":
                task = parts[2]
            if key.endswith(".eos_position"):
                if prev is not None and value != prev:
                    out.append(self._violation(
                        system,
                        f"eos_position changed {prev} -> {value} after being "
                        f"set ({key})", task=task, port=port))
            elif value < prev:
                out.append(self._violation(
                    system,
                    f"cumulative counter {key} went backwards: "
                    f"{prev} -> {value}", task=task, port=port))
        return out


# ----------------------------------------------------------------------
# I104 — explicit cache coherency
# ----------------------------------------------------------------------
class CacheCoherencyMonitor(Monitor):
    """Cache marks must be consistent with the GetSpace/PutSpace state.

    Dirty write-cache bytes may only cover addresses inside the owning
    shell's granted producer windows (rule 3 flushes on commit, so a
    dirty byte outside every window is stale state that would clobber a
    neighbour).  Poison marks only make sense on cached read lines, and
    every cached line must be line-aligned and inside the SRAM.
    """

    id = "I104"
    title = "cache-coherency"

    def check(self, system):
        out: List[InvariantViolation] = []
        sram_size = system.sram.size
        for name, shell in system.shells.items():
            line = shell.params.cache_line
            # union of [position, position+granted) address intervals of
            # this shell's producer rows, plus who owns each interval
            windows = []
            for row in shell.stream_table:
                # windows outside [0, size] are I102's finding; skip them
                # here so this monitor stays total on corrupted state
                if row.is_producer and 0 < row.granted <= row.buffer.size:
                    for seg_addr, seg_len in row.buffer.segments(
                            row.position, row.granted):
                        windows.append((seg_addr, seg_addr + seg_len))

            def covered(addr: int) -> bool:
                return any(lo <= addr < hi for lo, hi in windows)

            for line_addr, _data, mask in shell.write_cache.dirty_items():
                if line_addr % line or line_addr + line > sram_size:
                    out.append(self._violation(
                        system,
                        f"write-cache line at {line_addr} misaligned or "
                        f"outside the {sram_size} B SRAM", shell=name))
                    continue
                stale = [line_addr + i for i, m in enumerate(mask)
                         if m and not covered(line_addr + i)]
                if stale:
                    out.append(self._violation(
                        system,
                        f"dirty write-cache byte(s) at {stale[:4]} outside "
                        f"every granted producer window", shell=name))
            cached = set(shell.read_cache.line_addrs())
            for line_addr in cached:
                if line_addr % line or line_addr + line > sram_size:
                    out.append(self._violation(
                        system,
                        f"read-cache line at {line_addr} misaligned or "
                        f"outside the {sram_size} B SRAM", shell=name))
            orphaned = sorted(shell._poisoned - cached)
            if orphaned:
                out.append(self._violation(
                    system,
                    f"poison mark(s) on uncached line(s) {orphaned[:4]}",
                    shell=name))
        return out


# ----------------------------------------------------------------------
# I105 — task accounting
# ----------------------------------------------------------------------
class TaskAccountingMonitor(Monitor):
    """The system's unfinished-task count must match the task tables,
    and blocked-on marks must reference real stream rows."""

    id = "I105"
    title = "task-accounting"

    def check(self, system):
        out: List[InvariantViolation] = []
        unfinished = 0
        for name, shell in system.shells.items():
            n_rows = len(shell.stream_table)
            for t in shell.task_table:
                if not t.finished:
                    unfinished += 1
                bad = [r for r in t.blocked_on if not 0 <= r < n_rows]
                if bad:
                    out.append(self._violation(
                        system,
                        f"blocked_on references nonexistent stream row(s) "
                        f"{sorted(bad)}", task=t.name, shell=name))
        if system._configured and unfinished != system._unfinished_tasks:
            out.append(self._violation(
                system,
                f"system counts {system._unfinished_tasks} unfinished "
                f"task(s) but the task tables hold {unfinished}"))
        return out


#: stable ID -> monitor class (the public catalogue)
MONITORS = {
    cls.id: cls
    for cls in (
        CreditConservationMonitor,
        BufferContainmentMonitor,
        MonotonicityMonitor,
        CacheCoherencyMonitor,
        TaskAccountingMonitor,
    )
}


class MonitorSuite:
    """A set of monitors run together at checkpoint boundaries.

    Stateful monitors (I103) keep their baseline inside the suite, so
    one suite instance follows one run.  ``check`` returns violations
    and feeds the system's resilience counters; ``check_or_raise``
    raises the first violation (supervisor policy: a corrupt run is
    failed, not resumed).
    """

    def __init__(self, ids: Optional[Sequence[str]] = None):
        ids = list(ids) if ids is not None else sorted(MONITORS)
        unknown = [i for i in ids if i not in MONITORS]
        if unknown:
            raise KeyError(
                f"unknown monitor id(s) {unknown}; known: {sorted(MONITORS)}"
            )
        self.monitors: List[Monitor] = [MONITORS[i]() for i in ids]
        self.checks_run = 0
        self.violations: List[InvariantViolation] = []

    def check(self, system: "EclipseSystem") -> List[InvariantViolation]:
        self.checks_run += 1
        found: List[InvariantViolation] = []
        for monitor in self.monitors:
            found.extend(monitor.check(system))
        self.violations.extend(found)
        counters = getattr(system, "resilience", None)
        if counters is not None:
            counters["invariant_checks"] += 1
            counters["invariant_violations"] += len(found)
        return found

    def check_or_raise(self, system: "EclipseSystem") -> None:
        found = self.check(system)
        if found:
            raise found[0]


def check_system(
    system: "EclipseSystem", ids: Optional[Sequence[str]] = None
) -> List[InvariantViolation]:
    """One-shot check with a fresh suite (stateless invariants only
    get a baseline, so I103 cannot fire here — use a long-lived
    :class:`MonitorSuite` across boundaries for that)."""
    return MonitorSuite(ids).check(system)
