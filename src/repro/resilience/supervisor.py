"""Supervised sweep execution: checkpointed workers, crash recovery.

The :class:`~repro.runner.ParallelRunner` restarts a failed run *from
zero*; for long sweeps that wastes everything already simulated and a
dead worker poisons its process pool.  The :class:`Supervisor` runs
each :class:`~repro.runner.RunSpec` in its own ``multiprocessing``
worker that

1. advances the system ``checkpoint_interval`` cycles at a time,
2. runs the online invariant monitors at every boundary
   (:mod:`repro.resilience.monitors` — a corrupt run is *failed with a
   diagnosis*, never resumed),
3. writes an atomic, checksummed :class:`~repro.resilience.snapshot.
   SystemSnapshot` plus a heartbeat file, and
4. writes the final :class:`~repro.runner.RunResult` when done.

The supervisor polls worker liveness (process exit) and heartbeats
(hang detection); a crashed or hung worker is replaced by a fresh one
that resumes from the last checkpoint, up to ``max_restarts`` per run.
Because all progress lives in files, the *whole sweep* is equally
resumable: re-running with ``resume=True`` (CLI ``--resume <dir>``)
skips completed runs and continues interrupted ones from their
checkpoints.

Checkpoint directory layout::

    <dir>/sweep.json          sweep identity (schema, specs, digest)
    <dir>/run-000.ckpt.json   latest snapshot of run 0
    <dir>/run-000.hb          heartbeat (mtime = last worker progress)
    <dir>/run-000.result.json final RunResult of run 0

Reports match the plain runner bit for bit: a supervised sweep's
deterministic ``RunReport.to_dict()`` equals a ``ParallelRunner`` run
of the same specs — checkpointing is invisible in the results.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.resilience.monitors import MonitorSuite
from repro.resilience.snapshot import (
    SystemSnapshot,
    capture,
    decode_value,
    encode_value,
    factory_ref,
    restore,
)
from repro.runner import RunReport, RunResult, RunSpec, _histories_digest

__all__ = ["Supervisor", "SupervisorError", "SWEEP_SCHEMA"]

SWEEP_SCHEMA = "repro.supervisor/1"

#: default checkpoint cadence in simulated cycles; chosen so checkpoint
#: overhead stays well under 15% on the stock workloads (measured in
#: ``benchmarks/bench_resilience.py``)
DEFAULT_INTERVAL = 4096


class SupervisorError(RuntimeError):
    """Sweep-level misuse: bad directory, mismatched resume, ..."""


# ----------------------------------------------------------------------
# file layout
# ----------------------------------------------------------------------
def _sweep_path(d: str) -> str:
    return os.path.join(d, "sweep.json")


def _ckpt_path(d: str, i: int) -> str:
    return os.path.join(d, f"run-{i:03d}.ckpt.json")


def _result_path(d: str, i: int) -> str:
    return os.path.join(d, f"run-{i:03d}.result.json")


def _hb_path(d: str, i: int) -> str:
    return os.path.join(d, f"run-{i:03d}.hb")


def _atomic_write_json(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2)
        fh.write("\n")
    os.replace(tmp, path)


def _spec_payloads(specs: Sequence[RunSpec]) -> List[dict]:
    return [
        {
            "factory": factory_ref(spec.factory),
            "kwargs": {k: encode_value(v) for k, v in sorted(spec.kwargs.items())},
            "label": spec.describe(),
        }
        for spec in specs
    ]


def _sweep_digest(payloads: List[dict]) -> str:
    import hashlib

    blob = json.dumps(payloads, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# worker (runs in a child process; all progress goes through files)
# ----------------------------------------------------------------------
def _touch(path: str) -> None:
    with open(path, "a", encoding="utf-8"):
        pass
    os.utime(path, None)


def _worker_main(
    index: int,
    factory: str,
    kwargs_encoded: dict,
    label: str,
    directory: str,
    interval: int,
    monitor_ids: Optional[Tuple[str, ...]],
    verify_restore: bool,
    sabotage: Optional[dict],
) -> None:
    """One supervised run: restore-or-build, then an advance /
    monitor / checkpoint / heartbeat loop until completion.

    ``sabotage`` is the test harness's crash injector:
    ``{"crash_after_checkpoints": k}`` hard-exits after the k-th
    checkpoint; ``{"hang": true}`` stops heartbeating without exiting.
    The supervisor only passes it to a run's *first* worker, so the
    replacement worker completes the run.
    """
    hb = _hb_path(directory, index)
    ckpt = _ckpt_path(directory, index)
    sabotage = sabotage or {}
    if sabotage.get("hang"):
        _touch(hb)
        while True:  # pragma: no cover - killed by the supervisor
            time.sleep(0.5)
    if sabotage.get("crash_after_checkpoints") == 0:
        os._exit(17)  # crash before any checkpoint exists
    start = time.perf_counter()
    kwargs = {k: decode_value(v) for k, v in kwargs_encoded.items()}
    try:
        if os.path.exists(ckpt):
            system = restore(SystemSnapshot.load(ckpt), verify=verify_restore)
        else:
            from repro.resilience.snapshot import _build

            system = _build(factory, kwargs)
        suite = MonitorSuite(monitor_ids)
        _touch(hb)
        checkpoints = 0
        finished = system.all_finished()
        while not finished:
            finished = system.advance(system.sim.now + interval)
            violations = suite.check(system)
            if violations:
                _atomic_write_json(_result_path(directory, index), RunResult(
                    index=index,
                    label=label,
                    ok=False,
                    error=f"InvariantViolation: {violations[0]}",
                    metrics={
                        "violations": [v.to_dict() for v in violations],
                    },
                    wall_time=time.perf_counter() - start,
                    engine=getattr(system, "engine", "reference"),
                    obs_level=str(getattr(system, "obs", "full")),
                ).to_dict(include_timing=True))
                return
            if finished:
                break  # a finished run needs finalizing, not a checkpoint
            if system.sim.peek() is None:
                break  # drained with unfinished tasks: run() will diagnose
            # Only quiescent boundaries are checkpointed: advance()
            # stopped *before* the events at this cycle, so a replayed
            # advance() to the same cycle reproduces the state exactly.
            capture(system, factory, kwargs).save(ckpt)
            system.resilience["checkpoints_written"] += 1
            _touch(hb)
            checkpoints += 1
            crash_after = sabotage.get("crash_after_checkpoints")
            if crash_after is not None and checkpoints >= crash_after:
                os._exit(17)
        result = system.run()
        metrics = result.to_dict()
        metrics.pop("histories", None)
        obs = getattr(system, "obs", None)
        if obs is not None and system.sampler is not None:
            # mirror runner._execute_spec: the deterministic payload of
            # a supervised run must equal the plain runner's bit for bit
            metrics["sampling"] = {
                "interval": system.sampler.interval,
                "samples": max(
                    (len(s) for s in system.sampler.utilization.values()),
                    default=0,
                ),
            }
        _atomic_write_json(_result_path(directory, index), RunResult(
            index=index,
            label=label,
            ok=True,
            completed=result.completed,
            cycles=result.cycles,
            metrics=metrics,
            histories_sha256=(
                _histories_digest(result.histories)
                if obs is None or obs.histories
                else None
            ),
            wall_time=time.perf_counter() - start,
            engine=getattr(system, "engine", "reference"),
            obs_level=str(obs) if obs is not None else "full",
        ).to_dict(include_timing=True))
    except Exception as e:  # noqa: BLE001 — the result file carries it
        _atomic_write_json(_result_path(directory, index), RunResult(
            index=index,
            label=label,
            ok=False,
            error=f"{type(e).__name__}: {e}",
            metrics={"traceback": traceback.format_exc(limit=8)},
            wall_time=time.perf_counter() - start,
            engine=str(kwargs.get("engine", "reference")),
            obs_level=str(kwargs.get("obs_level", "full")),
        ).to_dict(include_timing=True))


# ----------------------------------------------------------------------
# the supervisor
# ----------------------------------------------------------------------
@dataclass
class _Job:
    index: int
    proc: multiprocessing.Process
    started: float
    restarts: int = 0


class Supervisor:
    """Crash-tolerant sweep executor over a checkpoint directory."""

    def __init__(
        self,
        checkpoint_dir: str,
        interval: int = DEFAULT_INTERVAL,
        jobs: int = 1,
        heartbeat_timeout: float = 30.0,
        poll_interval: float = 0.05,
        max_restarts: int = 2,
        monitors: Optional[Sequence[str]] = None,
        verify_restore: bool = True,
    ):
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if heartbeat_timeout <= 0:
            raise ValueError(f"heartbeat_timeout must be > 0, got {heartbeat_timeout}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.checkpoint_dir = checkpoint_dir
        self.interval = interval
        self.jobs = jobs
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        self.max_restarts = max_restarts
        self.monitors = tuple(monitors) if monitors is not None else None
        if self.monitors is not None:
            MonitorSuite(self.monitors)  # validate ids here, not in a worker
        self.verify_restore = verify_restore
        #: test hook: run index -> sabotage dict for the FIRST worker of
        #: that run (crash_after_checkpoints / hang); replacements run
        #: clean, which is exactly what the recovery tests need
        self.sabotage: Dict[int, dict] = {}
        #: the supervisor's own health feed (worker lifecycle, restart
        #: causes, queue depth).  Deliberately NOT part of the
        #: RunReport: the report's deterministic payload must equal a
        #: plain ParallelRunner's bit for bit, and restart counts are
        #: anything but deterministic.  Read it after run() — e.g. the
        #: CLI prints it with --verbose; a sweep service would poll it.
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec], resume: bool = False) -> RunReport:
        """Execute (or resume) the sweep; results come back in spec
        order, deterministic payload identical to a plain runner's."""
        specs = list(specs)
        d = self.checkpoint_dir
        os.makedirs(d, exist_ok=True)
        payloads = _spec_payloads(specs)
        digest = _sweep_digest(payloads)
        sweep_file = _sweep_path(d)
        if os.path.exists(sweep_file):
            with open(sweep_file, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
            if existing.get("digest") != digest:
                raise SupervisorError(
                    f"checkpoint dir {d!r} holds a different sweep "
                    f"(digest {existing.get('digest', '?')[:12]} != "
                    f"{digest[:12]}); use a fresh directory or the "
                    f"original spec list"
                )
            if not resume:
                raise SupervisorError(
                    f"checkpoint dir {d!r} already holds this sweep; "
                    f"pass resume=True (CLI: --resume) to continue it"
                )
        else:
            if resume:
                raise SupervisorError(
                    f"nothing to resume: {sweep_file!r} does not exist"
                )
            _atomic_write_json(sweep_file, {
                "schema": SWEEP_SCHEMA,
                "digest": digest,
                "interval": self.interval,
                "specs": payloads,
            })

        start = time.perf_counter()
        notes: List[str] = []
        results: Dict[int, RunResult] = {}
        pending: List[int] = []
        for i in range(len(specs)):
            done = self._load_result(i)
            if done is not None:
                results[i] = done
                if resume:
                    notes.append(f"run {i}: already complete, skipped")
                    self.metrics.counter("supervisor.runs_resumed").inc()
            else:
                pending.append(i)
        self.metrics.counter("supervisor.runs_total").inc(len(specs))
        queue_depth = self.metrics.histogram("supervisor.queue_depth")

        active: Dict[int, _Job] = {}
        restarts: Dict[int, int] = {i: 0 for i in pending}
        total_restarts = 0
        ctx = multiprocessing.get_context()
        while pending or active:
            queue_depth.observe(len(pending))
            while pending and len(active) < self.jobs:
                i = pending.pop(0)
                active[i] = self._spawn(ctx, i, payloads[i],
                                        first=restarts[i] == 0)
            finished_jobs: List[int] = []
            for i, job in active.items():
                if not job.proc.is_alive():
                    job.proc.join()
                    got = self._load_result(i)
                    if got is not None:
                        results[i] = got
                        finished_jobs.append(i)
                        continue
                    # died without a result file: a genuine crash
                    self.metrics.counter("supervisor.worker_crashes").inc()
                    if restarts[i] >= self.max_restarts:
                        results[i] = RunResult(
                            index=i, label=payloads[i]["label"], ok=False,
                            crashed=True,
                            error=(
                                f"WorkerCrashed: exit code "
                                f"{job.proc.exitcode!r} after "
                                f"{restarts[i]} restart(s)"
                            ),
                        )
                        finished_jobs.append(i)
                        continue
                    restarts[i] += 1
                    total_restarts += 1
                    notes.append(
                        f"run {i}: worker died (exit {job.proc.exitcode!r}), "
                        f"restart {restarts[i]} from checkpoint"
                    )
                    active[i] = self._spawn(ctx, i, payloads[i], first=False)
                elif self._heartbeat_age(i, job) > self.heartbeat_timeout:
                    self.metrics.counter("supervisor.worker_hangs").inc()
                    job.proc.terminate()
                    job.proc.join(timeout=5.0)
                    if job.proc.is_alive():  # pragma: no cover - stubborn
                        job.proc.kill()
                        job.proc.join()
                    if restarts[i] >= self.max_restarts:
                        results[i] = RunResult(
                            index=i, label=payloads[i]["label"], ok=False,
                            timed_out=True,
                            error=(
                                f"WorkerHung: no heartbeat for "
                                f"{self.heartbeat_timeout:g}s after "
                                f"{restarts[i]} restart(s)"
                            ),
                        )
                        finished_jobs.append(i)
                        continue
                    restarts[i] += 1
                    total_restarts += 1
                    notes.append(
                        f"run {i}: worker hung (heartbeat "
                        f">{self.heartbeat_timeout:g}s), restart "
                        f"{restarts[i]} from checkpoint"
                    )
                    active[i] = self._spawn(ctx, i, payloads[i], first=False)
            for i in finished_jobs:
                del active[i]
            if active:
                time.sleep(self.poll_interval)
        if total_restarts:
            notes.append(f"total worker restarts: {total_restarts}")
        self.metrics.counter("supervisor.worker_restarts").inc(total_restarts)
        self.metrics.counter("supervisor.runs_failed").inc(
            sum(1 for r in results.values() if not r.ok)
        )
        self.metrics.gauge("supervisor.wall_time").set(
            round(time.perf_counter() - start, 4)
        )
        ordered = [results[i] for i in range(len(specs))]
        return RunReport(
            results=ordered,
            jobs=self.jobs,
            wall_time=time.perf_counter() - start,
            serial_time_estimate=sum(r.wall_time for r in ordered),
            notes=notes,
        )

    # ------------------------------------------------------------------
    def _spawn(self, ctx, index: int, payload: dict, first: bool) -> _Job:
        self.metrics.counter("supervisor.workers_spawned").inc()
        hb = _hb_path(self.checkpoint_dir, index)
        _touch(hb)  # a fresh worker gets a full heartbeat budget
        proc = ctx.Process(
            target=_worker_main,
            args=(
                index,
                payload["factory"],
                payload["kwargs"],
                payload["label"],
                self.checkpoint_dir,
                self.interval,
                self.monitors,
                self.verify_restore,
                self.sabotage.get(index) if first else None,
            ),
            daemon=True,
        )
        proc.start()
        return _Job(index=index, proc=proc, started=time.monotonic())

    def _heartbeat_age(self, index: int, job: _Job) -> float:
        try:
            mtime = os.path.getmtime(_hb_path(self.checkpoint_dir, index))
        except OSError:
            return time.monotonic() - job.started
        return time.time() - mtime

    def _load_result(self, index: int) -> Optional[RunResult]:
        path = _result_path(self.checkpoint_dir, index)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None  # half-written by a dying worker: redo the run
        return RunResult.from_dict(data)
