"""Module-level workload factories for the parallel run engine.

:mod:`repro.runner` ships run *descriptions* — a factory reference plus
keyword arguments — across process boundaries and rebuilds the actual
system/graph inside the worker.  That requires the factories to live at
module level (picklable by reference); the closures that used to be
private to ``cli.py`` and ``tests/conftest.py`` now live here so the
CLI, the exploration library, the benchmarks and the tests all stress
the *same* canonical workloads.

Every factory returns a ``(system, graph)`` pair with the system not
yet configured — exactly what :func:`repro.runner._execute_spec`
expects — and is a pure function of its arguments, so the same call is
byte-reproducible anywhere.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.config import CoprocessorSpec, ShellParams, SystemParams
from repro.core.system import EclipseSystem
from repro.kahn.analysis import repetition_vector
from repro.kahn.graph import ApplicationGraph, PortSpec, TaskNode
from repro.kahn.library import ConsumerKernel, ForkKernel, MapKernel, ProducerKernel
from repro.sim.faults import FaultPlan
from repro.verify.graph_lint import declared_rates

try:  # optional vectorization for payload synthesis
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the base image
    _np = None

__all__ = [
    "payload_of",
    "pipeline_graph",
    "diamond_graph",
    "quickstart_graph",
    "GRAPH_BUILDERS",
    "conformance_run",
    "quickstart_run",
    "decode_run",
    "explore_decode_run",
    "conferencing_run",
    "timeshift_loss_run",
    "multistream_contention_run",
    "RUN_FACTORIES",
]


# ---------------------------------------------------------------------------
# deterministic payloads and canonical graphs
# ---------------------------------------------------------------------------
def payload_of(n: int, seed: int = 3) -> bytes:
    """n pseudo-random-looking but deterministic bytes."""
    if _np is not None and n >= 256:
        return ((_np.arange(n, dtype=_np.int64) * 89 + seed) % 256).astype(_np.uint8).tobytes()
    return bytes((i * 89 + seed) % 256 for i in range(n))


def _grained(kernel_cls, grain: int):
    """The kernel's ports re-declared with the actual sync grain, so
    the SDF rate check and the buffer lints have real numbers."""
    return tuple(PortSpec(p.name, p.direction, grain) for p in kernel_cls.PORTS)


def _checked(g: ApplicationGraph) -> ApplicationGraph:
    """Fail fast on a malformed spec: structural validation always,
    SDF rate consistency whenever every port declares its grain."""
    g.validate()
    rates = declared_rates(g)
    if rates:
        repetition_vector(g, rates)
    return g


def pipeline_graph(payload: bytes, chunk: int = 16, buffer_size: int = 64) -> ApplicationGraph:
    """src -> map -> dst: the minimal multi-hop stream."""
    g = ApplicationGraph("pipeline")
    g.add_task(
        TaskNode("src", lambda: ProducerKernel(payload, chunk=chunk), _grained(ProducerKernel, chunk))
    )
    g.add_task(
        TaskNode(
            "xf",
            lambda: MapKernel(lambda b: bytes((x + 1) % 256 for x in b), chunk=chunk),
            _grained(MapKernel, chunk),
        )
    )
    g.add_task(TaskNode("dst", lambda: ConsumerKernel(chunk=chunk), _grained(ConsumerKernel, chunk)))
    g.connect("src.out", "xf.in", buffer_size=buffer_size)
    g.connect("xf.out", "dst.in", buffer_size=buffer_size)
    return _checked(g)


def diamond_graph(payload: bytes, chunk: int = 16, buffer_size: int = 96) -> ApplicationGraph:
    """src -> fork -> (map -> da | db): multicast + asymmetric arms."""
    g = ApplicationGraph("diamond")
    g.add_task(
        TaskNode("src", lambda: ProducerKernel(payload, chunk=chunk), _grained(ProducerKernel, chunk))
    )
    g.add_task(TaskNode("fork", lambda: ForkKernel(chunk=chunk), _grained(ForkKernel, chunk)))
    g.add_task(
        TaskNode(
            "ma",
            lambda: MapKernel(lambda b: bytes(x ^ 0x3C for x in b), chunk=chunk),
            _grained(MapKernel, chunk),
        )
    )
    g.add_task(TaskNode("da", lambda: ConsumerKernel(chunk=chunk), _grained(ConsumerKernel, chunk)))
    g.add_task(TaskNode("db", lambda: ConsumerKernel(chunk=chunk), _grained(ConsumerKernel, chunk)))
    g.connect("src.out", "fork.in", buffer_size=buffer_size)
    g.connect("fork.out_a", "ma.in", buffer_size=buffer_size)
    g.connect("ma.out", "da.in", buffer_size=buffer_size)
    g.connect("fork.out_b", "db.in", buffer_size=buffer_size)
    return _checked(g)


def quickstart_graph(payload: bytes, chunk: int = 32, buffer_size: int = 128) -> ApplicationGraph:
    """src -> dst: the CLI quickstart demo graph."""
    g = ApplicationGraph("cli-demo")
    g.add_task(
        TaskNode("src", lambda: ProducerKernel(payload, chunk=chunk), _grained(ProducerKernel, chunk))
    )
    g.add_task(TaskNode("dst", lambda: ConsumerKernel(chunk=chunk), _grained(ConsumerKernel, chunk)))
    g.connect("src.out", "dst.in", buffer_size=buffer_size)
    return _checked(g)


GRAPH_BUILDERS = {"pipeline": pipeline_graph, "diamond": diamond_graph}


# ---------------------------------------------------------------------------
# run factories (RunSpec targets)
# ---------------------------------------------------------------------------
def conformance_run(
    graph: str = "pipeline",
    payload_len: int = 2048,
    fault_spec: str = "chaos",
    fault_seed: int = 0,
    watchdog_timeout: Optional[int] = 2000,
    n_coprocs: int = 3,
    chunk: int = 16,
    engine: str = "reference",
    obs_level: str = "full",
    sample_interval: Optional[int] = None,
) -> Tuple[EclipseSystem, ApplicationGraph]:
    """One differential-conformance point: a small graph on a plain
    n-coprocessor instance under a seeded fault plan."""
    try:
        builder = GRAPH_BUILDERS[graph]
    except KeyError:
        raise ValueError(f"unknown conformance graph {graph!r} "
                         f"(want one of {sorted(GRAPH_BUILDERS)})")
    plan = FaultPlan.parse(fault_spec, seed=fault_seed)
    if not plan.any_faults():
        plan = None
    params = SystemParams(watchdog_timeout=watchdog_timeout, engine=engine,
                          obs_level=obs_level, sample_interval=sample_interval)
    system = EclipseSystem(
        [CoprocessorSpec(f"cp{i}") for i in range(n_coprocs)], params, faults=plan
    )
    return system, builder(payload_of(payload_len), chunk=chunk)


def quickstart_run(
    payload_len: int = 4096,
    watchdog_timeout: Optional[int] = None,
    engine: str = "reference",
    obs_level: str = "full",
    sample_interval: Optional[int] = None,
) -> Tuple[EclipseSystem, ApplicationGraph]:
    """The CLI quickstart: producer/consumer on two coprocessors."""
    payload = bytes((11 * i) % 256 for i in range(payload_len))
    params = SystemParams(watchdog_timeout=watchdog_timeout, engine=engine,
                          obs_level=obs_level, sample_interval=sample_interval)
    system = EclipseSystem([CoprocessorSpec("cp0"), CoprocessorSpec("cp1")], params)
    return system, quickstart_graph(payload)


def decode_run(
    width: int = 48,
    height: int = 32,
    frames: int = 4,
    gop_n: int = 4,
    gop_m: int = 2,
    dram_latency: int = 60,
    buffer_packets: int = 3,
    prefetch_lines: Optional[int] = None,
    engine: str = "reference",
    obs_level: str = "full",
    sample_interval: Optional[int] = None,
) -> Tuple[EclipseSystem, ApplicationGraph]:
    """A Figure-8 decode of a synthetic sequence (encode included, so
    the factory is self-contained and picklable as a description)."""
    from repro.instance.eclipse_mpeg import DECODE_MAPPING, build_mpeg_instance
    from repro.media import CodecParams, encode_sequence, synthetic_sequence
    from repro.media.pipelines import decode_graph

    codec = CodecParams(width=width, height=height, gop_n=gop_n, gop_m=gop_m)
    seq = synthetic_sequence(codec.width, codec.height, frames, noise=1.0)
    bitstream, _, _ = encode_sequence(seq, codec)
    shell = ShellParams(prefetch_lines=prefetch_lines) if prefetch_lines is not None else None
    system = build_mpeg_instance(
        SystemParams(dram_latency=dram_latency, engine=engine,
                     obs_level=obs_level, sample_interval=sample_interval),
        shell=shell,
    )
    graph = decode_graph(bitstream, mapping=DECODE_MAPPING, buffer_packets=buffer_packets)
    return system, graph


def explore_decode_run(
    bitstream: bytes,
    prefetch_lines: Optional[int] = None,
    buffer_packets: int = 3,
    engine: str = "reference",
    obs_level: str = "full",
    sample_interval: Optional[int] = None,
) -> Tuple[EclipseSystem, ApplicationGraph]:
    """One point of the CLI ``explore`` sweep: decode a pre-encoded
    bitstream on the Figure 8 instance with one knob turned."""
    from repro.instance.eclipse_mpeg import DECODE_MAPPING, build_mpeg_instance
    from repro.media.pipelines import decode_graph

    shell = ShellParams(prefetch_lines=prefetch_lines) if prefetch_lines is not None else None
    # dram_latency=60 matches build_mpeg_instance's params=None default —
    # an engine switch must not silently change any timing parameter
    system = build_mpeg_instance(
        SystemParams(dram_latency=60, engine=engine,
                     obs_level=obs_level, sample_interval=sample_interval),
        shell=shell,
    )
    graph = decode_graph(bitstream, mapping=DECODE_MAPPING, buffer_packets=buffer_packets)
    return system, graph


def solved_run(
    workload: str = "conformance-pipeline",
    sram_size: Optional[int] = None,
    elasticity: int = 1,
    engine: str = "reference",
) -> Tuple[EclipseSystem, ApplicationGraph]:
    """A workload whose configuration is *derived*, not spelled out.

    ``repro submit --workload solved --arg sram_size=4096`` hands the
    service an SRAM budget instead of a full spec: the constraint
    solver (:func:`repro.verify.solve_workload`) derives minimal buffer
    sizes (plus grain and mapping where the workload exposes them) for
    the named solve model, and this factory rebuilds the workload with
    those sizes stamped in.  The solver is deterministic, so the
    run — and its content-addressed cache key — depends only on
    ``(workload, sram_size, elasticity, engine)``.
    """
    from repro.verify.solve_run import SOLVE_MODELS, solve_workload

    solution = solve_workload(workload, sram_size=sram_size, elasticity=elasticity)
    system, graph = SOLVE_MODELS[workload].build(engine=engine, grain=solution.grain)
    for name, size in solution.buffer_sizes.items():
        graph.streams[name].buffer_size = size
    return system, graph


# ---------------------------------------------------------------------------
# lossy-ingest workloads (repro.net; docs/networking.md)
# ---------------------------------------------------------------------------
def _av_transport_stream(width, height, frames, gop_n, gop_m, audio_blocks,
                         noise=1.0):
    """Deterministic A/V content muxed into one transport stream."""
    from repro.media import CodecParams, encode_sequence, synthetic_sequence
    from repro.media.audio import BLOCK_SAMPLES, adpcm_encode, synthetic_pcm
    from repro.media.transport import AUDIO_PID, VIDEO_PID, ts_mux

    codec = CodecParams(width=width, height=height, gop_n=gop_n, gop_m=gop_m)
    seq = synthetic_sequence(codec.width, codec.height, frames, noise=noise)
    video_es, _, _ = encode_sequence(seq, codec)
    audio_es = adpcm_encode(synthetic_pcm(BLOCK_SAMPLES * audio_blocks))
    return codec, ts_mux({VIDEO_PID: video_es, AUDIO_PID: audio_es})


def conferencing_run(
    width: int = 48,
    height: int = 32,
    frames: int = 5,
    gop_n: int = 6,
    gop_m: int = 3,
    audio_blocks: int = 6,
    loss_spec: str = "moderate",
    loss_seed: Optional[int] = None,
    conceal_budget: float = 0.5,
    dram_latency: int = 60,
    buffer_packets: int = 3,
    engine: str = "reference",
    obs_level: str = "full",
    sample_interval: Optional[int] = None,
) -> Tuple[EclipseSystem, ApplicationGraph]:
    """Conferencing: the full §6 A/V decode behind a lossy network.

    The transport stream passes the seeded :mod:`repro.net` ingest
    (``loss_spec`` is a :class:`~repro.sim.faults.LossPlan` preset or
    key=value list) before it reaches the demux; unrecovered erasures
    degrade into concealed frames and silenced audio blocks, reported
    under ``SystemResult.degradation``."""
    from repro.instance.eclipse_mpeg import build_mpeg_instance
    from repro.media.av_pipeline import AV_DECODE_MAPPING, lossy_av_decode_graph
    from repro.net import ingest
    from repro.sim.faults import LossPlan

    codec, ts = _av_transport_stream(width, height, frames, gop_n, gop_m, audio_blocks)
    result = ingest(ts, LossPlan.parse(loss_spec, seed=loss_seed))
    system = build_mpeg_instance(
        SystemParams(dram_latency=dram_latency, engine=engine,
                     obs_level=obs_level, sample_interval=sample_interval)
    )
    graph = lossy_av_decode_graph(
        result, codec, frames, mapping=AV_DECODE_MAPPING,
        buffer_packets=buffer_packets, conceal_budget=conceal_budget,
    )
    return system, graph


def timeshift_loss_run(
    width: int = 48,
    height: int = 32,
    frames: int = 4,
    gop_n: int = 4,
    gop_m: int = 2,
    audio_blocks: int = 4,
    loss_spec: str = "mild",
    loss_seed: Optional[int] = None,
    conceal_budget: float = 0.5,
    sram_size: int = 192 * 1024,
    buffer_packets: int = 3,
    engine: str = "reference",
    obs_level: str = "full",
    sample_interval: Optional[int] = None,
) -> Tuple[EclipseSystem, ApplicationGraph]:
    """Time-shift under loss: record a clean programme while playing
    back one that arrives over the lossy network — the §6 simultaneous
    encode+decode scenario with a degraded playback leg."""
    from repro.instance.eclipse_mpeg import ENCODE_MAPPING, build_mpeg_instance
    from repro.media import CodecParams, synthetic_sequence
    from repro.media.av_pipeline import AV_DECODE_MAPPING, lossy_av_decode_graph
    from repro.media.pipelines import encode_graph
    from repro.net import ingest
    from repro.sim.faults import LossPlan

    codec, ts = _av_transport_stream(width, height, frames, gop_n, gop_m, audio_blocks)
    result = ingest(ts, LossPlan.parse(loss_spec, seed=loss_seed))
    play = lossy_av_decode_graph(
        result, codec, frames, mapping=AV_DECODE_MAPPING,
        buffer_packets=buffer_packets, conceal_budget=conceal_budget,
    )
    rec_params = CodecParams(width=width, height=height, gop_n=gop_n, gop_m=gop_m)
    raw = synthetic_sequence(width, height, frames, noise=1.0)
    graph = encode_graph(raw, rec_params, ENCODE_MAPPING,
                         buffer_packets, name="timeshift_loss")
    graph.merge(play, prefix="play_")
    # record ∥ playback are deliberately independent islands; declare
    # them so G009 still catches an accidental third component
    graph.expected_components = 2
    play_mapping = {f"play_{k}": v for k, v in AV_DECODE_MAPPING.items()}
    for tname, node in graph.tasks.items():
        if tname.startswith("play_"):
            node.mapping = play_mapping[tname]
    graph.validate()
    system = build_mpeg_instance(
        SystemParams(sram_size=sram_size, engine=engine,
                     obs_level=obs_level, sample_interval=sample_interval)
    )
    return system, graph


def multistream_contention_run(
    width: int = 48,
    height: int = 32,
    frames: int = 4,
    gop_n: int = 4,
    gop_m: int = 2,
    audio_blocks: int = 4,
    loss_spec: str = "moderate",
    loss_seed_a: int = 1,
    loss_seed_b: int = 2,
    conceal_budget: float = 0.5,
    sram_size: int = 192 * 1024,
    buffer_packets: int = 3,
    engine: str = "reference",
    obs_level: str = "full",
    sample_interval: Optional[int] = None,
) -> Tuple[EclipseSystem, ApplicationGraph]:
    """Two lossy conferencing streams decoded on one instance — every
    coprocessor multi-tasks, so the erasure/concealment schedules of
    both streams interleave under real resource contention."""
    from repro.instance.eclipse_mpeg import build_mpeg_instance
    from repro.media.av_pipeline import AV_DECODE_MAPPING, lossy_av_decode_graph
    from repro.net import ingest
    from repro.sim.faults import LossPlan

    codec, ts = _av_transport_stream(width, height, frames, gop_n, gop_m, audio_blocks)
    plan = LossPlan.parse(loss_spec)
    res_a = ingest(ts, plan.with_(seed=loss_seed_a))
    res_b = ingest(ts, plan.with_(seed=loss_seed_b))
    graph = lossy_av_decode_graph(
        res_a, codec, frames, mapping=AV_DECODE_MAPPING,
        buffer_packets=buffer_packets, conceal_budget=conceal_budget,
        name="multistream",
    )
    other = lossy_av_decode_graph(
        res_b, codec, frames, mapping=AV_DECODE_MAPPING,
        buffer_packets=buffer_packets, conceal_budget=conceal_budget,
        name="stream_b",
    )
    graph.merge(other, prefix="b_")
    # two deliberately independent streams: declare the islands so the
    # graph linter (G009) still catches a third, accidental one
    graph.expected_components = 2
    b_mapping = {f"b_{k}": v for k, v in AV_DECODE_MAPPING.items()}
    for tname, node in graph.tasks.items():
        if tname.startswith("b_"):
            node.mapping = b_mapping[tname]
    graph.validate()
    system = build_mpeg_instance(
        SystemParams(sram_size=sram_size, engine=engine,
                     obs_level=obs_level, sample_interval=sample_interval)
    )
    return system, graph


#: The factories a sweep-service client may name instead of spelling a
#: ``module:function`` reference (``repro submit --workload NAME``).
#: Only self-contained factories belong here — every kwarg must be
#: expressible on a command line (``explore_decode_run`` needs a
#: pre-encoded bitstream, so it is submitted by reference instead).
RUN_FACTORIES = {
    "quickstart": quickstart_run,
    "decode": decode_run,
    "conformance": conformance_run,
    "solved": solved_run,
    "conferencing": conferencing_run,
    "timeshift-loss": timeshift_loss_run,
    "multistream": multistream_contention_run,
}
