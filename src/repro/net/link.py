"""Seeded lossy-link model: the adversary between sender and receiver.

The link mirrors the discipline of :class:`repro.sim.faults.
FaultInjector`: one private ``random.Random`` makes every per-packet
decision in the order packets are offered, so a ``LossPlan`` replays a
byte-identical delivery schedule.  Decisions per packet: drop (vanish),
duplicate (a second, independently jittered copy), and jitter/reorder
(extra delay that lets later packets overtake).  Sender-side rate
variation (pacing gaps) draws from the same stream via
:meth:`pacing_gap`, so the whole transport consumes a single RNG
cursor.
"""

from __future__ import annotations

import random
from typing import List

from repro.sim.faults import LossPlan

__all__ = ["LossyLink"]

#: fixed one-way propagation latency, in ticks
BASE_LATENCY = 4


class LossyLink:
    """Per-packet delivery decisions for one ingest session."""

    def __init__(self, plan: LossPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.dropped = 0
        self.duplicated = 0
        self.jittered = 0

    def pacing_gap(self) -> int:
        """Ticks between consecutive sends (rate variation: occasional
        congestion episodes stretch the gap)."""
        p = self.plan
        if p.rate_var and self.rng.random() < p.rate_var:
            return 1 + self.rng.randrange(1, p.max_jitter + 1)
        return 1

    def deliveries(self, send_tick: int) -> List[int]:
        """Arrival ticks for one packet offered at ``send_tick``:
        ``[]`` is a drop, one entry a (possibly jittered) delivery, two
        entries a duplication."""
        p = self.plan
        if p.drop_prob and self.rng.random() < p.drop_prob:
            self.dropped += 1
            return []
        t = send_tick + BASE_LATENCY
        if p.reorder_prob and self.rng.random() < p.reorder_prob:
            t += self.rng.randrange(1, p.max_jitter + 1)
            self.jittered += 1
        out = [t]
        if p.dup_prob and self.rng.random() < p.dup_prob:
            out.append(t + self.rng.randrange(0, p.max_jitter + 1))
            self.duplicated += 1
        return out
