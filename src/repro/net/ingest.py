"""The deterministic ingest session: sender → lossy link → receiver.

:class:`NetIngest` runs an integer-tick, event-driven simulation of
one transport session: the packetized TS is paced onto the
:class:`~repro.net.link.LossyLink` (rate variation stretches the
gaps), arrivals feed the receiver stack, missing data packets are
NACKed with exponential backoff, single losses per FEC group are
XOR-recovered, and packets still missing ``deadline`` ticks after the
last send are *declared lost* — the session always terminates, and
surviving erasures flow downstream as concealment work instead of a
stall.

Everything is deterministic: one heap ordered by ``(tick, push
counter)``, one RNG inside the link.  The ingest runs at
workload-build time, before the cycle-level simulation starts, so the
recovered stream (and therefore the decode schedule) is a pure
function of ``(ts, plan)`` — identical on the reference and fast
engines by construction.

Observability: pass a :class:`repro.obs.spans.SpanRecorder` (ideally
with ``clock=lambda: 0`` replaced by the ingest's tick clock via
:func:`tick_recorder`) to get a Perfetto-loadable timeline of sends,
recoveries and declared losses; pass a
:class:`repro.obs.metrics.MetricsRegistry` to have the final counters
published under ``net.*`` names.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.media.transport import TS_HEADER, TS_PACKET
from repro.net.link import BASE_LATENCY, LossyLink
from repro.net.packets import (
    PACKET_DATA,
    PACKET_PARITY,
    NetPacket,
    packetize,
    slot_table,
)
from repro.net.receiver import FecGroups, JitterBuffer, RtxManager
from repro.sim.faults import LossPlan

__all__ = ["NetStats", "IngestResult", "NetIngest", "ingest", "tick_recorder"]

#: uplink latency for a NACK to reach the sender, in ticks
NACK_LATENCY = 2


def tick_recorder(capacity: int = 100_000):
    """A :class:`~repro.obs.spans.SpanRecorder` whose clock is the
    ingest tick — deterministic timelines, byte-comparable exports.
    Attach it via :class:`NetIngest`, which drives the tick."""
    from repro.obs.spans import SpanRecorder

    holder = {"now": 0}
    rec = SpanRecorder(capacity=capacity, clock=lambda: holder["now"],
                       process_name="repro.net")
    rec._tick_holder = holder
    return rec


@dataclass
class NetStats:
    """What one ingest session did (all deterministic counters)."""

    data_packets: int = 0
    parity_packets: int = 0
    rtx_packets: int = 0
    packets_dropped: int = 0
    packets_duplicated: int = 0
    packets_jittered: int = 0
    packets_received: int = 0
    duplicates_ignored: int = 0
    packets_late: int = 0
    nacks_sent: int = 0
    fec_recovered: int = 0
    rtx_recovered: int = 0
    rtx_gave_up: int = 0
    slots_lost: int = 0
    jitter_max_depth: int = 0
    ticks: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            name: getattr(self, name)
            for name in sorted(self.__dataclass_fields__)
        }

    def to_metrics(self, registry) -> None:
        """Publish the counters as ``net.*`` metrics (stable names,
        sorted canonical form — see :mod:`repro.obs.metrics`)."""
        for name, value in self.to_dict().items():
            registry.counter(f"net.{name}").inc(value)


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one ingest session.

    ``recovered_ts`` preserves slot positions: a slot the receiver
    could not recover keeps its 4-byte header (assumed recoverable
    out-of-band, e.g. from the FEC group's surviving headers — see
    docs/networking.md) with a zeroed payload, so downstream
    elementary-stream offsets stay aligned and the erasure maps to
    exact per-PID byte ranges (:meth:`erased_ranges`).
    """

    original_ts: bytes
    recovered_ts: bytes
    lost_slots: Tuple[int, ...]
    plan: LossPlan
    stats: NetStats = field(compare=False)

    @property
    def loss_active(self) -> bool:
        """True when the plan could disturb the stream at all — the
        switch for degradation accounting downstream."""
        return self.plan.any_loss()

    def erased_ranges(self) -> Dict[int, Tuple[Tuple[int, int], ...]]:
        """Lost slots as per-PID elementary-stream byte ranges."""
        table = slot_table(self.original_ts)
        out: Dict[int, List[Tuple[int, int]]] = {}
        for slot in self.lost_slots:
            pid, es_off, length = table[slot]
            if length:
                out.setdefault(pid, []).append((es_off, es_off + length))
        return {pid: tuple(ranges) for pid, ranges in sorted(out.items())}


class NetIngest:
    """One ingest session; :meth:`run` is a pure function of its args."""

    def __init__(
        self,
        ts: bytes,
        plan: LossPlan,
        recorder=None,
        metrics=None,
    ):
        if len(ts) % TS_PACKET:
            raise ValueError(f"TS length {len(ts)} is not a whole number of slots")
        self.ts = ts
        self.plan = plan
        self.recorder = recorder
        self.metrics = metrics

    # ------------------------------------------------------------------
    def _tick(self, t: int) -> None:
        holder = getattr(self.recorder, "_tick_holder", None)
        if holder is not None:
            holder["now"] = t

    def _instant(self, name: str, **args) -> None:
        if self.recorder is not None:
            self.recorder.instant(name, cat="net", thread="net", **args)

    # ------------------------------------------------------------------
    def run(self) -> IngestResult:
        plan = self.plan
        stats = NetStats()
        n_slots = len(self.ts) // TS_PACKET
        if not plan.any_loss():
            # clean link: the transport is a no-op by construction
            stats.data_packets = n_slots
            if self.metrics is not None:
                stats.to_metrics(self.metrics)
            return IngestResult(self.ts, self.ts, (), plan, stats)

        packets = packetize(self.ts, plan.fec_group)
        link = LossyLink(plan)
        jbuf = JitterBuffer()
        rtx = RtxManager(plan)
        group_slots: Dict[int, List[int]] = {}
        seq_of_slot: Dict[int, int] = {}
        packet_of_seq: Dict[int, NetPacket] = {}
        for p in packets:
            packet_of_seq[p.seq] = p
            if p.kind == PACKET_DATA:
                seq_of_slot[p.slot] = p.seq
                if p.group >= 0:
                    group_slots.setdefault(p.group, []).append(p.slot)
        fec = FecGroups(group_slots)
        stats.data_packets = sum(1 for p in packets if p.kind == PACKET_DATA)
        stats.parity_packets = len(packets) - stats.data_packets

        received: Dict[int, bytes] = {}  # slot -> payload
        heap: List[Tuple[int, int, Tuple]] = []
        push_count = 0

        def push(t: int, ev: Tuple) -> None:
            nonlocal push_count
            heapq.heappush(heap, (t, push_count, ev))
            push_count += 1

        # pace the initial sends; NACK checks are armed per data packet
        # at its nominal arrival + rtx_timeout (tail losses included)
        t = 0
        for p in packets:
            push(t, ("send", p, False))
            if p.kind == PACKET_DATA:
                push(t + BASE_LATENCY + plan.rtx_timeout, ("check", p.seq))
            t += link.pacing_gap()
        deadline_abs = t + plan.deadline

        def fill_slot(slot: int, payload: bytes, via: str, now: int) -> None:
            received[slot] = payload
            seq = seq_of_slot[slot]
            rtx.on_recovered(seq)
            if via == "fec":
                stats.fec_recovered += 1
                self._instant("fec_recover", slot=slot, tick=now)
            elif rtx.attempts(seq) > 0:
                stats.rtx_recovered += 1
                self._instant("rtx_recover", slot=slot, tick=now)

        last_tick = 0
        while heap:
            now, _, ev = heapq.heappop(heap)
            last_tick = max(last_tick, now)
            self._tick(now)
            kind = ev[0]
            if kind == "send":
                _, pkt, is_rtx = ev
                if is_rtx:
                    if now > deadline_abs:
                        continue  # the player has moved on
                    stats.rtx_packets += 1
                for at in link.deliveries(now):
                    push(at, ("arrive", pkt))
            elif kind == "arrive":
                (_, pkt) = ev
                stats.packets_received += 1
                if now > deadline_abs:
                    stats.packets_late += 1
                    continue
                if not jbuf.push(pkt.seq):
                    continue
                if pkt.kind == PACKET_DATA:
                    if pkt.slot not in received:
                        fill_slot(pkt.slot, pkt.payload, "arrival", now)
                        fec.add_data(pkt.group, pkt.slot, pkt.payload)
                        rec = fec.try_recover(pkt.group)
                        if rec is not None and rec[0] not in received:
                            fill_slot(rec[0], rec[1], "fec", now)
                    else:
                        fec.add_data(pkt.group, pkt.slot, pkt.payload)
                else:
                    fec.add_parity(pkt.group, pkt.payload)
                    rec = fec.try_recover(pkt.group)
                    if rec is not None and rec[0] not in received:
                        fill_slot(rec[0], rec[1], "fec", now)
            elif kind == "check":
                (_, seq) = ev
                pkt = packet_of_seq[seq]
                recovered = pkt.slot in received
                if now > deadline_abs:
                    if not recovered:
                        rtx.on_recovered(seq)  # stop checking; declared lost
                    continue
                action, delay = rtx.on_timeout(seq, recovered)
                if action == "nack":
                    stats.nacks_sent += 1
                    self._instant("nack", seq=seq, attempt=rtx.attempts(seq),
                                  tick=now)
                    push(now + NACK_LATENCY, ("send", pkt, True))
                    push(now + delay, ("check", seq))

        stats.packets_dropped = link.dropped
        stats.packets_duplicated = link.duplicated
        stats.packets_jittered = link.jittered
        stats.duplicates_ignored = jbuf.duplicates
        stats.jitter_max_depth = jbuf.max_depth
        stats.rtx_gave_up = rtx.gave_up
        stats.ticks = last_tick

        lost = tuple(s for s in range(n_slots) if s not in received)
        stats.slots_lost = len(lost)
        out = bytearray()
        for slot in range(n_slots):
            if slot in received:
                out.extend(received[slot])
            else:
                off = slot * TS_PACKET
                out.extend(self.ts[off : off + TS_HEADER])
                out.extend(b"\x00" * (TS_PACKET - TS_HEADER))
                self._instant("slot_lost", slot=slot)
        if self.metrics is not None:
            stats.to_metrics(self.metrics)
        return IngestResult(self.ts, bytes(out), lost, plan, stats)


def ingest(ts: bytes, plan: LossPlan, recorder=None, metrics=None) -> IngestResult:
    """Convenience one-call form of :class:`NetIngest`."""
    return NetIngest(ts, plan, recorder=recorder, metrics=metrics).run()
