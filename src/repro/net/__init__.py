"""Deterministic lossy network ingest in front of the demux.

The paper's set-top scenarios assume a clean transport stream in
memory; this package models the front half of a conferencing/streaming
stack instead (ROADMAP item 3): the TS sliced into sequence-numbered
packets with XOR-parity FEC groups (:mod:`repro.net.packets`), a
seeded lossy link (drop/duplicate/reorder/jitter/rate-variation,
:mod:`repro.net.link`), and a receiver stack — jitter buffer, NACK
retransmission manager with exponential backoff, FEC recovery
(:mod:`repro.net.receiver`) — reassembling the stream for decode
(:mod:`repro.net.ingest`).

Everything is a pure function of ``(ts, LossPlan)``: one
``random.Random(plan.seed)`` drives every link decision in a fixed
event order, so the same seed reproduces the same recovered stream,
the same erasures and the same statistics on any engine and any
machine.  The ingest runs as a deterministic pre-pass at
workload-build time; its surviving erasures flow into the decode graph
as concealment work (:mod:`repro.media.conceal`), never as a crash.

See docs/networking.md for the full story.
"""

from repro.net.ingest import IngestResult, NetIngest, NetStats, ingest, tick_recorder
from repro.net.link import LossyLink
from repro.net.packets import (
    PACKET_DATA,
    PACKET_PARITY,
    NetPacket,
    packetize,
    slot_table,
    xor_parity,
)
from repro.net.receiver import FecGroups, JitterBuffer, RtxManager

__all__ = [
    "NetPacket",
    "PACKET_DATA",
    "PACKET_PARITY",
    "packetize",
    "slot_table",
    "xor_parity",
    "LossyLink",
    "JitterBuffer",
    "RtxManager",
    "FecGroups",
    "NetIngest",
    "NetStats",
    "IngestResult",
    "ingest",
    "tick_recorder",
]
