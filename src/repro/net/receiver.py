"""Receiver stack: jitter buffer, NACK/RTX manager, FEC recovery.

Three cooperating pieces, driven by the :mod:`repro.net.ingest` event
loop:

* :class:`JitterBuffer` absorbs reordering — it tracks how far out of
  order packets arrive (the depth a real playout buffer would need)
  and flags duplicates.
* :class:`RtxManager` turns missing sequence numbers into NACKs with
  timeout and exponential backoff — the same capped policy the shell
  watchdog uses (:class:`repro.core.backoff.ExponentialBackoff`), and
  a bounded number of attempts so an unrecoverable packet becomes a
  *declared loss*, not an infinite wait.
* :class:`FecGroups` holds partially received FEC groups and recovers
  any single missing data packet from the group's XOR parity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.backoff import ExponentialBackoff
from repro.net.packets import NetPacket, xor_parity
from repro.sim.faults import LossPlan

__all__ = ["JitterBuffer", "RtxManager", "FecGroups"]


class JitterBuffer:
    """Reorder absorber: measures disorder, filters duplicates."""

    def __init__(self) -> None:
        self._seen: Set[int] = set()
        self._highest = -1
        self.max_depth = 0
        self.duplicates = 0

    def push(self, seq: int) -> bool:
        """Record one arrival; returns False for a duplicate."""
        if seq in self._seen:
            self.duplicates += 1
            return False
        self._seen.add(seq)
        if seq > self._highest:
            self._highest = seq
        else:
            # arrived behind the high-water mark: needs this much buffer
            self.max_depth = max(self.max_depth, self._highest - seq)
        return True


class _NackState:
    __slots__ = ("attempts", "backoff", "done")

    def __init__(self, plan: LossPlan):
        self.attempts = 0
        self.backoff = ExponentialBackoff(
            plan.rtx_timeout,
            plan.rtx_backoff,
            plan.rtx_timeout * plan.rtx_backoff ** max(plan.max_rtx, 1),
        )
        self.done = False


class RtxManager:
    """Bounded NACK retransmission with exponential backoff.

    The ingest loop schedules a timeout check per data sequence; on
    expiry :meth:`on_timeout` either asks for a retransmission (and
    the next, backed-off check time) or gives up after ``max_rtx``
    attempts."""

    def __init__(self, plan: LossPlan):
        self.plan = plan
        self._states: Dict[int, _NackState] = {}
        self.nacks_sent = 0
        self.gave_up = 0

    def on_recovered(self, seq: int) -> None:
        """The packet (or its slot, via FEC) made it — stop NACKing."""
        state = self._states.get(seq)
        if state is not None:
            state.done = True

    def on_timeout(self, seq: int, recovered: bool) -> Tuple[str, int]:
        """Timeout check for ``seq``; returns ``(action, next_delay)``
        with action one of ``"done"``, ``"nack"`` (retransmit request
        sent; check again after ``next_delay``), ``"give_up"``."""
        state = self._states.get(seq)
        if state is None:
            state = self._states[seq] = _NackState(self.plan)
        if recovered or state.done:
            state.done = True
            return ("done", 0)
        if state.attempts >= self.plan.max_rtx:
            state.done = True
            self.gave_up += 1
            return ("give_up", 0)
        state.attempts += 1
        self.nacks_sent += 1
        return ("nack", state.backoff.escalate())

    def attempts(self, seq: int) -> int:
        state = self._states.get(seq)
        return state.attempts if state is not None else 0


class FecGroups:
    """Partial FEC groups awaiting recovery.

    ``add_data``/``add_parity`` feed arrivals in; :meth:`try_recover`
    returns the one missing ``(slot, payload)`` of a group when exactly
    one data packet is absent and the parity survived."""

    def __init__(self, group_slots: Dict[int, List[int]]):
        #: group id -> ordered slot indices belonging to it
        self._group_slots = group_slots
        self._data: Dict[int, Dict[int, bytes]] = {}
        self._parity: Dict[int, bytes] = {}
        self.recovered = 0

    def add_data(self, group: int, slot: int, payload: bytes) -> None:
        if group >= 0:
            self._data.setdefault(group, {})[slot] = payload

    def add_parity(self, group: int, payload: bytes) -> None:
        if group >= 0:
            self._parity[group] = payload

    def try_recover(self, group: int) -> Optional[Tuple[int, bytes]]:
        if group < 0 or group not in self._parity:
            return None
        slots = self._group_slots.get(group, [])
        have = self._data.get(group, {})
        missing = [s for s in slots if s not in have]
        if len(missing) != 1:
            return None
        payload = xor_parity([self._parity[group]] + [have[s] for s in slots if s in have])
        self.recovered += 1
        have[missing[0]] = payload
        return (missing[0], payload)
