"""Network packetization of a transport stream, with XOR-parity FEC.

One network packet carries one whole 188-byte TS slot (header
included), stamped with a global send sequence number.  Every
``fec_group`` consecutive data packets share one XOR parity packet:
losing any *single* data packet of a group is recoverable from the
surviving ``fec_group - 1`` payloads plus the parity — the classic
RTP-style erasure code, byte-exact by construction (XOR is its own
inverse).  The tail group may be shorter; it still gets a parity
packet as long as it has at least one data packet.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.media.transport import TS_HEADER, TS_PACKET

__all__ = [
    "PACKET_DATA",
    "PACKET_PARITY",
    "NetPacket",
    "xor_parity",
    "packetize",
    "slot_table",
]

PACKET_DATA = 0
PACKET_PARITY = 1


@dataclass(frozen=True)
class NetPacket:
    """One packet on the wire.

    ``seq`` is the global send sequence; ``slot`` is the TS slot index
    for data packets (the first slot of the group for parity packets);
    ``group`` is the FEC group id (-1 when FEC is off).
    """

    seq: int
    kind: int
    slot: int
    group: int
    payload: bytes

    def __post_init__(self) -> None:
        if self.kind not in (PACKET_DATA, PACKET_PARITY):
            raise ValueError(f"bad packet kind {self.kind}")
        if len(self.payload) != TS_PACKET:
            raise ValueError(
                f"payload must be one TS slot ({TS_PACKET} B), got {len(self.payload)}"
            )


def xor_parity(payloads: Sequence[bytes]) -> bytes:
    """XOR of equal-length byte strings (the FEC parity payload)."""
    if not payloads:
        raise ValueError("need at least one payload")
    n = len(payloads[0])
    acc = bytearray(n)
    for p in payloads:
        if len(p) != n:
            raise ValueError("FEC payloads must share one length")
        for i, b in enumerate(p):
            acc[i] ^= b
    return bytes(acc)


def packetize(ts: bytes, fec_group: int) -> List[NetPacket]:
    """Slice a TS into send-ordered packets, parity interleaved.

    Parity follows its group immediately, so a receiver can attempt
    recovery as soon as the group's tail passes — no full-stream
    buffering."""
    if len(ts) % TS_PACKET:
        raise ValueError(f"TS length {len(ts)} is not a whole number of slots")
    if fec_group < 0:
        raise ValueError(f"fec_group must be >= 0, got {fec_group}")
    n_slots = len(ts) // TS_PACKET
    out: List[NetPacket] = []
    seq = 0
    group_payloads: List[bytes] = []
    group_id = 0
    group_first_slot = 0

    def flush_group() -> None:
        nonlocal seq, group_id, group_payloads
        if fec_group and group_payloads:
            out.append(
                NetPacket(seq, PACKET_PARITY, group_first_slot, group_id,
                          xor_parity(group_payloads))
            )
            seq += 1
        group_id += 1
        group_payloads = []

    for slot in range(n_slots):
        payload = ts[slot * TS_PACKET : (slot + 1) * TS_PACKET]
        if fec_group and not group_payloads:
            group_first_slot = slot
        out.append(
            NetPacket(seq, PACKET_DATA, slot, group_id if fec_group else -1, payload)
        )
        seq += 1
        if fec_group:
            group_payloads.append(payload)
            if len(group_payloads) == fec_group:
                flush_group()
    flush_group()
    return out


def slot_table(ts: bytes) -> List[Tuple[int, int, int]]:
    """Per-slot ``(pid, es_offset, payload_len)`` from the TS headers.

    ``es_offset`` is the slot payload's cumulative byte offset within
    its PID's elementary stream — the map that turns lost slots into
    per-stream erasure ranges."""
    if len(ts) % TS_PACKET:
        raise ValueError(f"TS length {len(ts)} is not a whole number of slots")
    positions: Dict[int, int] = {}
    out: List[Tuple[int, int, int]] = []
    for off in range(0, len(ts), TS_PACKET):
        _sync, pid, length = struct.unpack_from("<BHB", ts, off)
        pos = positions.get(pid, 0)
        out.append((pid, pos, length))
        positions[pid] = pos + length
    return out
