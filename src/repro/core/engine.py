"""Engine registry: which component classes assemble a system.

An *engine* is a named bundle of execution-core classes behind the
``EclipseSystem.run()/advance()`` seam.  ``"reference"`` is the
readable, obviously-correct core; ``"fast"`` substitutes the flattened
classes from :mod:`repro.sim.fastengine` and the fast subclasses that
live next to their reference implementations (``FastShell``,
``FastBus``, ``FastMessageFabric``, ``FastCyclicBuffer``) and enables
idle-window compression in the deadlock monitor.

Every fast component is bound by the byte-identity contract documented
in :mod:`repro.sim.fastengine`: same event schedule, same counters,
same exported state at every quiescent boundary.  The registry is the
single point where ``SystemParams.engine`` turns into classes, so an
unknown name fails in :func:`repro.sim.fastengine.resolve_engine` with
the full list of known engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.buffer import CyclicBuffer, FastCyclicBuffer
from repro.core.messages import FastMessageFabric, MessageFabric
from repro.core.shell import FastShell, Shell
from repro.hw.bus import Bus, FastBus
from repro.obs.tracer import SpanTracer
from repro.sim.fastengine import FastSimulator, resolve_engine
from repro.sim.kernel import Simulator
from repro.trace.sampler import Sampler

__all__ = ["EngineComponents", "engine_components"]


@dataclass(frozen=True)
class EngineComponents:
    """The classes (and policies) one engine assembles a system from."""

    name: str
    simulator: type
    shell: type
    bus: type
    fabric: type
    buffer: type
    #: leap over provably-dead idle windows in the deadlock monitor
    #: (see ``EclipseSystem._deadlock_monitor``)
    compress_idle: bool
    #: observer classes, so ``EclipseSystem.attach_sampler`` /
    #: ``attach_tracer`` and ``--sample-interval`` work uniformly on
    #: both engines (a future engine may substitute fast variants;
    #: any substitute is bound by the same byte-identity contract)
    sampler: type = Sampler
    tracer: type = SpanTracer


_REGISTRY = {
    "reference": EngineComponents(
        name="reference",
        simulator=Simulator,
        shell=Shell,
        bus=Bus,
        fabric=MessageFabric,
        buffer=CyclicBuffer,
        compress_idle=False,
    ),
    "fast": EngineComponents(
        name="fast",
        simulator=FastSimulator,
        shell=FastShell,
        bus=FastBus,
        fabric=FastMessageFabric,
        buffer=FastCyclicBuffer,
        compress_idle=True,
    ),
}


def engine_components(name: str) -> EngineComponents:
    """The component bundle for engine ``name`` (validated)."""
    return _REGISTRY[resolve_engine(name)]
