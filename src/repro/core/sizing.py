"""Stream-buffer sizing: the instance architect's allocation tool.

Paper §6: "the architect must balance the flexibility of allocating
buffers with configurable sizes in a centralized memory versus ..." —
and §2.2 sets the rule: a buffer must at least hold the largest
GetSpace request its producer or consumer will ever make (otherwise the
request can *never* be granted), while extra capacity beyond a few
units only buys elasticity.

:func:`plan_buffers` turns per-stream worst-case request sizes into an
allocation plan against a target SRAM, and :func:`apply_plan` stamps
the sizes onto an application graph before ``configure``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.kahn.graph import ApplicationGraph

__all__ = ["BufferPlan", "plan_buffers", "apply_plan"]


def _round_up(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


@dataclass
class BufferPlan:
    """One sizing decision per stream, plus the SRAM fit verdict."""

    #: stream -> allocated bytes (elasticity x worst request, padded)
    sizes: Dict[str, int] = field(default_factory=dict)
    #: stream -> the worst-case request the size is derived from
    worst_requests: Dict[str, int] = field(default_factory=dict)
    total_bytes: int = 0
    sram_size: int = 0
    elasticity: int = 0

    @property
    def fits(self) -> bool:
        return self.total_bytes <= self.sram_size

    def headroom(self) -> int:
        """Free SRAM bytes after the plan (negative if over)."""
        return self.sram_size - self.total_bytes

    def summary(self) -> str:
        lines = [
            f"{'stream':>16} {'worst req':>10} {'allocated':>10}",
        ]
        for name in sorted(self.sizes):
            lines.append(
                f"{name:>16} {self.worst_requests[name]:>10} {self.sizes[name]:>10}"
            )
        verdict = "fits" if self.fits else "DOES NOT FIT"
        lines.append(
            f"total {self.total_bytes} B of {self.sram_size} B SRAM "
            f"({verdict}, headroom {self.headroom()} B)"
        )
        return "\n".join(lines)


def plan_buffers(
    graph: ApplicationGraph,
    worst_requests: Mapping[str, int],
    elasticity: int = 3,
    line_pad: int = 32,
    sram_size: int = 32 * 1024,
) -> BufferPlan:
    """Size every stream of ``graph``.

    ``worst_requests`` maps stream name -> the largest GetSpace either
    endpoint will issue (e.g. the worst packet size).  Streams not
    listed keep their current ``buffer_size`` as the worst request.
    ``elasticity`` multiplies the worst request (≥1; §2.2: a couple of
    units reach asymptotic pipelining); allocations are padded to the
    cache-line size as ``EclipseSystem.configure`` does.
    """
    if elasticity < 1:
        raise ValueError(f"elasticity must be >= 1, got {elasticity}")
    if line_pad < 1:
        raise ValueError(f"line_pad must be >= 1, got {line_pad}")
    graph.validate()
    plan = BufferPlan(sram_size=sram_size, elasticity=elasticity)
    for name, edge in graph.streams.items():
        worst = int(worst_requests.get(name, edge.buffer_size))
        if worst < 1:
            raise ValueError(f"stream {name!r}: worst request must be >= 1")
        size = _round_up(elasticity * worst, line_pad)
        plan.worst_requests[name] = worst
        plan.sizes[name] = size
        plan.total_bytes += size
    return plan


def apply_plan(plan: BufferPlan, graph: ApplicationGraph) -> ApplicationGraph:
    """Stamp the planned sizes onto the graph's streams (in place)."""
    for name, size in plan.sizes.items():
        edge = graph.streams.get(name)
        if edge is None:
            raise KeyError(f"graph has no stream {name!r}")
        edge.buffer_size = size
    return graph
