"""Architecture template parameters.

The Eclipse template is parameterized (paper §2.3: "memory size, bus
width, number and type of (co)processors"); §7 explores cache size,
prefetching, bus latency and width through a simulator setup file.
These dataclasses are that setup file.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Literal, Optional

__all__ = ["ShellParams", "CoprocessorSpec", "SystemParams"]


def _from_flat_dict(cls, data: dict):
    """Rebuild a flat dataclass, rejecting unknown keys with a clear
    message (the JSON run reports round-trip through this)."""
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown {cls.__name__} keys: {sorted(unknown)}")
    return cls(**data)


@dataclass
class ShellParams:
    """Per-shell template parameters (paper §3.1: "shell instances with
    coprocessor-specific parameter settings are derived from this
    generic template")."""

    #: cache line size in bytes (read and write caches)
    cache_line: int = 32
    #: read cache capacity in lines
    read_cache_lines: int = 16
    #: write cache capacity in lines
    write_cache_lines: int = 8
    #: lines fetched ahead on GetSpace/Read (0 disables; paper §5.2:
    #: "the shell also initiates stream prefetches upon local GetSpace
    #: and Read requests")
    prefetch_lines: int = 2
    #: shell response latency for GetSpace
    getspace_cycles: int = 1
    #: shell response latency for PutSpace (excl. flush/message time)
    putspace_cycles: int = 1
    #: shell response latency for GetTask (the HW scheduler's decision)
    gettask_cycles: int = 2
    #: coprocessor-shell datapath width in bytes (paper §3.1 names the
    #: read/write interface width as a per-coprocessor parameter)
    port_width: int = 16
    #: the §5.3 'best guess': skip tasks with an outstanding denied
    #: GetSpace.  False gives the naive round-robin baseline that
    #: busy-polls blocked tasks (EXP-A5 ablation).
    best_guess_scheduling: bool = True

    def __post_init__(self) -> None:
        if self.cache_line < 1 or (self.cache_line & (self.cache_line - 1)) != 0:
            raise ValueError(f"cache_line must be a power of two, got {self.cache_line}")
        for name in ("read_cache_lines", "write_cache_lines", "port_width"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        for name in ("prefetch_lines", "getspace_cycles", "putspace_cycles", "gettask_cycles"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def with_(self, **kw) -> "ShellParams":
        """Copy with overrides (sweep helper)."""
        return replace(self, **kw)

    def to_dict(self) -> dict:
        """JSON-ready form (run-report / RunSpec serialization)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ShellParams":
        return _from_flat_dict(cls, data)


@dataclass
class CoprocessorSpec:
    """One computation unit: a hardwired coprocessor or the DSP-CPU.

    ``compute_factor`` scales every kernel ComputeOp — software tasks on
    the media processor run the same kernels slower (paper §3: functions
    "specific for one application only ... executed in software").
    """

    name: str
    is_software: bool = False
    compute_factor: float = 1.0
    shell: ShellParams = field(default_factory=ShellParams)

    def __post_init__(self) -> None:
        if self.compute_factor <= 0:
            raise ValueError("compute_factor must be > 0")

    def to_dict(self) -> dict:
        """JSON-ready form (nested shell serialized too)."""
        return {
            "name": self.name,
            "is_software": self.is_software,
            "compute_factor": self.compute_factor,
            "shell": self.shell.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoprocessorSpec":
        data = dict(data)
        shell = data.pop("shell", None)
        spec = _from_flat_dict(cls, data)
        if shell is not None:
            spec.shell = ShellParams.from_dict(shell)
        return spec


@dataclass
class SystemParams:
    """Instance-wide parameters (the §7 simulator setup file)."""

    #: on-chip SRAM size in bytes (first instance: 32 kB, §6)
    sram_size: int = 32 * 1024
    #: data bus width in bytes (first instance: 128 bits = 16 B, §6)
    bus_width: int = 16
    #: fixed cycles per bus transaction (arbitration + address phase)
    bus_setup_latency: int = 2
    #: putspace/eos message latency between shells (paper Figure 7)
    msg_latency: int = 4
    #: extra random per-message delay in [0, msg_jitter] cycles —
    #: failure injection; 0 models the real FIFO fabric
    msg_jitter: int = 0
    #: seed for the jitter randomness (runs stay reproducible)
    msg_seed: int = 0
    #: off-chip port width in bytes
    dram_width: int = 8
    #: off-chip access latency in cycles
    dram_latency: int = 20
    #: synchronization implementation: Eclipse's distributed shells, or
    #: the centralized CPU-interrupt baseline the paper argues against
    #: (§2.3: "a coprocessor architecture where a single CPU
    #: synchronizes all coprocessors is not scalable")
    sync_mode: Literal["distributed", "centralized"] = "distributed"
    #: CPU cycles consumed per sync operation in centralized mode
    #: (interrupt entry + handler + table update)
    central_sync_cycles: int = 40
    #: cache coherency: Eclipse's explicit GetSpace/PutSpace-driven
    #: mechanism, or a bus-snooping cost model baseline (§5.2)
    coherency: Literal["explicit", "snooping"] = "explicit"
    #: per-shell snoop-port occupancy added to every memory transaction
    #: in snooping mode
    snoop_cycles_per_shell: int = 1
    #: shell watchdog: re-send cumulative space credits (and EOS for
    #: finished tasks) after this many cycles without local progress;
    #: None disables the watchdog (recovery off)
    watchdog_timeout: Optional[int] = None
    #: multiplicative backoff applied to the watchdog interval after
    #: each fire without progress
    watchdog_backoff: int = 2
    #: cap on the backed-off interval, as a multiple of the timeout
    watchdog_max_backoff: int = 16
    #: deadlock detector: check global progress every this many cycles
    deadlock_check_interval: int = 10_000
    #: consecutive zero-progress checks before declaring deadlock
    deadlock_patience: int = 5
    #: run the deadlock detector; None = auto (on when faults are
    #: injected or the watchdog is enabled)
    deadlock_detection: Optional[bool] = None
    #: execution core: "reference" (readable, obviously correct) or
    #: "fast" (flattened hot paths + idle-window compression, proven
    #: byte-identical by tests/sim/test_fastengine_equivalence.py).
    #: See docs/fast-engine.md.
    engine: str = "reference"
    #: observability tier: "off" / "counters" / "series" / "full" —
    #: how much a run records (byte histories, fill statistics,
    #: sampler series, op logs, span traces).  "full" is byte-identical
    #: to the pre-contract behaviour and stays the default; lower
    #: levels shed recording cost without changing the event schedule.
    #: See docs/observability.md.
    obs_level: str = "full"
    #: auto-attach a Sampler at this interval during configure()
    #: (None = no periodic sampling; requires obs_level >= "series")
    sample_interval: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sram_size < 1:
            raise ValueError("sram_size must be >= 1")
        if self.bus_width < 1:
            raise ValueError("bus_width must be >= 1")
        for name in (
            "bus_setup_latency",
            "msg_latency",
            "msg_jitter",
            "dram_latency",
            "central_sync_cycles",
            "snoop_cycles_per_shell",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.watchdog_timeout is not None and self.watchdog_timeout < 1:
            raise ValueError(f"watchdog_timeout must be >= 1, got {self.watchdog_timeout}")
        if self.watchdog_backoff < 1:
            raise ValueError(f"watchdog_backoff must be >= 1, got {self.watchdog_backoff}")
        if self.watchdog_max_backoff < 1:
            raise ValueError(f"watchdog_max_backoff must be >= 1, got {self.watchdog_max_backoff}")
        if self.deadlock_check_interval < 1:
            raise ValueError(
                f"deadlock_check_interval must be >= 1, got {self.deadlock_check_interval}"
            )
        if self.deadlock_patience < 1:
            raise ValueError(f"deadlock_patience must be >= 1, got {self.deadlock_patience}")
        if self.sync_mode not in ("distributed", "centralized"):
            raise ValueError(f"unknown sync_mode {self.sync_mode!r}")
        if self.coherency not in ("explicit", "snooping"):
            raise ValueError(f"unknown coherency {self.coherency!r}")
        # function-level import: config must stay importable before the
        # engine modules (no cycle through core.engine)
        from repro.sim.fastengine import resolve_engine

        resolve_engine(self.engine)
        from repro.obs.level import resolve_level

        resolve_level(self.obs_level)
        if self.sample_interval is not None:
            if self.sample_interval < 1:
                raise ValueError(
                    f"sample_interval must be >= 1, got {self.sample_interval}"
                )
            from repro.obs.level import ObservabilityLevel

            if not ObservabilityLevel.parse(self.obs_level).series:
                raise ValueError(
                    f"sample_interval={self.sample_interval} needs time series, "
                    f"but obs_level={self.obs_level!r} disables them "
                    "(use 'series' or 'full')"
                )

    def with_(self, **kw) -> "SystemParams":
        """Copy with overrides (sweep helper)."""
        return replace(self, **kw)

    def to_dict(self) -> dict:
        """JSON-ready form (run-report / RunSpec serialization)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SystemParams":
        return _from_flat_dict(cls, data)
