"""Weighted round-robin task scheduling with best-guess selection.

Paper §5.3 (and [13], Rutten et al., Euromicro 2002): scheduling is
distributed — each shell has its own scheduler — and implemented in
hardware, so the algorithm must be simple.  Eclipse uses weighted
round-robin: each task has a cycle *budget* it may continuously
execute; the scheduler cannot know whether a task can complete a step,
so it makes a 'best guess' from locally available information — the
stream-table space values and previously denied GetSpace requests
(tracked as the task rows' ``blocked_on`` sets).
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.core.task_table import TaskRow, TaskTable

__all__ = ["WeightedRoundRobinScheduler", "ScheduleVerdict"]


class ScheduleVerdict(enum.Enum):
    """What the shell should do with a GetTask inquiry."""

    RUN = "run"  # a task was selected
    WAIT = "wait"  # no task runnable now; wait for a message
    DONE = "done"  # all tasks finished; the coprocessor can stop


class WeightedRoundRobinScheduler:
    """Per-shell scheduler over a :class:`TaskTable`.

    ``select`` answers a GetTask inquiry: charge ``elapsed`` cycles to
    the current task's budget, then pick.  The current task continues
    while it is runnable and has budget left — this is the *guaranteed
    minimum continuous execution* semantics of the paper; otherwise the
    round-robin pointer advances to the next runnable task, whose
    budget is recharged.
    """

    def __init__(self, table: TaskTable, best_guess: bool = True):
        self.table = table
        #: paper §5.3 best-guess selection; False = naive round-robin
        #: that keeps dispatching blocked tasks (their steps abort)
        self.best_guess = best_guess
        self._current: Optional[int] = None
        self.task_switches = 0
        self.budget_exhaustions = 0

    @property
    def current(self) -> Optional[int]:
        return self._current

    def select(self, elapsed: int) -> Tuple[ScheduleVerdict, Optional[TaskRow]]:
        """One scheduling decision (pure; the shell charges the time)."""
        n = len(self.table)
        if n == 0 or self.table.all_finished():
            return ScheduleVerdict.DONE, None

        def dispatchable(row: TaskRow) -> bool:
            if self.best_guess:
                return row.runnable
            return row.enabled and not row.finished

        cur = self._current
        if cur is not None:
            row = self.table[cur]
            row.remaining -= elapsed
            if dispatchable(row) and row.remaining > 0 and (self.best_guess or row.runnable):
                # naive mode still yields the slot when the task is
                # blocked, otherwise one blocked task would spin forever
                return ScheduleVerdict.RUN, row
            if row.remaining <= 0 and not row.finished:
                self.budget_exhaustions += 1

        # round-robin scan starting after the current task
        start = (cur + 1) if cur is not None else 0
        for i in range(n):
            cand = self.table[(start + i) % n]
            if dispatchable(cand):
                if cand.task_id != cur:
                    self.task_switches += 1
                cand.remaining = cand.budget
                self._current = cand.task_id
                return ScheduleVerdict.RUN, cand

        # Nothing runnable; current keeps its slot so an unblock resumes
        # it with a fresh budget via the scan above.
        return ScheduleVerdict.WAIT, None

    def export_state(self) -> dict:
        """JSON-safe view of the scheduling position and counters."""
        return {
            "best_guess": self.best_guess,
            "current": self._current,
            "task_switches": self.task_switches,
            "budget_exhaustions": self.budget_exhaustions,
        }
