"""The coprocessor shell (paper Sections 3.1, 5).

The shell is the per-coprocessor hardware block that "absorbs many
system-level issues, such as multi-tasking, stream synchronization, and
data transport", presenting the five-primitive task-level interface to
its coprocessor and a uniform interface to the communication hardware.

One :class:`Shell` instance owns:

* a stream table (:mod:`repro.core.stream_table`) — one row per access
  point, with the local *space* field answered by GetSpace and updated
  by putspace messages (Figure 7);
* a task table and weighted round-robin scheduler (§5.3);
* a read cache and a write cache with explicit coherency driven by
  GetSpace (invalidate the window extension) and PutSpace (flush the
  committed range, then send the message) — §5.2's three rules;
* prefetching on GetSpace/Read;
* measurement counters (§5.4).

All primitive implementations are generator methods ``yield from``-ed
inside the coprocessor's process, which serializes them — the paper
makes the coprocessor "responsible for serializing simultaneous
requests from different task ports".
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.core.cache import ReadCache, WriteCache
from repro.core.config import ShellParams
from repro.core.messages import EosMsg, PutSpaceMsg
from repro.core.scheduler import ScheduleVerdict, WeightedRoundRobinScheduler
from repro.core.stream_table import StreamRow, StreamTable
from repro.core.task_table import TaskRow, TaskTable
from repro.kahn.kernel import Space
from repro.sim import Event, Simulator, TimeWeightedStat

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import EclipseSystem

__all__ = ["Shell", "FastShell", "ShellProtocolError"]


class ShellProtocolError(RuntimeError):
    """A kernel violated the task-level-interface contract (e.g. read
    outside its granted window) — always a bug in the kernel."""


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class Shell:
    """Generic infrastructure instance serving one coprocessor."""

    def __init__(self, sim: Simulator, name: str, params: ShellParams, system: "EclipseSystem"):
        self.sim = sim
        self.name = name
        self.params = params
        self.system = system
        self.stream_table = StreamTable()
        self.task_table = TaskTable()
        self.scheduler = WeightedRoundRobinScheduler(
            self.task_table, best_guess=params.best_guess_scheduling
        )
        self.read_cache = ReadCache(params.read_cache_lines, params.cache_line)
        self.write_cache = WriteCache(params.write_cache_lines, params.cache_line)
        #: line_addr -> fill-completion event, for fetch deduplication
        self._inflight: Dict[int, Event] = {}
        #: read-cache lines whose fill was corrupted in flight; the
        #: parity check in :meth:`_ensure_line` catches them at use time
        self._poisoned: set = set()
        self._wake = Event(sim)
        # ----- shell-level counters -----
        self.getspace_ops = 0
        self.putspace_ops = 0
        self.gettask_ops = 0
        self.read_hits = 0
        self.read_misses = 0
        self.idle_wait_cycles = 0
        # ----- robustness counters (fault injection & recovery) -----
        self.messages_delivered = 0
        self.credits_applied = 0
        self.watchdog_fires = 0
        self.retries_sent = 0
        self.recoveries = 0
        self.corruptions_detected = 0

    # ------------------------------------------------------------------
    # configuration (the CPU programming the tables over the PI-bus)
    # ------------------------------------------------------------------
    def add_task(self, row: TaskRow) -> int:
        return self.task_table.add(row)

    def add_stream_row(self, row: StreamRow) -> int:
        # fill statistics are pure observation (§5.4 counters): below
        # obs_level="counters" the stat is simply never created, and
        # every consumer of fill_stat already None-guards
        if not row.is_producer and self.system.obs.fill_stats:
            row.fill_stat = TimeWeightedStat(self.sim, initial=0.0)
        return self.stream_table.add(row)

    # ------------------------------------------------------------------
    # wake broadcast
    # ------------------------------------------------------------------
    def _notify(self) -> None:
        ev, self._wake = self._wake, Event(self.sim)
        if not ev.triggered:
            ev.succeed()

    # ------------------------------------------------------------------
    # primitive: GetTask
    # ------------------------------------------------------------------
    def get_task(self, elapsed: int) -> Generator:
        """Answer a GetTask inquiry; returns a TaskRow or None (done).

        Blocks (simulated) while no task is runnable — the coprocessor
        idles until a putspace/eos message makes one runnable again.
        """
        self.gettask_ops += 1
        yield self.sim.timeout(self.params.gettask_cycles)
        while True:
            verdict, row = self.scheduler.select(elapsed)
            elapsed = 0  # charged exactly once
            if verdict is ScheduleVerdict.DONE:
                return None
            if verdict is ScheduleVerdict.RUN:
                return row
            t0 = self.sim.now
            yield self._wake
            self.idle_wait_cycles += self.sim.now - t0

    # ------------------------------------------------------------------
    # primitive: GetSpace
    # ------------------------------------------------------------------
    def get_space(self, task: TaskRow, port: str, n_bytes: int) -> Generator:
        self.getspace_ops += 1
        yield self.sim.timeout(self.params.getspace_cycles)
        if self.system._central_cpu is not None:
            yield from self.system.central_sync_cost()
        row_id = task.port_rows[port]
        row = self.stream_table[row_id]
        if n_bytes > row.buffer.size:
            # can never be granted: a configuration error, not a wait
            raise ShellProtocolError(
                f"{self.name}/{task.name}: GetSpace({port!r}, {n_bytes}) exceeds "
                f"buffer size {row.buffer.size} of stream {row.stream!r}"
            )
        avail = row.available()
        if n_bytes <= avail:
            row.granted_getspace += 1
            if n_bytes > row.granted:
                if not row.is_producer:
                    # coherency rule 2: invalidate the window extension
                    ext = row.buffer.lines(
                        row.position + row.granted,
                        n_bytes - row.granted,
                        self.params.cache_line,
                    )
                    self.read_cache.invalidate(ext)
                    self._poisoned.difference_update(ext)
                row.granted = n_bytes
            if not row.is_producer and self.params.prefetch_lines:
                self._spawn_prefetch(row, row.position, row.granted)
            return Space(granted=True, available=avail)
        row.denied_getspace += 1
        if not row.is_producer and row.at_eos():
            return Space(granted=False, eos=True, available=avail)
        task.blocked_on.add(row_id)
        return Space(granted=False, available=avail)

    # ------------------------------------------------------------------
    # primitive: Read
    # ------------------------------------------------------------------
    def read(self, task: TaskRow, port: str, offset: int, n_bytes: int) -> Generator:
        row = self.stream_table[task.port_rows[port]]
        if row.is_producer:
            raise ShellProtocolError(f"{self.name}/{task.name}: Read on output port {port!r}")
        if offset + n_bytes > row.granted:
            raise ShellProtocolError(
                f"{self.name}/{task.name}: Read [{offset}:{offset + n_bytes}) outside "
                f"granted window of {row.granted} B on {port!r}"
            )
        if n_bytes == 0:
            return b""
        # datapath transfer time coprocessor<->shell
        yield self.sim.timeout(_ceil_div(n_bytes, self.params.port_width))
        t0 = self.sim.now
        out = bytearray(n_bytes)
        line_size = self.params.cache_line
        res_off = 0
        for seg_addr, seg_len in row.buffer.segments(row.position + offset, n_bytes):
            pos = 0
            while pos < seg_len:
                addr = seg_addr + pos
                line_addr = addr - addr % line_size
                data = yield from self._ensure_line(line_addr)
                lo = addr - line_addr
                take = min(seg_len - pos, line_size - lo)
                out[res_off + pos : res_off + pos + take] = data[lo : lo + take]
                pos += take
            res_off += seg_len
        task.stall_cycles += self.sim.now - t0
        if self.params.prefetch_lines:
            end = offset + n_bytes
            ahead = min(row.granted - end, self.params.prefetch_lines * line_size)
            if ahead > 0:
                self._spawn_prefetch(row, row.position + end, ahead)
        return bytes(out)

    def _ensure_line(self, line_addr: int) -> Generator:
        """Yield until ``line_addr`` is in the read cache; returns data."""
        first_probe = True
        while True:
            data = self.read_cache.lookup(line_addr)
            if data is not None and line_addr in self._poisoned:
                # parity check catches the corrupted fill: drop the
                # line and refetch — transient faults never reach the
                # coprocessor
                self.corruptions_detected += 1
                self.read_cache.invalidate((line_addr,))
                self._poisoned.discard(line_addr)
                data = None
            if data is not None:
                if first_probe:
                    self.read_hits += 1
                    self.read_cache.stats.hits += 1
                return data
            if first_probe:
                self.read_misses += 1
                self.read_cache.stats.misses += 1
                first_probe = False
            pending = self._inflight.get(line_addr)
            if pending is not None:
                yield pending  # share the in-flight fill
                continue
            yield from self._fetch_line(line_addr, prefetch=False)

    def _fetch_line(self, line_addr: int, prefetch: bool) -> Generator:
        ev = Event(self.sim)
        self._inflight[line_addr] = ev
        try:
            yield from self.system.read_bus.transfer(
                self.params.cache_line,
                master=self.name,
                priority=1 if prefetch else 0,
            )
            data = self.system.sram.read(line_addr, self.params.cache_line)
            corrupted = self.system.fault_corrupt_line(data)
            if corrupted is not None:
                data = corrupted
                self._poisoned.add(line_addr)
            else:
                self._poisoned.discard(line_addr)
            self.read_cache.fill(line_addr, data, prefetch=prefetch)
        finally:
            del self._inflight[line_addr]
            ev.succeed()

    def _spawn_prefetch(self, row: StreamRow, position: int, span: int) -> None:
        """Background-fetch up to ``prefetch_lines`` lines of
        [position, position+span) that are neither cached nor in
        flight.  Lower bus priority than demand fetches."""
        line_size = self.params.cache_line
        span = min(span, self.params.prefetch_lines * line_size)
        if span <= 0:
            return
        todo = [
            line
            for line in row.buffer.lines(position, span, line_size)
            if not self.read_cache.contains(line) and line not in self._inflight
        ][: self.params.prefetch_lines]
        if not todo:
            return

        def run(shell: "Shell", lines: List[int]):
            for line in lines:
                if shell.read_cache.contains(line) or line in shell._inflight:
                    continue
                yield from shell._fetch_line(line, prefetch=True)

        self.sim.process(run(self, todo))

    # ------------------------------------------------------------------
    # primitive: Write
    # ------------------------------------------------------------------
    def write(self, task: TaskRow, port: str, offset: int, data: bytes) -> Generator:
        row = self.stream_table[task.port_rows[port]]
        if not row.is_producer:
            raise ShellProtocolError(f"{self.name}/{task.name}: Write on input port {port!r}")
        if offset + len(data) > row.granted:
            raise ShellProtocolError(
                f"{self.name}/{task.name}: Write [{offset}:{offset + len(data)}) outside "
                f"granted window of {row.granted} B on {port!r}"
            )
        if not data:
            return
        yield self.sim.timeout(_ceil_div(len(data), self.params.port_width))
        pos = 0
        for seg_addr, seg_len in row.buffer.segments(row.position + offset, len(data)):
            evicted = self.write_cache.write(seg_addr, data[pos : pos + seg_len])
            pos += seg_len
            for line_addr, line_data, mask in evicted:
                yield from self._flush_line(line_addr, line_data, mask)

    def _flush_line(self, line_addr: int, data: bytes, mask: bytes) -> Generator:
        yield from self.system.write_bus.transfer(self.params.cache_line, master=self.name)
        self.system.sram.write_masked(line_addr, data, mask)

    # ------------------------------------------------------------------
    # primitive: PutSpace
    # ------------------------------------------------------------------
    def put_space(self, task: TaskRow, port: str, n_bytes: int) -> Generator:
        self.putspace_ops += 1
        yield self.sim.timeout(self.params.putspace_cycles)
        if self.system._central_cpu is not None:
            yield from self.system.central_sync_cost()
        row = self.stream_table[task.port_rows[port]]
        if n_bytes > row.granted:
            raise ShellProtocolError(
                f"{self.name}/{task.name}: PutSpace({port!r}, {n_bytes}) exceeds "
                f"granted window of {row.granted} B"
            )
        if n_bytes == 0:
            return
        if row.is_producer:
            # coherency rule 3: flush the committed range, then message
            for seg_addr, seg_len in row.buffer.segments(row.position, n_bytes):
                for line_addr, line_data, mask in self.write_cache.flush_range(seg_addr, seg_len):
                    yield from self._flush_line(line_addr, line_data, mask)
            self.system.record_committed(row, n_bytes)
        row.commit(n_bytes)
        for remote in row.remotes:
            row.putspace_messages_sent += 1
            # the cumulative position makes delivery idempotent: the
            # receiver credits max(0, cumulative - already_applied)
            self.system.fabric.send(
                remote.shell,
                PutSpaceMsg(remote.row_id, remote.arm, n_bytes, cumulative=row.position),
            )

    # ------------------------------------------------------------------
    # task completion
    # ------------------------------------------------------------------
    def finish_task(self, task: TaskRow) -> None:
        """Mark the task finished and propagate end-of-stream to the
        consumers of its output streams."""
        task.finished = True
        for port, row_id in task.port_rows.items():
            row = self.stream_table[row_id]
            if row.is_producer:
                for remote in row.remotes:
                    self.system.fabric.send(
                        remote.shell,
                        EosMsg(remote.row_id, remote.arm, final_position=row.position),
                    )
        self.system.task_finished(task)
        self._notify()

    # ------------------------------------------------------------------
    # message delivery (called by the fabric at arrival time)
    # ------------------------------------------------------------------
    def deliver(self, msg) -> None:
        self.messages_delivered += 1
        row = self.stream_table[msg.row_id]
        if isinstance(msg, PutSpaceMsg):
            delta = row.apply_credit(msg.arm, msg.n_bytes, msg.cumulative)
            self.credits_applied += delta
            if delta and not row.is_producer and row.fill_stat is not None:
                row.fill_stat.add(delta)
            if delta and msg.retry:
                self.recoveries += 1
        elif isinstance(msg, EosMsg):
            if msg.retry and row.eos_position is None:
                self.recoveries += 1
            row.eos_position = msg.final_position
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown message {msg!r}")
        self.task_table.unblock(msg.row_id)
        self._notify()

    # ------------------------------------------------------------------
    # watchdog (recovery machinery for lossy fabrics)
    # ------------------------------------------------------------------
    def _progress_snapshot(self) -> Tuple[int, int, int]:
        """Monotone local-progress fingerprint: stream positions,
        credits applied, tasks finished.  Deliberately excludes raw
        message arrivals so idempotent retries with no effect do not
        mask a stall."""
        return (
            sum(row.position for row in self.stream_table),
            self.credits_applied,
            sum(1 for t in self.task_table if t.finished),
        )

    def _resend_credits(self) -> None:
        """Re-send every row's cumulative credit (and EOS for finished
        producer tasks) to its remotes.  Idempotent on arrival, so
        over-sending is merely wasted bandwidth."""
        for row in self.stream_table:
            for remote in row.remotes:
                self.retries_sent += 1
                self.system.fabric.send(
                    remote.shell,
                    PutSpaceMsg(
                        remote.row_id, remote.arm, 0, cumulative=row.position, retry=True
                    ),
                )
        for task in self.task_table:
            if not task.finished:
                continue
            for row_id in task.port_rows.values():
                row = self.stream_table[row_id]
                if not row.is_producer:
                    continue
                for remote in row.remotes:
                    self.retries_sent += 1
                    self.system.fabric.send(
                        remote.shell,
                        EosMsg(
                            remote.row_id,
                            remote.arm,
                            final_position=row.position,
                            retry=True,
                        ),
                    )

    def watchdog_run(self, timeout: int, backoff: int, max_backoff: int) -> Generator:
        """Watchdog process: after ``timeout`` cycles without local
        progress, re-send space credits with exponential backoff
        (capped at ``timeout * max_backoff``).  Exits once the whole
        system completed."""
        from repro.core.backoff import ExponentialBackoff

        policy = ExponentialBackoff(timeout, backoff, timeout * max_backoff)
        last = self._progress_snapshot()
        while not self.system.all_finished():
            yield self.sim.timeout(policy.current)
            if self.system.all_finished():
                return
            cur = self._progress_snapshot()
            if cur != last:
                last = cur
                policy.reset()
                continue
            self.watchdog_fires += 1
            self._resend_credits()
            policy.escalate()

    # ------------------------------------------------------------------
    # state export (snapshots, invariant monitors)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """JSON-safe view of the shell's full synchronization state."""
        return {
            "name": self.name,
            "streams": self.stream_table.export_state(),
            "tasks": self.task_table.export_state(),
            "scheduler": self.scheduler.export_state(),
            "read_cache": self.read_cache.export_state(),
            "write_cache": self.write_cache.export_state(),
            "poisoned": sorted(self._poisoned),
            "inflight_lines": sorted(self._inflight),
            "counters": {
                "getspace_ops": self.getspace_ops,
                "putspace_ops": self.putspace_ops,
                "gettask_ops": self.gettask_ops,
                "read_hits": self.read_hits,
                "read_misses": self.read_misses,
                "idle_wait_cycles": self.idle_wait_cycles,
                "messages_delivered": self.messages_delivered,
                "credits_applied": self.credits_applied,
                "watchdog_fires": self.watchdog_fires,
                "retries_sent": self.retries_sent,
                "recoveries": self.recoveries,
                "corruptions_detected": self.corruptions_detected,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Shell {self.name!r}: {len(self.task_table)} tasks, {len(self.stream_table)} rows>"


class FastShell(Shell):
    """:class:`Shell` with the read-hit path inlined (fast engine).

    Read is the hottest primitive by far; in the common case every
    touched line is cached and :meth:`Shell._ensure_line` is a pure
    bookkeeping call.  This subclass probes the cache dictionary
    directly and only falls back to ``_ensure_line`` (yield machinery,
    miss accounting, poison handling, fill sharing) when the probe
    fails or the line is poisoned.  Counter accounting is identical:
    a first-probe hit bumps ``read_hits``/``stats.hits`` exactly as the
    reference does, and the fallback path re-runs the same first-probe
    logic the reference would.

    Everything else (GetSpace/PutSpace/GetTask, coherency, watchdog) is
    inherited unchanged — those methods *are* the specification, and
    the OpLog tracer patches them per instance, which keeps working
    because only ``read`` is overridden here.
    """

    def read(self, task: TaskRow, port: str, offset: int, n_bytes: int) -> Generator:
        row = self.stream_table[task.port_rows[port]]
        if row.is_producer:
            raise ShellProtocolError(f"{self.name}/{task.name}: Read on output port {port!r}")
        if offset + n_bytes > row.granted:
            raise ShellProtocolError(
                f"{self.name}/{task.name}: Read [{offset}:{offset + n_bytes}) outside "
                f"granted window of {row.granted} B on {port!r}"
            )
        if n_bytes == 0:
            return b""
        yield self.sim.timeout(_ceil_div(n_bytes, self.params.port_width))
        t0 = self.sim.now
        out = bytearray(n_bytes)
        line_size = self.params.cache_line
        cache = self.read_cache
        lines = cache._lines
        poisoned = self._poisoned
        res_off = 0
        for seg_addr, seg_len in row.buffer.segments(row.position + offset, n_bytes):
            pos = 0
            while pos < seg_len:
                addr = seg_addr + pos
                line_addr = addr - addr % line_size
                data = lines.get(line_addr)
                if data is not None and line_addr not in poisoned:
                    # inline cache hit: same LRU promotion + counters
                    # as the reference's lookup()/first-probe path
                    lines.move_to_end(line_addr)
                    self.read_hits += 1
                    cache.stats.hits += 1
                else:
                    data = yield from self._ensure_line(line_addr)
                lo = addr - line_addr
                take = min(seg_len - pos, line_size - lo)
                out[res_off + pos : res_off + pos + take] = data[lo : lo + take]
                pos += take
            res_off += seg_len
        task.stall_cycles += self.sim.now - t0
        if self.params.prefetch_lines:
            end = offset + n_bytes
            ahead = min(row.granted - end, self.params.prefetch_lines * line_size)
            if ahead > 0:
                self._spawn_prefetch(row, row.position + end, ahead)
        return bytes(out)
