"""Inter-shell synchronization messages (paper Figure 7).

"When the shell of coprocessor A receives a PutSpace request, it
locally decrements its space field ... and sends a 'putspace' message
to the shell of coprocessor B.  This remote shell ... increments its
space field upon reception."

The fabric delivers messages after a fixed latency.  Delivery order
between a fixed (source, destination) pair is FIFO — constant latency
plus the kernel's deterministic tie-breaking guarantee it — which is
what makes flush-before-putspace ordering (coherency rule 3) and
eos-after-final-putspace sound.

Robustness: every message the shells emit carries the sender's
*cumulative* stream position (a monotone absolute value) in addition
to the classic delta.  Receivers apply the max of what they knew and
what the message claims (see :meth:`repro.core.stream_table.StreamRow.
apply_credit`), which makes delivery idempotent — duplicates and
stale reorderings are no-ops, and any later message (including a
watchdog retry) heals an earlier drop.  A :class:`~repro.sim.faults.
FaultInjector` can be attached to the fabric to exercise exactly
those failure modes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.sim import Event, FaultInjector, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.shell import Shell

__all__ = ["PutSpaceMsg", "EosMsg", "MessageFabric", "FastMessageFabric"]


@dataclass(frozen=True)
class PutSpaceMsg:
    """Space increment for the remote access point.

    ``row_id``/``arm`` address the destination shell's stream-table row
    (and, for producer rows, which consumer arm's room to credit).

    ``cumulative`` is the sender's absolute committed position after
    this commit.  When present, the receiver credits the *difference*
    between it and its own accounting instead of trusting ``n_bytes``
    — the idempotent/monotonic application that makes drops,
    duplicates and reordering survivable.  ``None`` keeps the legacy
    pure-delta semantics (used by low-level unit tests).

    ``retry`` marks watchdog re-sends so receivers can count actual
    recoveries (a retry whose credit lands is a healed loss).
    """

    row_id: int
    arm: int
    n_bytes: int
    cumulative: Optional[int] = None
    retry: bool = False


@dataclass(frozen=True)
class EosMsg:
    """The producing task finished; no more data will ever arrive.

    ``final_position`` is the producer's total committed byte count.
    Carrying it makes end-of-stream robust against message reordering:
    the consumer only treats the stream as exhausted once its local
    accounting (`position + space`) has caught up with the final
    position, so an EOS that overtakes in-flight putspace messages can
    never cause data loss.  Setting an absolute position is also
    naturally idempotent, so duplicated (or watchdog re-sent) EOS
    messages are harmless.
    """

    row_id: int
    arm: int = 0
    final_position: int = 0
    retry: bool = False


class MessageFabric:
    """Message delivery between shells: fixed latency, plus optional
    seeded jitter and an optional fault injector.

    With ``jitter=0`` and no injector (the hardware model) delivery
    order between a fixed (source, destination) pair is FIFO.  With
    jitter, putspace messages may overtake each other — which is safe,
    because space increments commute and EOS finality is position-based
    (see :class:`EosMsg`).  With an injector, messages may additionally
    be dropped or duplicated; the cumulative-credit protocol plus the
    shell watchdog keep that survivable too."""

    def __init__(
        self,
        sim: Simulator,
        latency: int = 4,
        jitter: int = 0,
        seed: int = 0,
        injector: Optional[FaultInjector] = None,
    ):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.sim = sim
        self.latency = latency
        self.jitter = jitter
        self.injector = injector
        self._rng = __import__("random").Random(seed)
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_signalled = 0
        self._next_send_id = 0
        self._inflight: Dict[int, Dict[str, Any]] = {}

    def send(self, dest: "Shell", msg) -> None:
        """Schedule delivery of ``msg`` to ``dest`` (possibly dropped,
        duplicated or delayed by the attached fault injector)."""
        self.messages_sent += 1
        if isinstance(msg, PutSpaceMsg):
            self.bytes_signalled += msg.n_bytes
        delay = self.latency
        if self.jitter:
            delay += self._rng.randrange(self.jitter + 1)
        extra_delays = [0]
        if self.injector is not None:
            extra_delays = self.injector.plan_message(msg)
            if not extra_delays:
                self.messages_dropped += 1
                return
        for extra in extra_delays:
            self._next_send_id += 1
            send_id = self._next_send_id
            self._inflight[send_id] = {
                "due": self.sim.now + delay + extra,
                "dest": dest.name,
                "kind": type(msg).__name__,
                "fields": asdict(msg),
            }
            ev = self.sim.event()
            ev.add_callback(lambda _ev, m=msg, i=send_id: self._deliver(dest, m, i))
            ev.succeed(None, delay=delay + extra)

    def _deliver(self, dest: "Shell", msg, send_id: Optional[int] = None) -> None:
        if send_id is not None:
            self._inflight.pop(send_id, None)
        self.messages_delivered += 1
        dest.deliver(msg)

    def inflight(self) -> List[Dict[str, Any]]:
        """Messages sent but not yet delivered, in send order."""
        return [dict(self._inflight[i], send_id=i) for i in sorted(self._inflight)]

    def export_state(self) -> Dict[str, Any]:
        """JSON-safe view of fabric state for snapshots and monitors."""
        return {
            "latency": self.latency,
            "jitter": self.jitter,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_signalled": self.bytes_signalled,
            "inflight": self.inflight(),
        }


class FastMessageFabric(MessageFabric):
    """:class:`MessageFabric` with lazy in-flight records (fast engine).

    The reference eagerly renders every sent message into its JSON-safe
    in-flight dict (an ``asdict`` per send) even though the record is
    only ever *read* at a quiescent boundary (snapshot, monitor).  Here
    the hot path stores a ``(due, dest, msg)`` tuple and :meth:`inflight`
    renders the identical dicts on demand — same fields, same order,
    same state digest.  Message scheduling is unchanged.
    """

    def send(self, dest: "Shell", msg) -> None:
        self.messages_sent += 1
        if isinstance(msg, PutSpaceMsg):
            self.bytes_signalled += msg.n_bytes
        delay = self.latency
        if self.jitter:
            delay += self._rng.randrange(self.jitter + 1)
        if self.injector is not None:
            extra_delays = self.injector.plan_message(msg)
            if not extra_delays:
                self.messages_dropped += 1
                return
        else:
            extra_delays = (0,)
        sim = self.sim
        inflight = self._inflight
        for extra in extra_delays:
            self._next_send_id += 1
            send_id = self._next_send_id
            inflight[send_id] = (sim.now + delay + extra, dest.name, msg)
            ev = Event(sim)
            ev.callbacks.append(
                lambda _ev, m=msg, i=send_id: self._deliver(dest, m, i)
            )
            ev.succeed(None, delay=delay + extra)

    def inflight(self) -> List[Dict[str, Any]]:
        return [
            {
                "due": due,
                "dest": dest_name,
                "kind": type(msg).__name__,
                "fields": asdict(msg),
                "send_id": send_id,
            }
            for send_id, (due, dest_name, msg) in sorted(self._inflight.items())
        ]
