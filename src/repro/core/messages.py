"""Inter-shell synchronization messages (paper Figure 7).

"When the shell of coprocessor A receives a PutSpace request, it
locally decrements its space field ... and sends a 'putspace' message
to the shell of coprocessor B.  This remote shell ... increments its
space field upon reception."

The fabric delivers messages after a fixed latency.  Delivery order
between a fixed (source, destination) pair is FIFO — constant latency
plus the kernel's deterministic tie-breaking guarantee it — which is
what makes flush-before-putspace ordering (coherency rule 3) and
eos-after-final-putspace sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.shell import Shell

__all__ = ["PutSpaceMsg", "EosMsg", "MessageFabric"]


@dataclass(frozen=True)
class PutSpaceMsg:
    """Space increment for the remote access point.

    ``row_id``/``arm`` address the destination shell's stream-table row
    (and, for producer rows, which consumer arm's room to credit).
    """

    row_id: int
    arm: int
    n_bytes: int


@dataclass(frozen=True)
class EosMsg:
    """The producing task finished; no more data will ever arrive.

    ``final_position`` is the producer's total committed byte count.
    Carrying it makes end-of-stream robust against message reordering:
    the consumer only treats the stream as exhausted once its local
    accounting (`position + space`) has caught up with the final
    position, so an EOS that overtakes in-flight putspace messages can
    never cause data loss.
    """

    row_id: int
    arm: int = 0
    final_position: int = 0


class MessageFabric:
    """Message delivery between shells: fixed latency, plus optional
    seeded jitter for failure-injection testing.

    With ``jitter=0`` (the hardware model) delivery order between a
    fixed (source, destination) pair is FIFO.  With jitter, putspace
    messages may overtake each other — which is safe, because space
    increments commute and EOS finality is position-based (see
    :class:`EosMsg`)."""

    def __init__(self, sim: Simulator, latency: int = 4, jitter: int = 0, seed: int = 0):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.sim = sim
        self.latency = latency
        self.jitter = jitter
        self._rng = __import__("random").Random(seed)
        self.messages_sent = 0
        self.bytes_signalled = 0

    def send(self, dest: "Shell", msg) -> None:
        """Schedule delivery of ``msg`` to ``dest``."""
        self.messages_sent += 1
        if isinstance(msg, PutSpaceMsg):
            self.bytes_signalled += msg.n_bytes
        delay = self.latency
        if self.jitter:
            delay += self._rng.randrange(self.jitter + 1)
        ev = self.sim.event()
        ev.add_callback(lambda _ev: dest.deliver(msg))
        ev.succeed(None, delay=delay)
