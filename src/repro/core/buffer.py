"""Cyclic FIFO buffer address arithmetic (paper Figures 5-6).

A stream buffer is a fixed-size region of shared SRAM used cyclically:
a task port's *access point* is an absolute (monotonically increasing)
stream position; byte ``position + k`` lives at SRAM address
``base + (position + k) mod size``.  :class:`CyclicBuffer` converts
absolute stream ranges into at most two linear SRAM segments, and into
the set of cache lines they touch — the primitives shells need for
Read/Write routing, cache invalidation and flush.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["CyclicBuffer", "FastCyclicBuffer"]


class CyclicBuffer:
    """Address window of one stream buffer in linear memory."""

    def __init__(self, base: int, size: int):
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.base = base
        self.size = size

    def addr_of(self, position: int) -> int:
        """SRAM address of absolute stream position ``position``."""
        if position < 0:
            raise ValueError(f"position must be >= 0, got {position}")
        return self.base + position % self.size

    def segments(self, position: int, n_bytes: int) -> List[Tuple[int, int]]:
        """Linear (addr, length) pieces covering ``n_bytes`` at ``position``.

        At most two pieces (the range wraps at most once); ``n_bytes``
        must not exceed the buffer size — a correct shell never grants
        a window larger than the buffer.
        """
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        if n_bytes > self.size:
            raise ValueError(
                f"range of {n_bytes} B exceeds buffer size {self.size} B"
            )
        if n_bytes == 0:
            return []
        off = position % self.size
        first = min(n_bytes, self.size - off)
        segs = [(self.base + off, first)]
        if first < n_bytes:
            segs.append((self.base, n_bytes - first))
        return segs

    def lines(self, position: int, n_bytes: int, line_size: int) -> List[int]:
        """Line-aligned SRAM addresses of all cache lines the range
        touches, in ascending order, deduplicated."""
        out = set()
        for addr, length in self.segments(position, n_bytes):
            first = addr - addr % line_size
            last = addr + length - 1
            out.update(range(first, last + 1, line_size))
        return sorted(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CyclicBuffer base={self.base} size={self.size}>"


class FastCyclicBuffer(CyclicBuffer):
    """:class:`CyclicBuffer` with memoized range decompositions.

    Stream positions advance in fixed sync grains, so the residues
    ``position % size`` a run ever produces form a small set — the same
    ``segments``/``lines`` decompositions are recomputed thousands of
    times.  Both are pure functions of ``(position % size, n_bytes[,
    line_size])``, so the memo returns the exact lists the reference
    computes.  Callers treat the results as read-only (they iterate;
    audited across shell, system and snapshot code), which makes
    sharing the cached list objects safe.
    """

    _MEMO_CAP = 4096  # safety valve for pathological grain patterns

    def __init__(self, base: int, size: int):
        super().__init__(base, size)
        self._seg_memo: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self._line_memo: Dict[Tuple[int, int, int], List[int]] = {}

    def segments(self, position: int, n_bytes: int) -> List[Tuple[int, int]]:
        key = (position % self.size, n_bytes)
        segs = self._seg_memo.get(key)
        if segs is None:
            if len(self._seg_memo) >= self._MEMO_CAP:
                self._seg_memo.clear()
            segs = self._seg_memo[key] = super().segments(position, n_bytes)
        return segs

    def lines(self, position: int, n_bytes: int, line_size: int) -> List[int]:
        key = (position % self.size, n_bytes, line_size)
        out = self._line_memo.get(key)
        if out is None:
            if len(self._line_memo) >= self._MEMO_CAP:
                self._line_memo.clear()
            out = self._line_memo[key] = super().lines(position, n_bytes, line_size)
        return out
