"""The coprocessor control loop (paper Section 4).

"The coprocessor executes an infinite loop over processing steps":
ask the shell which task to run (GetTask), run one processing step of
that task's kernel, repeat.  Multi-tasking is the shared responsibility
the paper describes — the shell schedules, the coprocessor provides the
switch points (step boundaries) and holds task state (here: the kernel
instances).

The same class models hardwired coprocessors and the software media
processor (DSP-CPU): a software unit simply runs the identical kernels
with a larger ``compute_factor``.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from repro.core.config import CoprocessorSpec
from repro.core.task_table import TaskRow
from repro.kahn.kernel import (
    ComputeOp,
    ExternalAccessOp,
    GetSpaceOp,
    PutSpaceOp,
    ReadOp,
    StepOutcome,
    WriteOp,
)
from repro.sim import Simulator, UtilizationProbe

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.shell import Shell
    from repro.core.system import EclipseSystem

__all__ = ["Coprocessor"]


class Coprocessor:
    """One computation unit executing the GetTask / processing-step loop."""

    def __init__(
        self,
        sim: Simulator,
        spec: CoprocessorSpec,
        shell: "Shell",
        system: "EclipseSystem",
    ):
        self.sim = sim
        self.spec = spec
        self.name = spec.name
        self.shell = shell
        self.system = system
        self.utilization = UtilizationProbe(sim)
        self.steps_total = 0
        self.process = sim.process(self._run())
        self.process.name = f"coproc:{self.name}"

    # ------------------------------------------------------------------
    def _run(self) -> Generator:
        elapsed = 0
        while True:
            # fault injection: a transient stall at the step boundary
            # (clock gating, voltage droop, debug halt...) — the
            # protocol must only ever see it as latency
            stall = self.system.fault_coproc_stall(self.name)
            if stall:
                yield self.sim.timeout(stall)
            row = yield from self.shell.get_task(elapsed)
            if row is None:
                return  # all tasks finished; power down
            t0 = self.sim.now
            self.utilization.set_busy()
            outcome = yield from self._run_step(row)
            self.utilization.set_idle()
            elapsed = self.sim.now - t0
            row.busy_cycles += elapsed
            self.steps_total += 1
            if outcome is StepOutcome.COMPLETED:
                row.steps_completed += 1
            elif outcome is StepOutcome.ABORTED:
                row.steps_aborted += 1
            elif outcome is StepOutcome.FINISHED:
                self.shell.finish_task(row)
            else:  # pragma: no cover - defensive
                raise TypeError(
                    f"{self.name}/{row.name}: step returned {outcome!r}, "
                    "expected a StepOutcome"
                )

    def _run_step(self, row: TaskRow) -> Generator:
        """Drive one processing step of ``row``'s kernel, servicing its
        ops through the shell with full cycle costs."""
        gen = row.kernel.step(row.ctx)
        to_send = None
        while True:
            try:
                op = gen.send(to_send)
            except StopIteration as stop:
                return stop.value if stop.value is not None else StepOutcome.COMPLETED
            if isinstance(op, GetSpaceOp):
                to_send = yield from self.shell.get_space(row, op.port, op.n_bytes)
            elif isinstance(op, ReadOp):
                to_send = yield from self.shell.read(row, op.port, op.offset, op.n_bytes)
            elif isinstance(op, WriteOp):
                yield from self.shell.write(row, op.port, op.offset, op.data)
                to_send = None
            elif isinstance(op, PutSpaceOp):
                yield from self.shell.put_space(row, op.port, op.n_bytes)
                to_send = None
            elif isinstance(op, ComputeOp):
                cycles = max(0, round(op.cycles * self.spec.compute_factor))
                row.compute_cycles += cycles
                if cycles:
                    yield self.sim.timeout(cycles)
                to_send = None
            elif isinstance(op, ExternalAccessOp):
                if op.posted:
                    # write-buffered: occupies the off-chip port without
                    # stalling the coprocessor
                    self.sim.process(
                        self.system.dram.access(op.n_bytes, op.is_write, master=self.name)
                    )
                else:
                    yield from self.system.dram.access(op.n_bytes, op.is_write, master=self.name)
                to_send = None
            else:
                raise TypeError(
                    f"{self.name}/{row.name}: kernel yielded {type(op).__name__}; "
                    "expected a task-level-interface op"
                )

    @property
    def is_alive(self) -> bool:
        return self.process.is_alive

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Coprocessor {self.name!r} steps={self.steps_total}>"
