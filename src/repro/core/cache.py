"""Shell data caches with explicit, synchronization-driven coherency.

Paper §5.2: "the shell incorporates separate read and write caches ...
The GetSpace/PutSpace synchronization mechanism explicitly controls
cache coherency, fully transparent to the coprocessor", replacing
generic mechanisms like bus snooping with three rules:

1. the granted window is private → plain hits are safe;
2. a GetSpace that *extends* the window invalidates read-cache lines in
   the extension (fresh data will be refetched);
3. a PutSpace that *reduces* the window flushes dirty write-cache bytes
   in the reduction before the putspace message is sent.

These classes are pure bookkeeping (deterministic LRU state + byte
masks); the shell charges the bus/memory time around them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

__all__ = ["ReadCache", "WriteCache", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss/traffic counters for one cache."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    prefetch_fills: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ReadCache:
    """LRU cache of clean lines fetched from the stream memory."""

    def __init__(self, capacity_lines: int, line_size: int):
        if capacity_lines < 1:
            raise ValueError("capacity_lines must be >= 1")
        self.capacity = capacity_lines
        self.line_size = line_size
        self._lines: "OrderedDict[int, bytes]" = OrderedDict()
        self.stats = CacheStats()

    def lookup(self, line_addr: int) -> Optional[bytes]:
        """Line content on hit (promotes to MRU), None on miss.

        Does *not* bump hit/miss counters — the shell counts per
        coprocessor access, not per probe (a probe may be repeated
        while waiting on an in-flight fill).
        """
        data = self._lines.get(line_addr)
        if data is not None:
            self._lines.move_to_end(line_addr)
        return data

    def fill(self, line_addr: int, data: bytes, prefetch: bool = False) -> None:
        if len(data) != self.line_size:
            raise ValueError(f"fill of {len(data)} B into {self.line_size} B line")
        if line_addr in self._lines:
            self._lines.move_to_end(line_addr)
        self._lines[line_addr] = data
        if prefetch:
            self.stats.prefetch_fills += 1
        while len(self._lines) > self.capacity:
            self._lines.popitem(last=False)
            self.stats.evictions += 1

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._lines

    def invalidate(self, line_addrs: Iterable[int]) -> int:
        """Drop the given lines (coherency rule 2); returns count dropped."""
        dropped = 0
        for addr in line_addrs:
            if self._lines.pop(addr, None) is not None:
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def line_addrs(self) -> List[int]:
        """Cached line addresses in LRU→MRU order (no promotion)."""
        return list(self._lines)

    def export_state(self) -> dict:
        """JSON-safe view: LRU order, contents, and counters."""
        return {
            "capacity": self.capacity,
            "line_size": self.line_size,
            "lines": [
                {"addr": addr, "data": data.hex()}
                for addr, data in self._lines.items()
            ],
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "invalidations": self.stats.invalidations,
                "evictions": self.stats.evictions,
                "prefetch_fills": self.stats.prefetch_fills,
            },
        }

    def __len__(self) -> int:
        return len(self._lines)


class WriteCache:
    """Write-allocate, no-fetch cache of dirty byte-masked lines.

    Lines never hold clean data: a flush writes the dirty bytes to
    memory (byte enables) and drops them.  The byte mask is what makes
    a producer flushing a partially-written line safe when the same
    SRAM line also holds a neighbour's committed bytes.
    """

    def __init__(self, capacity_lines: int, line_size: int):
        if capacity_lines < 1:
            raise ValueError("capacity_lines must be >= 1")
        self.capacity = capacity_lines
        self.line_size = line_size
        #: line_addr -> (data bytearray, dirty-mask bytearray)
        self._lines: "OrderedDict[int, Tuple[bytearray, bytearray]]" = OrderedDict()
        self.stats = CacheStats()

    def write(self, addr: int, data: bytes) -> List[Tuple[int, bytes, bytes]]:
        """Stage ``data`` at SRAM address ``addr`` (may span lines).

        Returns LRU lines evicted to stay within capacity as
        ``(line_addr, data, mask)`` tuples — the shell must flush them.
        """
        pos = 0
        while pos < len(data):
            line_addr = (addr + pos) - (addr + pos) % self.line_size
            off = (addr + pos) - line_addr
            take = min(len(data) - pos, self.line_size - off)
            entry = self._lines.get(line_addr)
            if entry is None:
                entry = (bytearray(self.line_size), bytearray(self.line_size))
                self._lines[line_addr] = entry
                self.stats.misses += 1
            else:
                self._lines.move_to_end(line_addr)
                self.stats.hits += 1
            buf, mask = entry
            buf[off : off + take] = data[pos : pos + take]
            mask[off : off + take] = b"\x01" * take
            pos += take
        evicted = []
        while len(self._lines) > self.capacity:
            line_addr, (buf, mask) = self._lines.popitem(last=False)
            evicted.append((line_addr, bytes(buf), bytes(mask)))
            self.stats.evictions += 1
        return evicted

    def flush_range(self, addr: int, n_bytes: int) -> List[Tuple[int, bytes, bytes]]:
        """Take dirty bytes intersecting ``[addr, addr+n_bytes)`` for
        flushing (coherency rule 3).

        Dirty bytes *outside* the range stay cached (they belong to the
        still-private part of the window).  Returns ``(line_addr, data,
        mask)`` tuples restricted to the intersection.
        """
        if n_bytes <= 0:
            return []
        out = []
        end = addr + n_bytes
        first_line = addr - addr % self.line_size
        for line_addr in range(first_line, end, self.line_size):
            entry = self._lines.get(line_addr)
            if entry is None:
                continue
            buf, mask = entry
            lo = max(addr, line_addr) - line_addr
            hi = min(end, line_addr + self.line_size) - line_addr
            take_mask = bytearray(self.line_size)
            take_mask[lo:hi] = mask[lo:hi]
            mask[lo:hi] = bytes(hi - lo)
            if any(take_mask):
                out.append((line_addr, bytes(buf), bytes(take_mask)))
            if not any(mask):
                del self._lines[line_addr]
        return out

    def dirty_lines(self) -> int:
        return len(self._lines)

    def dirty_items(self) -> List[Tuple[int, bytes, bytes]]:
        """Non-destructive view of cached lines as ``(line_addr, data,
        mask)`` in LRU→MRU order — for monitors and snapshots."""
        return [
            (addr, bytes(buf), bytes(mask))
            for addr, (buf, mask) in self._lines.items()
        ]

    def export_state(self) -> dict:
        """JSON-safe view: LRU order, contents, masks, and counters."""
        return {
            "capacity": self.capacity,
            "line_size": self.line_size,
            "lines": [
                {"addr": addr, "data": bytes(buf).hex(), "mask": bytes(mask).hex()}
                for addr, (buf, mask) in self._lines.items()
            ],
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "invalidations": self.stats.invalidations,
                "evictions": self.stats.evictions,
                "prefetch_fills": self.stats.prefetch_fills,
            },
        }

    def __len__(self) -> int:
        return len(self._lines)
