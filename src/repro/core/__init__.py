"""Eclipse generic infrastructure (the paper's primary contribution).

This package implements the cycle-level Eclipse architecture template
(paper Sections 3-5): the coprocessor shell with its stream and task
tables, distributed putspace synchronization, read/write caches with
explicit GetSpace/PutSpace-driven coherency, weighted round-robin
"best-guess" task scheduling, and the system assembly that maps a Kahn
application graph onto a heterogeneous set of multi-tasking
coprocessors.

Entry point: :class:`~repro.core.system.EclipseSystem`.
"""

from repro.core.buffer import CyclicBuffer
from repro.core.cache import CacheStats, ReadCache, WriteCache
from repro.core.config import CoprocessorSpec, ShellParams, SystemParams
from repro.core.control import ControlInterface, QosController
from repro.core.coprocessor import Coprocessor
from repro.core.messages import EosMsg, MessageFabric, PutSpaceMsg
from repro.core.scheduler import WeightedRoundRobinScheduler
from repro.core.shell import Shell
from repro.core.stream_table import StreamRow, StreamTable
from repro.core.system import DeadlockError, EclipseSystem, StalledError, SystemResult
from repro.core.task_table import TaskRow, TaskTable
from repro.sim import FaultInjector, FaultPlan, FaultStats, LossPlan, StallSpec

__all__ = [
    "CacheStats",
    "ControlInterface",
    "Coprocessor",
    "CoprocessorSpec",
    "QosController",
    "CyclicBuffer",
    "DeadlockError",
    "EclipseSystem",
    "EosMsg",
    "FaultInjector",
    "FaultPlan",
    "LossPlan",
    "FaultStats",
    "MessageFabric",
    "StallSpec",
    "PutSpaceMsg",
    "ReadCache",
    "Shell",
    "ShellParams",
    "StalledError",
    "StreamRow",
    "StreamTable",
    "SystemParams",
    "SystemResult",
    "TaskRow",
    "TaskTable",
    "WeightedRoundRobinScheduler",
    "WriteCache",
]
