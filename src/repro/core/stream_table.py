"""Shell stream tables (paper §5.1).

Each shell locally stores one row per *access point* of a stream
incident to its coprocessor's tasks: a producer row for an output port,
a consumer row for an input port.  A row holds the paper's fields —
the ``space`` value ("a maybe pessimistic distance from its own point
of access towards the other point of access"), the stream id of the
remote access point — plus buffer geometry, the granted window, and
measurement fields (§5.4).

Multicast ("one or more consumers", §3) is handled on the producer
side by one space counter per consumer arm; the grantable room is the
minimum over arms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, TYPE_CHECKING

from repro.core.buffer import CyclicBuffer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.shell import Shell
    from repro.sim import Series, TimeWeightedStat

__all__ = ["StreamRow", "StreamTable", "RemoteRef"]


@dataclass(frozen=True)
class RemoteRef:
    """Address of the remote access point: (shell, row index, arm).

    ``arm`` is which arm counter of a producer row a consumer's
    putspace message increments (0 for 1:1 streams).
    """

    shell: "Shell"
    row_id: int
    arm: int = 0


@dataclass
class StreamRow:
    """One access point's state in a shell's stream table."""

    stream: str
    task: str
    port: str
    is_producer: bool
    buffer: CyclicBuffer
    #: absolute stream position of the access point (bytes committed)
    position: int = 0
    #: size of the currently granted window beyond ``position``
    granted: int = 0
    #: consumer rows: valid data ahead of the access point
    space: int = 0
    #: producer rows: available room per consumer arm
    arm_space: List[int] = field(default_factory=list)
    #: where this row's putspace/eos messages go
    remotes: Tuple[RemoteRef, ...] = ()
    #: consumer rows: producer's final committed position, once its EOS
    #: message arrived (None while the producer is live)
    eos_position: Optional[int] = None
    # ----- measurement fields (paper §5.4) -----
    denied_getspace: int = 0
    granted_getspace: int = 0
    putspace_messages_sent: int = 0
    committed_bytes: int = 0
    #: consumer rows: time-weighted buffer filling (Figure 10's signal)
    fill_stat: Optional[Any] = None

    def available(self) -> int:
        """Grantable space: data (consumer) or min room over arms
        (producer)."""
        if self.is_producer:
            return min(self.arm_space) if self.arm_space else 0
        return self.space

    def applied_credit(self, arm: int = 0) -> int:
        """The remote cumulative position this row has already
        accounted for: the producer's committed bytes seen by a
        consumer row, or a consumer arm's consumed bytes seen by a
        producer row.  Monotone by construction."""
        if self.is_producer:
            # arm_space = buffer_size - committed + consumed[arm]
            return self.arm_space[arm] - self.buffer.size + self.committed_bytes
        return self.position + self.space

    def apply_credit(self, arm: int, n_bytes: int, cumulative: Optional[int]) -> int:
        """Apply one putspace credit; returns the bytes actually
        credited.

        With ``cumulative`` (the sender's absolute position) the
        application is idempotent and monotonic: only the part beyond
        :meth:`applied_credit` lands, so duplicated or reordered
        messages are no-ops and any later message heals an earlier
        drop.  ``cumulative=None`` is the legacy raw-delta path."""
        if cumulative is None:
            delta = n_bytes
        else:
            delta = cumulative - self.applied_credit(arm)
        if delta <= 0:
            return 0
        if self.is_producer:
            self.arm_space[arm] += delta
        else:
            self.space += delta
        return delta

    def commit(self, n_bytes: int) -> None:
        """Advance the access point past ``n_bytes`` of committed data:
        the local-bookkeeping half of PutSpace (space accounting, fill
        statistic, position/granted/committed update).  The shell runs
        this after flushing the committed range and before sending the
        putspace messages — the Figure 7 order."""
        if self.is_producer:
            arm_space = self.arm_space
            for i in range(len(arm_space)):
                arm_space[i] -= n_bytes
        else:
            self.space -= n_bytes
            if self.fill_stat is not None:
                self.fill_stat.add(-n_bytes)
        self.position += n_bytes
        self.granted -= n_bytes
        self.committed_bytes += n_bytes

    def at_eos(self) -> bool:
        """True once the producer finished AND every committed byte has
        been accounted locally — robust to putspace/eos reordering."""
        return (
            self.eos_position is not None
            and self.position + self.space >= self.eos_position
        )

    def export_state(self) -> dict:
        """JSON-safe view of the row for snapshots and monitors."""
        fill = None
        if self.fill_stat is not None:
            fill = {
                "value": self.fill_stat.value,
                "minimum": self.fill_stat.minimum,
                "maximum": self.fill_stat.maximum,
            }
        return {
            "stream": self.stream,
            "task": self.task,
            "port": self.port,
            "is_producer": self.is_producer,
            "buffer": {"base": self.buffer.base, "size": self.buffer.size},
            "position": self.position,
            "granted": self.granted,
            "space": self.space,
            "arm_space": list(self.arm_space),
            "eos_position": self.eos_position,
            "denied_getspace": self.denied_getspace,
            "granted_getspace": self.granted_getspace,
            "putspace_messages_sent": self.putspace_messages_sent,
            "committed_bytes": self.committed_bytes,
            "fill": fill,
        }

    def __str__(self) -> str:
        kind = "prod" if self.is_producer else "cons"
        return f"{self.stream}:{self.task}.{self.port}({kind})"


class StreamTable:
    """The per-shell table of access-point rows."""

    def __init__(self) -> None:
        self.rows: List[StreamRow] = []

    def add(self, row: StreamRow) -> int:
        self.rows.append(row)
        return len(self.rows) - 1

    def __getitem__(self, row_id: int) -> StreamRow:
        return self.rows[row_id]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def export_state(self) -> List[dict]:
        return [row.export_state() for row in self.rows]
