"""Shell task tables (paper §5.3).

"The tasks that are mapped onto the coprocessor are configured in the
task table in the shell, which contains among others the resource
budget per task."  A row also carries the blocked-on-space state the
best-guess scheduler uses, and the per-task measurement fields of §5.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, TYPE_CHECKING

from repro.kahn.kernel import Kernel, KernelContext

__all__ = ["TaskRow", "TaskTable"]


@dataclass
class TaskRow:
    """One task's configuration and runtime state in a shell."""

    task_id: int
    name: str
    kernel: Kernel
    ctx: KernelContext
    #: guaranteed minimum contiguous execution in cycles (paper §5.3:
    #: "budgets typically range from 1000 up to 10,000 clock cycles")
    budget: int
    #: budget remaining in the current scheduling round
    remaining: int = 0
    enabled: bool = True
    finished: bool = False
    #: stream-table row ids whose denied GetSpace blocks this task;
    #: cleared when a message for that stream arrives (best guess input)
    blocked_on: Set[int] = field(default_factory=set)
    #: port name -> stream-table row id, for primitive routing
    port_rows: Dict[str, int] = field(default_factory=dict)
    # ----- measurement fields (paper §5.4) -----
    steps_completed: int = 0
    steps_aborted: int = 0
    busy_cycles: int = 0
    compute_cycles: int = 0
    stall_cycles: int = 0

    @property
    def runnable(self) -> bool:
        """Best-guess runnability: enabled, unfinished, and no
        outstanding space denial (paper §5.3: the scheduler considers
        "previously denied data access")."""
        return self.enabled and not self.finished and not self.blocked_on

    def export_state(self) -> dict:
        """JSON-safe view of the row for snapshots and monitors."""
        return {
            "task_id": self.task_id,
            "name": self.name,
            "kernel": type(self.kernel).__name__,
            "kernel_state": self.kernel.export_state(),
            "budget": self.budget,
            "remaining": self.remaining,
            "enabled": self.enabled,
            "finished": self.finished,
            "blocked_on": sorted(self.blocked_on),
            "port_rows": dict(sorted(self.port_rows.items())),
            "steps_completed": self.steps_completed,
            "steps_aborted": self.steps_aborted,
            "busy_cycles": self.busy_cycles,
            "compute_cycles": self.compute_cycles,
            "stall_cycles": self.stall_cycles,
        }


class TaskTable:
    """The per-shell table of task rows."""

    def __init__(self) -> None:
        self.rows: List[TaskRow] = []

    def add(self, row: TaskRow) -> int:
        assert row.task_id == len(self.rows), "task_id must equal row index"
        self.rows.append(row)
        return row.task_id

    def __getitem__(self, task_id: int) -> TaskRow:
        return self.rows[task_id]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def all_finished(self) -> bool:
        """True only when every task truly finished.  Disabled tasks do
        NOT count as finished — a pause (run-time control, §5.4) must
        not power the coprocessor down permanently."""
        return all(r.finished for r in self.rows)

    def export_state(self) -> List[dict]:
        return [row.export_state() for row in self.rows]

    def unblock(self, row_id: int) -> bool:
        """Clear blocked-on marks for stream row ``row_id``; True if any
        task became runnable (the shell then wakes its GetTask wait)."""
        woke = False
        for task in self.rows:
            if row_id in task.blocked_on:
                task.blocked_on.discard(row_id)
                woke = woke or task.runnable
        return woke
