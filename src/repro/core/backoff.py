"""Shared exponential-backoff policy.

Two recovery mechanisms re-poll a peer that may have missed a message:
the shell watchdog (re-sending cumulative space credits over the lossy
on-chip fabric, :meth:`repro.core.shell.Shell.watchdog_run`) and the
network retransmission manager (NACKing lost ingest packets,
:class:`repro.net.receiver.RtxManager`).  Both want the same discipline
— start at a base interval, multiply it after every fruitless attempt,
cap the growth — and the cap keeps the policy *live*: retries never
stop entirely, so an eventually-delivered message always gets through.

The policy is pure integer arithmetic on caller-supplied numbers; it
never reads a clock, so it is deterministic wherever its caller is.
"""

from __future__ import annotations

__all__ = ["ExponentialBackoff"]


class ExponentialBackoff:
    """Capped exponential backoff over integer intervals.

    ``current`` starts at ``base``; :meth:`escalate` multiplies it by
    ``factor`` (capped at ``cap``) and returns the new value;
    :meth:`reset` returns to ``base`` after observed progress.
    """

    def __init__(self, base: int, factor: int, cap: int):
        if base < 1:
            raise ValueError(f"base must be >= 1, got {base}")
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if cap < base:
            raise ValueError(f"cap must be >= base, got {cap} < {base}")
        self.base = base
        self.factor = factor
        self.cap = cap
        self.current = base
        self.escalations = 0

    def escalate(self) -> int:
        """One fruitless attempt: grow the interval and return it."""
        self.current = min(self.current * self.factor, self.cap)
        self.escalations += 1
        return self.current

    def reset(self) -> int:
        """Progress observed: back to the base interval."""
        self.current = self.base
        return self.current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExponentialBackoff(base={self.base}, factor={self.factor}, "
            f"cap={self.cap}, current={self.current})"
        )
