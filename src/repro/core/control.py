"""Run-time control: the main CPU's view over the shells (paper §5.4).

"All shell tables are memory-mapped and accessible to the main CPU via
a control bus (PI-bus)" — and the measurements they accumulate are used
for "run-time control for quality-of-service resource management in the
final product".

:class:`ControlInterface` is that memory-mapped access: field-level
reads of any stream/task-table entry and run-time writes of the
scheduler configuration (budgets, task enables).  Writes take effect at
the shell's next scheduling decision, exactly like a register write
racing the hardware.

:class:`QosController` is a minimal §5.4-style controller: a periodic
process that reads the per-stream filling measurements and rebalances
task budgets toward the tasks whose input buffers are fullest — i.e.
the ones currently limiting application progress.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.system import EclipseSystem
from repro.core.task_table import TaskRow

__all__ = ["ControlInterface", "QosController"]


class ControlInterface:
    """Memory-mapped register access to all shell tables."""

    def __init__(self, system: EclipseSystem):
        if not system.coprocessors:
            raise RuntimeError("attach the ControlInterface after configure()")
        self.system = system
        self._tasks: Dict[str, Tuple[str, TaskRow]] = {}
        for cname, shell in system.shells.items():
            for row in shell.task_table:
                self._tasks[row.name] = (cname, row)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def task_names(self):
        return sorted(self._tasks)

    def read_task(self, task: str) -> Dict[str, object]:
        """One task row's registers."""
        cop, row = self._lookup(task)
        return {
            "coprocessor": cop,
            "budget": row.budget,
            "enabled": row.enabled,
            "finished": row.finished,
            "steps_completed": row.steps_completed,
            "steps_aborted": row.steps_aborted,
            "busy_cycles": row.busy_cycles,
            "stall_cycles": row.stall_cycles,
        }

    def read_stream_fill(self, task: str) -> Dict[str, int]:
        """Available data per input port of ``task`` (space fields)."""
        cop, row = self._lookup(task)
        shell = self.system.shells[cop]
        out = {}
        for port, row_id in row.port_rows.items():
            srow = shell.stream_table[row_id]
            if not srow.is_producer:
                out[port] = srow.available()
        return out

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def set_budget(self, task: str, budget: int) -> None:
        """Reconfigure a task's scheduler budget at run time."""
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        cop, row = self._lookup(task)
        row.budget = budget
        self.system.shells[cop]._notify()

    def set_enabled(self, task: str, enabled: bool) -> None:
        """Pause/resume a task.  A disabled task is never scheduled; the
        application stalls if it is on the critical path (user beware),
        and resumes when re-enabled."""
        cop, row = self._lookup(task)
        row.enabled = enabled
        self.system.shells[cop]._notify()

    def _lookup(self, task: str) -> Tuple[str, TaskRow]:
        entry = self._tasks.get(task)
        if entry is None:
            raise KeyError(f"unknown task {task!r}; known: {self.task_names()}")
        return entry


class QosController:
    """Periodic budget rebalancing from the hardware measurements.

    Every ``interval`` cycles, for each multi-tasking shell, set each
    unfinished task's budget proportionally to the filling of its input
    buffers (bounded to [min_budget, max_budget]) — starving tasks shed
    budget, backlogged tasks gain it.  ``adjustments`` counts applied
    changes so tests/benches can see the controller act.
    """

    def __init__(
        self,
        system: EclipseSystem,
        interval: int = 2000,
        min_budget: int = 500,
        max_budget: int = 8000,
    ):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        if not (1 <= min_budget <= max_budget):
            raise ValueError("need 1 <= min_budget <= max_budget")
        self.system = system
        self.control = ControlInterface(system)
        self.interval = interval
        self.min_budget = min_budget
        self.max_budget = max_budget
        self.adjustments = 0
        system.sim.process(self._run())

    def _rebalance_once(self) -> None:
        for cname, shell in self.system.shells.items():
            live = [t for t in shell.task_table if not t.finished and t.enabled]
            if len(live) < 2:
                continue
            fills = {}
            for t in live:
                per_port = self.control.read_stream_fill(t.name)
                fills[t.name] = max(per_port.values()) if per_port else 0
            total = sum(fills.values())
            if total == 0:
                continue
            span = self.max_budget - self.min_budget
            for t in live:
                target = self.min_budget + round(span * fills[t.name] / total)
                if target != t.budget:
                    t.budget = target
                    self.adjustments += 1

    def _run(self):
        while True:
            if all(not c.is_alive for c in self.system.coprocessors.values()):
                return
            self._rebalance_once()
            yield self.system.sim.timeout(self.interval)
