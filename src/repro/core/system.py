"""Eclipse system assembly: mapping an application onto an instance.

An :class:`EclipseSystem` is one instantiation of the architecture
template: a set of coprocessors with their shells, the shared SRAM,
read/write buses, off-chip port and message fabric.  ``configure``
plays the role of the CPU programming the stream and task tables over
the PI-bus (paper §5.4/§6): it allocates the stream buffers, populates
the tables and instantiates the kernels.  ``run`` executes until the
application completes (all tasks finished) and returns a
:class:`SystemResult` with full measurement data — including the
per-stream byte histories used to check the run against the functional
reference executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.config import CoprocessorSpec, SystemParams
from repro.core.coprocessor import Coprocessor
from repro.core.engine import engine_components
from repro.core.shell import Shell
from repro.core.stream_table import RemoteRef, StreamRow
from repro.core.task_table import TaskRow
from repro.hw.dram import OffChipMemory
from repro.hw.memory import OnChipMemory
from repro.kahn.graph import ApplicationGraph, GraphError
from repro.kahn.kernel import Kernel, KernelContext
from repro.obs.level import ObservabilityLevel
from repro.sim import FaultInjector, FaultPlan, Resource, Simulator

__all__ = ["EclipseSystem", "SystemResult", "StalledError", "DeadlockError"]


class StalledError(RuntimeError):
    """The simulation drained with unfinished tasks — a real deadlock
    (e.g. a buffer smaller than a packet, paper §2.2's coupling
    trade-off gone wrong)."""


class DeadlockError(StalledError):
    """The deadlock detector found unfinished tasks making zero
    progress (e.g. a fault schedule the recovery machinery cannot
    heal).  ``report`` names which tasks are blocked on which access
    points, so the run terminates with a diagnosis instead of
    hanging."""

    def __init__(self, message: str, report: str):
        super().__init__(message)
        self.report = report


@dataclass
class StreamReport:
    """Per-stream measurements for the result."""

    name: str
    buffer_size: int
    bytes_transferred: int = 0
    fill_mean: float = 0.0
    fill_max: float = 0.0
    denied_getspace: int = 0
    granted_getspace: int = 0
    putspace_messages: int = 0


@dataclass
class TaskReport:
    """Per-task measurements for the result."""

    name: str
    coprocessor: str
    steps_completed: int = 0
    steps_aborted: int = 0
    busy_cycles: int = 0
    compute_cycles: int = 0
    stall_cycles: int = 0


@dataclass
class SystemResult:
    """Everything one simulation run measured."""

    cycles: int
    completed: bool
    stalled_tasks: List[str]
    histories: Dict[str, bytes]
    tasks: Dict[str, TaskReport]
    streams: Dict[str, StreamReport]
    utilization: Dict[str, float]
    read_bus_utilization: float
    write_bus_utilization: float
    cache_hit_rate: Dict[str, float]
    messages_sent: int
    cpu_sync_ops: int
    cpu_busy_cycles: int
    #: fault-injection & recovery counters; None when no faults and no
    #: watchdog were active
    robustness: Optional[Dict[str, object]] = None
    #: lossy-ingest degradation accounting (concealed frames, silenced
    #: audio, erased packets); None unless a kernel reported any — so
    #: loss-free runs serialize exactly as before
    degradation: Optional[Dict[str, object]] = None

    def history(self, stream: str) -> bytes:
        return self.histories[stream]

    def to_dict(self, include_histories: bool = False) -> dict:
        """JSON-ready summary (histories hex-encoded when requested) —
        the machine-readable counterpart of the Figure 9 views."""
        out = {
            "cycles": self.cycles,
            "completed": self.completed,
            "stalled_tasks": list(self.stalled_tasks),
            "tasks": {
                name: {
                    "coprocessor": t.coprocessor,
                    "steps_completed": t.steps_completed,
                    "steps_aborted": t.steps_aborted,
                    "busy_cycles": t.busy_cycles,
                    "compute_cycles": t.compute_cycles,
                    "stall_cycles": t.stall_cycles,
                }
                for name, t in self.tasks.items()
            },
            "streams": {
                name: {
                    "buffer_size": s.buffer_size,
                    "bytes_transferred": s.bytes_transferred,
                    "fill_mean": s.fill_mean,
                    "fill_max": s.fill_max,
                    "denied_getspace": s.denied_getspace,
                    "granted_getspace": s.granted_getspace,
                    "putspace_messages": s.putspace_messages,
                }
                for name, s in self.streams.items()
            },
            "utilization": dict(self.utilization),
            "read_bus_utilization": self.read_bus_utilization,
            "write_bus_utilization": self.write_bus_utilization,
            "cache_hit_rate": dict(self.cache_hit_rate),
            "messages_sent": self.messages_sent,
            "cpu_sync_ops": self.cpu_sync_ops,
            "cpu_busy_cycles": self.cpu_busy_cycles,
        }
        if self.robustness is not None:
            out["robustness"] = dict(self.robustness)
        if self.degradation is not None:
            out["degradation"] = dict(self.degradation)
        if include_histories:
            out["histories"] = {k: v.hex() for k, v in self.histories.items()}
        return out


class EclipseSystem:
    """One Eclipse instance, ready to be configured and run."""

    def __init__(
        self,
        coprocessors: Sequence[CoprocessorSpec],
        params: Optional[SystemParams] = None,
        faults: Optional[FaultPlan] = None,
    ):
        if not coprocessors:
            raise ValueError("an Eclipse instance needs at least one coprocessor")
        names = [c.name for c in coprocessors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate coprocessor names in {names}")
        self.params = params or SystemParams()
        comps = engine_components(self.params.engine)
        #: which execution core built this system ("reference"/"fast")
        self.engine = comps.name
        self._components = comps
        self._compress_idle = comps.compress_idle
        #: the observability tier every recording hot path consults
        #: ("full" = byte-identical pre-contract behaviour)
        self.obs = ObservabilityLevel.parse(self.params.obs_level)
        #: observers attached via attach_sampler()/attach_tracer()
        self.sampler = None
        self.tracer = None
        self.specs: Dict[str, CoprocessorSpec] = {c.name: c for c in coprocessors}
        self.sim = comps.simulator()
        self.sram = OnChipMemory(self.params.sram_size)
        snoop_extra = (
            self.params.snoop_cycles_per_shell * len(coprocessors)
            if self.params.coherency == "snooping"
            else 0
        )
        self.read_bus = comps.bus(
            self.sim,
            "read_bus",
            width_bytes=self.params.bus_width,
            setup_latency=self.params.bus_setup_latency + snoop_extra,
        )
        self.write_bus = comps.bus(
            self.sim,
            "write_bus",
            width_bytes=self.params.bus_width,
            setup_latency=self.params.bus_setup_latency + snoop_extra,
        )
        self.dram = OffChipMemory(
            self.sim,
            width_bytes=self.params.dram_width,
            access_latency=self.params.dram_latency,
            bus_cls=comps.bus,
        )
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(faults) if faults is not None and faults.any_faults() else None
        )
        self.fabric = comps.fabric(
            self.sim,
            latency=self.params.msg_latency,
            jitter=self.params.msg_jitter,
            seed=self.params.msg_seed,
            injector=self.fault_injector,
        )
        self._central_cpu: Optional[Resource] = (
            Resource(self.sim, capacity=1) if self.params.sync_mode == "centralized" else None
        )
        self.cpu_sync_ops = 0
        self.cpu_busy_cycles = 0
        self.shells: Dict[str, Shell] = {
            c.name: comps.shell(self.sim, c.name, c.shell, self) for c in coprocessors
        }
        self.coprocessors: Dict[str, Coprocessor] = {}
        self.graph: Optional[ApplicationGraph] = None
        self._histories: Dict[str, bytearray] = {}
        self._row_stream: Dict[int, str] = {}
        self._configured = False
        self._unfinished_tasks = 0
        self._monitors_active = False
        #: observability counters for the resilience layer (checkpoint
        #: and monitor activity).  Deliberately NOT part of
        #: :meth:`export_state`: exporting state must not change the
        #: state digest, or interrupted and uninterrupted runs would
        #: diverge byte-wise.
        self.resilience: Dict[str, int] = {
            "state_exports": 0,
            "invariant_checks": 0,
            "invariant_violations": 0,
            "checkpoints_written": 0,
        }

    # ------------------------------------------------------------------
    # fault-injection hooks (no-ops without an injector)
    # ------------------------------------------------------------------
    def fault_corrupt_line(self, data: bytes) -> Optional[bytes]:
        """Maybe-corrupted copy of a cache-line fill, or None."""
        if self.fault_injector is None:
            return None
        return self.fault_injector.corrupt_line(data)

    def fault_coproc_stall(self, name: str) -> int:
        """Cycles coprocessor ``name`` must stall at this step boundary."""
        if self.fault_injector is None:
            return 0
        return self.fault_injector.coproc_stall(name, self.sim.now)

    # ------------------------------------------------------------------
    # completion tracking (used by watchdogs and the run-loop stop)
    # ------------------------------------------------------------------
    def task_finished(self, task: TaskRow) -> None:
        """A shell finished one task (called from Shell.finish_task)."""
        self._unfinished_tasks -= 1

    def all_finished(self) -> bool:
        """True once every configured task reached end-of-stream."""
        return self._configured and self._unfinished_tasks == 0

    # ------------------------------------------------------------------
    # centralized-sync baseline hook (no-op in distributed mode)
    # ------------------------------------------------------------------
    def central_sync_cost(self) -> Generator:
        """Occupy the central CPU for one sync operation (baseline
        mode); generator — ``yield from`` inside shell primitives."""
        if self._central_cpu is None:
            return
        grant = self._central_cpu.request()
        yield grant
        yield self.sim.timeout(self.params.central_sync_cycles)
        self._central_cpu.release(grant)
        self.cpu_sync_ops += 1
        self.cpu_busy_cycles += self.params.central_sync_cycles

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def configure(self, graph: ApplicationGraph, auto_map: bool = True) -> None:
        """Program the shells for ``graph`` (allocate buffers, fill
        stream/task tables, instantiate kernels, start coprocessors).

        Tasks with ``mapping=None`` are assigned round-robin over the
        coprocessors when ``auto_map`` — convenient for tests; real
        instances name the coprocessor per task (Figure 3).
        """
        if self._configured:
            raise RuntimeError("system already configured")
        graph.validate()
        self.graph = graph
        line_pad = max(spec.shell.cache_line for spec in self.specs.values())

        # ---- mapping ----
        mapping: Dict[str, str] = {}
        coproc_names = list(self.specs)
        rr = 0
        for tname, node in graph.tasks.items():
            if node.mapping is not None:
                if node.mapping not in self.specs:
                    raise GraphError(
                        f"task {tname!r} mapped to unknown coprocessor {node.mapping!r}; "
                        f"instance has {coproc_names}"
                    )
                mapping[tname] = node.mapping
            elif auto_map:
                mapping[tname] = coproc_names[rr % len(coproc_names)]
                rr += 1
            else:
                raise GraphError(f"task {tname!r} has no coprocessor mapping")
        self.mapping = mapping

        # ---- task tables ----
        task_rows: Dict[str, TaskRow] = {}
        for tname, node in graph.tasks.items():
            shell = self.shells[mapping[tname]]
            kernel = node.kernel_factory()
            if not isinstance(kernel, Kernel):
                raise GraphError(f"task {tname!r}: factory returned {type(kernel).__name__}")
            ctx = KernelContext(kernel.ports(), task_info=node.task_info, task=node.name)
            row = TaskRow(
                task_id=len(shell.task_table),
                name=tname,
                kernel=kernel,
                ctx=ctx,
                budget=node.budget,
            )
            shell.add_task(row)
            task_rows[tname] = row

        # ---- stream buffers and tables ----
        for sname, edge in graph.streams.items():
            padded = -(-edge.buffer_size // line_pad) * line_pad
            base = self.sram.alloc(padded, name=sname, align=line_pad)
            buffer = self._components.buffer(base, edge.buffer_size)
            self._histories[sname] = bytearray()

            prod_shell = self.shells[mapping[edge.producer.task]]
            prod_row = StreamRow(
                stream=sname,
                task=edge.producer.task,
                port=edge.producer.port,
                is_producer=True,
                buffer=buffer,
                arm_space=[edge.buffer_size] * len(edge.consumers),
            )
            prod_id = prod_shell.add_stream_row(prod_row)
            task_rows[edge.producer.task].port_rows[edge.producer.port] = prod_id
            self._row_stream[id(prod_row)] = sname

            remotes_for_producer = []
            for arm, cons in enumerate(edge.consumers):
                cons_shell = self.shells[mapping[cons.task]]
                cons_row = StreamRow(
                    stream=sname,
                    task=cons.task,
                    port=cons.port,
                    is_producer=False,
                    buffer=buffer,
                    space=0,
                    remotes=(RemoteRef(prod_shell, prod_id, arm),),
                )
                cons_id = cons_shell.add_stream_row(cons_row)
                task_rows[cons.task].port_rows[cons.port] = cons_id
                remotes_for_producer.append(RemoteRef(cons_shell, cons_id, 0))
            prod_row.remotes = tuple(remotes_for_producer)

        # ---- start the machines ----
        for cname, spec in self.specs.items():
            self.coprocessors[cname] = Coprocessor(self.sim, spec, self.shells[cname], self)
        self._unfinished_tasks = len(graph.tasks)
        self._configured = True

        # ---- recovery & robustness monitors ----
        p = self.params
        if p.watchdog_timeout is not None:
            for cname, shell in self.shells.items():
                proc = self.sim.process(
                    shell.watchdog_run(
                        p.watchdog_timeout, p.watchdog_backoff, p.watchdog_max_backoff
                    )
                )
                proc.name = f"watchdog:{cname}"
        detect = p.deadlock_detection
        if detect is None:  # auto: on whenever faults or recovery are in play
            detect = self.fault_injector is not None or p.watchdog_timeout is not None
        if detect:
            proc = self.sim.process(self._deadlock_monitor())
            proc.name = "deadlock-monitor"
        self._monitors_active = detect or p.watchdog_timeout is not None

        # ---- observers requested in the params ----
        if p.sample_interval is not None:
            self.attach_sampler(p.sample_interval)

    # ------------------------------------------------------------------
    # observers (routed through the engine registry, so both engines —
    # and any future one — attach the same way)
    # ------------------------------------------------------------------
    def attach_sampler(self, interval: int = 500):
        """Attach the §5.4 periodic sampling process (after
        ``configure()``; needs ``obs_level`` >= ``"series"``)."""
        self.sampler = self._components.sampler(self, interval)
        return self.sampler

    def attach_tracer(self, capacity: int = 100_000):
        """Attach the span tracer (after ``configure()``; needs
        ``obs_level`` >= ``"series"``)."""
        self.tracer = self._components.tracer(self, capacity)
        return self.tracer

    # ------------------------------------------------------------------
    # deadlock detection
    # ------------------------------------------------------------------
    def _global_progress(self) -> Tuple[int, int, int]:
        """Monotone system-wide progress fingerprint: total committed
        positions, credits applied, tasks finished."""
        positions = credits = 0
        for shell in self.shells.values():
            credits += shell.credits_applied
            for row in shell.stream_table:
                positions += row.position
        return positions, credits, self._unfinished_tasks

    def _deadlock_monitor(self) -> Generator:
        """Declare deadlock after ``deadlock_patience`` consecutive
        zero-progress checks with unfinished tasks; the raised
        :class:`DeadlockError` carries the blocked-on report, so even a
        livelocked run (watchdog retrying into a dead fabric forever)
        terminates with a diagnosis."""
        interval = self.params.deadlock_check_interval
        patience = self.params.deadlock_patience
        idle_checks = 0
        last = self._global_progress()
        while not self.all_finished():
            if self._compress_idle and self.sim.pending_events() == 0:
                # Idle-window compression (fast engine): the queue holds
                # nothing but this monitor's yet-to-be-scheduled
                # timeouts, so no event can ever change progress again
                # and the remaining polls are a deterministic replay.
                # Leap in ONE timeout to the exact cycle the reference
                # monitor would declare deadlock at: `patience -
                # idle_checks` more idle polls — plus one extra poll if
                # progress moved since the last check (the reference
                # spends it resetting its idle counter).  Any other
                # pending event (watchdog retry, sampler tick, stall
                # injection) keeps pending_events() > 0 and pins the
                # boundary, forcing poll-by-poll stepping.
                cur = self._global_progress()
                leaps = 1 + patience if cur != last else patience - idle_checks
                yield self.sim.timeout(leaps * interval)
                report = self.blocked_report()
                raise DeadlockError(
                    f"deadlock detected at t={self.sim.now}: no progress for "
                    f"{patience * interval} cycles with "
                    f"{self._unfinished_tasks} unfinished task(s)\n{report}",
                    report,
                )
            yield self.sim.timeout(interval)
            if self.all_finished():
                return
            cur = self._global_progress()
            if cur != last:
                last = cur
                idle_checks = 0
                continue
            idle_checks += 1
            if idle_checks >= patience:
                report = self.blocked_report()
                raise DeadlockError(
                    f"deadlock detected at t={self.sim.now}: no progress for "
                    f"{idle_checks * interval} cycles with "
                    f"{self._unfinished_tasks} unfinished task(s)\n{report}",
                    report,
                )

    def blocked_report(self) -> str:
        """Human-readable map of every unfinished task to the access
        points it is blocked on (the deadlock diagnosis)."""
        lines: List[str] = []
        for cname, shell in self.shells.items():
            for task in shell.task_table:
                if task.finished:
                    continue
                if not task.blocked_on:
                    lines.append(
                        f"  task {task.name!r} @ {cname}: unfinished, no denied "
                        f"GetSpace on record (mid-step or never scheduled)"
                    )
                    continue
                for row_id in sorted(task.blocked_on):
                    row = shell.stream_table[row_id]
                    kind = "producer" if row.is_producer else "consumer"
                    eos = "yes" if row.eos_position is not None else "no"
                    lines.append(
                        f"  task {task.name!r} @ {cname}: blocked on access point "
                        f"{row.stream}.{row.port} ({kind}, position={row.position}, "
                        f"available={row.available()}, granted={row.granted}, eos={eos})"
                    )
        return "\n".join(lines) if lines else "  (no unfinished tasks)"

    # ------------------------------------------------------------------
    # history recording (monitoring hook used by Shell.put_space)
    # ------------------------------------------------------------------
    def record_committed(self, row: StreamRow, n_bytes: int) -> None:
        """Append the just-committed (and flushed) bytes of a producer
        row to the stream's history — zero simulated cost, pure
        observation used for golden-equivalence checks.

        Below ``obs_level="full"`` the recording is skipped entirely:
        because it is zero-simulated-cost observation, skipping it
        cannot change the event schedule — cycles and counters stay
        identical across levels (asserted by tests and the bench).
        """
        if not self.obs.histories:
            return
        rec = self._histories.get(row.stream)
        if rec is None:  # pragma: no cover - defensive
            return
        for addr, length in row.buffer.segments(row.position, n_bytes):
            rec.extend(self.sram.read(addr, length))
        # undo the observation's effect on SRAM counters
        self.sram.total_reads -= len(row.buffer.segments(row.position, n_bytes))
        self.sram.bytes_read -= n_bytes

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, strict: bool = True) -> SystemResult:
        """Simulate until the application completes (or ``until``).

        ``strict`` raises :class:`StalledError` if the event queue
        drains with unfinished tasks (a genuine deadlock); pass False to
        get the partial result for inspection instead.
        """
        if not self._configured:
            raise RuntimeError("configure() must be called before run()")
        try:
            # with monitors active the queue never drains (watchdog /
            # detector timeouts keep it populated): stop on completion
            self.sim.run(
                until=until,
                stop=self.all_finished if self._monitors_active else None,
            )
        except DeadlockError:
            if strict:
                raise
        stalled = [
            t.name
            for shell in self.shells.values()
            for t in shell.task_table
            if not t.finished
        ]
        completed = not stalled
        if not completed and until is None and strict:
            raise StalledError(
                f"application stalled after {self.sim.now} cycles; "
                f"unfinished tasks: {stalled}\n{self.blocked_report()}"
            )
        return self._result(completed, stalled)

    def advance(self, until: int) -> bool:
        """Simulate forward to absolute cycle ``until`` and pause.

        Unlike :meth:`run` this neither finalizes the run nor bumps the
        clock past the last event when the queue drains early
        (``advance_time=False``), so a checkpointed
        ``advance(); advance(); ...; run()`` sequence ends at exactly
        the same final cycle — and hence the same :class:`SystemResult`
        — as one uninterrupted :meth:`run`.  Returns True once every
        task finished.  :class:`DeadlockError` propagates (a supervisor
        records it as the run's failure).
        """
        if not self._configured:
            raise RuntimeError("configure() must be called before advance()")
        if until < self.sim.now:
            raise ValueError(f"advance({until}) is in the past (now={self.sim.now})")
        self.sim.run(
            until=until,
            stop=self.all_finished if self._monitors_active else None,
            advance_time=False,
        )
        return self.all_finished()

    # ------------------------------------------------------------------
    # state export (checkpoint/restore and invariant monitors)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Deterministic, JSON-safe view of the complete system state.

        Everything an invariant monitor needs to check the shell
        protocol's bookkeeping, and everything a snapshot digests to
        cross-validate a replayed restore: stream/task tables, caches,
        scheduler positions, SRAM buffer contents, in-flight fabric
        messages, fault-injector progress, and the monotone counters.
        """
        import hashlib

        self.resilience["state_exports"] += 1
        return {
            "now": self.sim.now,
            "configured": self._configured,
            "unfinished_tasks": self._unfinished_tasks,
            "monitors_active": self._monitors_active,
            "mapping": dict(sorted(self.mapping.items())) if self._configured else {},
            "shells": {
                name: shell.export_state()
                for name, shell in sorted(self.shells.items())
            },
            "coprocessors": {
                name: {
                    "steps_total": c.steps_total,
                    "busy_cycles": c.utilization.busy_cycles(),
                }
                for name, c in sorted(self.coprocessors.items())
            },
            "sram": self.sram.export_state(),
            "fabric": self.fabric.export_state(),
            "fault_injector": (
                self.fault_injector.export_state() if self.fault_injector else None
            ),
            "histories": {
                name: {
                    "sha256": hashlib.sha256(bytes(data)).hexdigest(),
                    "length": len(data),
                }
                for name, data in sorted(self._histories.items())
            },
            "buses": {
                "read": {
                    "transactions": self.read_bus.stats.transactions,
                    "bytes_transferred": self.read_bus.stats.bytes_transferred,
                    "busy_cycles": self.read_bus.stats.busy_cycles,
                    "wait_cycles": self.read_bus.stats.wait_cycles,
                },
                "write": {
                    "transactions": self.write_bus.stats.transactions,
                    "bytes_transferred": self.write_bus.stats.bytes_transferred,
                    "busy_cycles": self.write_bus.stats.busy_cycles,
                    "wait_cycles": self.write_bus.stats.wait_cycles,
                },
            },
            "dram": {
                "bytes_read": self.dram.bytes_read,
                "bytes_written": self.dram.bytes_written,
            },
            "cpu_sync_ops": self.cpu_sync_ops,
            "cpu_busy_cycles": self.cpu_busy_cycles,
        }

    def state_digest(self) -> str:
        """SHA-256 over the canonical JSON form of :meth:`export_state`
        — the identity a restored snapshot must reproduce exactly."""
        import hashlib
        import json

        blob = json.dumps(
            self.export_state(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def _result(self, completed: bool, stalled: List[str]) -> SystemResult:
        tasks: Dict[str, TaskReport] = {}
        streams: Dict[str, StreamReport] = {}
        hit_rate: Dict[str, float] = {}
        for cname, shell in self.shells.items():
            hit_rate[cname] = shell.read_cache.stats.hit_rate()
            for t in shell.task_table:
                tasks[t.name] = TaskReport(
                    name=t.name,
                    coprocessor=cname,
                    steps_completed=t.steps_completed,
                    steps_aborted=t.steps_aborted,
                    busy_cycles=t.busy_cycles,
                    compute_cycles=t.compute_cycles,
                    stall_cycles=t.stall_cycles,
                )
            for row in shell.stream_table:
                rep = streams.setdefault(
                    row.stream,
                    StreamReport(name=row.stream, buffer_size=row.buffer.size),
                )
                rep.denied_getspace += row.denied_getspace
                rep.granted_getspace += row.granted_getspace
                rep.putspace_messages += row.putspace_messages_sent
                if row.is_producer:
                    rep.bytes_transferred = row.committed_bytes
                elif row.fill_stat is not None:
                    rep.fill_mean = max(rep.fill_mean, row.fill_stat.mean())
                    rep.fill_max = max(rep.fill_max, row.fill_stat.maximum)
        elapsed = self.sim.now
        robustness = None
        if self.fault_injector is not None or self.params.watchdog_timeout is not None:
            robustness = {
                "injected": (
                    self.fault_injector.stats.to_dict() if self.fault_injector else {}
                ),
                "messages_dropped": self.fabric.messages_dropped,
                "messages_delivered": self.fabric.messages_delivered,
                "watchdog_fires": sum(s.watchdog_fires for s in self.shells.values()),
                "retries_sent": sum(s.retries_sent for s in self.shells.values()),
                "recoveries": sum(s.recoveries for s in self.shells.values()),
                "corruptions_detected": sum(
                    s.corruptions_detected for s in self.shells.values()
                ),
            }
        # graceful-degradation accounting: any kernel may report via the
        # degradation_stats() duck-type (repro.media.conceal); None keeps
        # loss-free results byte-identical to the pre-network format
        degradation = None
        deg_tasks: Dict[str, Dict[str, object]] = {}
        for shell in self.shells.values():
            for t in shell.task_table:
                stats_fn = getattr(t.kernel, "degradation_stats", None)
                if stats_fn is None:
                    continue
                stats = stats_fn()
                if stats is not None:
                    deg_tasks[t.name] = dict(stats)
        if deg_tasks:
            diagnoses = []
            for tname in sorted(deg_tasks):
                for d in deg_tasks[tname].pop("diagnoses", []):
                    diagnoses.append({"task": tname, **d})
            degradation = {
                "tasks": {k: deg_tasks[k] for k in sorted(deg_tasks)},
                "diagnoses": diagnoses,
            }
        return SystemResult(
            cycles=elapsed,
            completed=completed,
            stalled_tasks=stalled,
            histories={k: bytes(v) for k, v in self._histories.items()},
            tasks=tasks,
            streams=streams,
            utilization={
                c.name: c.utilization.utilization() for c in self.coprocessors.values()
            },
            read_bus_utilization=self.read_bus.stats.utilization(elapsed),
            write_bus_utilization=self.write_bus.stats.utilization(elapsed),
            cache_hit_rate=hit_rate,
            messages_sent=self.fabric.messages_sent,
            cpu_sync_ops=self.cpu_sync_ops,
            cpu_busy_cycles=self.cpu_busy_cycles,
            robustness=robustness,
            degradation=degradation,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EclipseSystem {list(self.specs)} @ t={self.sim.now}>"
