"""Static analysis for Eclipse applications: ``repro verify``.

The configuration-time correctness layer in front of simulation:

* :mod:`repro.verify.graph_lint` — KPN/SDF graph lints (rates, buffer
  bounds, granularity, multicast, SRAM budget);
* :mod:`repro.verify.protocol` — abstract interpretation of kernels
  against the shell's window protocol;
* :mod:`repro.verify.astlint` — source-level lint for raw-primitive
  misuse;
* :mod:`repro.verify.diagnostics` — the rule registry and reporters;
* :mod:`repro.verify.corpus` — the seeded known-bad regression corpus;
* :mod:`repro.verify.run` — workload-level entry points;
* :mod:`repro.verify.trace_lint` — structural lints over exported
  Chrome-trace JSON (unclosed spans, schema violations);
* :mod:`repro.verify.constraints` — the declarative constraint model
  shared by the linter and the solver;
* :mod:`repro.verify.solve` / :mod:`repro.verify.solve_run` — the
  inverse direction: *derive* minimal buffer sizes, grains and
  mappings from an SRAM budget (``repro solve``).

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from repro.verify.astlint import lint_file, lint_module, lint_source
from repro.verify.corpus import CORPUS, CorpusCase, run_corpus
from repro.verify.diagnostics import RULES, Diagnostic, Report, Rule, Severity, rule
from repro.verify.graph_lint import declared_rates, lint_graph
from repro.verify.protocol import check_graph_protocol, check_kernel_protocol
from repro.verify.trace_lint import lint_chrome_trace, lint_trace_file
from repro.verify.run import (
    WORKLOADS,
    verify_all,
    verify_graph,
    verify_kernel_sources,
    verify_workload,
)
from repro.verify.solve import Solution, SolveError, solve_graph
from repro.verify.solve_run import (
    SOLVE_MODELS,
    check_solution,
    simulate_solution,
    solve_workload,
)

__all__ = [
    "Severity",
    "Rule",
    "RULES",
    "rule",
    "Diagnostic",
    "Report",
    "lint_graph",
    "declared_rates",
    "check_kernel_protocol",
    "check_graph_protocol",
    "lint_source",
    "lint_file",
    "lint_module",
    "CorpusCase",
    "CORPUS",
    "run_corpus",
    "verify_graph",
    "verify_workload",
    "verify_all",
    "verify_kernel_sources",
    "WORKLOADS",
    "lint_chrome_trace",
    "lint_trace_file",
    "Solution",
    "SolveError",
    "solve_graph",
    "solve_workload",
    "check_solution",
    "simulate_solution",
    "SOLVE_MODELS",
]
