"""Configuration-time graph lints: structure, rates, buffers, SRAM.

The rule-based companion to :meth:`ApplicationGraph.validate` and
:mod:`repro.kahn.analysis`: instead of raising on the first structural
problem, :func:`lint_graph` collects every finding as a
:class:`~repro.verify.diagnostics.Diagnostic` so an application
architect sees the whole picture before any simulation.

Since PR 9 the per-stream predicates live in
:mod:`repro.verify.constraints` as declarative constraint objects — the
*same* objects the configuration solver (:mod:`repro.verify.solve`)
propagates over interval domains, so "the linter accepts it" and "the
solver derives it" are provably the same constraint system.

Checks implemented (rule IDs in :mod:`repro.verify.diagnostics`):

* **G001** — structural validity (delegates to ``graph.validate()``).
* **G002** — SDF rate consistency via the repetition vector, using the
  declared port granularities as bytes-per-firing rates (engaged only
  when *every* connected port declares a grain > 1, or when an explicit
  ``rates`` mapping is passed).
* **G003** — every stream buffer must hold the largest sync grain of
  its endpoints, or that GetSpace can never be granted (paper §2.2).
* **G004** — buffers on dependency cycles must hold one producer grain
  plus one consumer grain, the classic sufficient-buffer bound for
  deadlock freedom of feedback loops under finite buffering.
* **G005/G006** — sync-grain and cache-line divisibility of buffers.
* **G007** — multicast consumers should agree on the sync grain.
* **G008** — the whole allocation must fit the instance SRAM
  (delegates to :func:`repro.core.sizing.plan_buffers`).
* **G009** — more weakly-connected components than the graph declares
  (``expected_components``, default 1).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

from repro.kahn.analysis import RateInconsistencyError, repetition_vector
from repro.kahn.graph import ApplicationGraph, GraphError

from repro.verify.constraints import (
    STREAM_RULES,
    BudgetConstraint,
    CycleBufferRule,
    stream_facts,
)
from repro.verify.diagnostics import Diagnostic, Report

__all__ = ["lint_graph", "declared_rates"]

RatesArg = Union[str, None, Mapping[Tuple[str, str], int]]

#: the per-stream rules in the order the linter has always reported:
#: local checks first (G003/G005/G006/G007), cycle bounds afterwards
_LOCAL_RULES = tuple(r for r in STREAM_RULES if not isinstance(r, CycleBufferRule))
_CYCLE_RULE = next(r for r in STREAM_RULES if isinstance(r, CycleBufferRule))


def declared_rates(graph: ApplicationGraph) -> Optional[Dict[Tuple[str, str], int]]:
    """Port granularities as SDF rates, or None when undeclared.

    A graph "declares rates" when every connected port carries a sync
    granularity > 1 (the default of 1 means "unspecified" — engaging
    the balance equations on defaults would only ever prove the
    trivial all-ones vector).
    """
    rates: Dict[Tuple[str, str], int] = {}
    for task in graph.tasks.values():
        for p in task.ports:
            rates[(task.name, p.name)] = p.granularity
    if not rates or any(r <= 1 for r in rates.values()):
        return None
    return rates


def lint_graph(
    graph: ApplicationGraph,
    rates: RatesArg = "auto",
    cache_line: int = 32,
    sram_size: Optional[int] = None,
) -> Report:
    """Run every configuration-time check on ``graph``.

    ``rates`` is ``"auto"`` (derive from port granularities), ``None``
    (skip the rate check) or an explicit ``(task, port) -> bytes``
    mapping.  ``sram_size`` enables the G008 budget check; pass the
    instance's :attr:`SystemParams.sram_size`.
    """
    report = Report()

    # ---- G001: structure; everything else needs a valid graph --------
    try:
        graph.validate()
    except GraphError as e:
        report.add(Diagnostic("G001", str(e), source=graph.name))
        return report

    # ---- G002: SDF balance equations ---------------------------------
    resolved = declared_rates(graph) if rates == "auto" else rates
    if resolved:
        try:
            repetition_vector(graph, resolved)
        except RateInconsistencyError as e:
            report.add(Diagnostic("G002", str(e), source=graph.name))
        except GraphError as e:
            # missing/zero rate in an explicit mapping
            report.add(Diagnostic("G002", str(e), source=graph.name))
    else:
        report.note(f"{graph.name}: rate check skipped (no rates declared)")

    # ---- per-stream constraint checks (shared with the solver) -------
    facts = stream_facts(graph, cache_line=cache_line)
    for name, edge in graph.streams.items():
        for rule in _LOCAL_RULES:
            for diag in rule.check(facts[name], edge.buffer_size):
                report.add(diag)

    # ---- G004: sufficient buffering on cycles ------------------------
    for name, edge in graph.streams.items():
        for diag in _CYCLE_RULE.check(facts[name], edge.buffer_size):
            report.add(diag)

    # ---- G008: SRAM budget -------------------------------------------
    if sram_size is not None and graph.streams:
        budget = BudgetConstraint(sram_size=sram_size, cache_line=cache_line)
        sizes = {name: e.buffer_size for name, e in graph.streams.items()}
        for diag in budget.check(graph, sizes):
            report.add(diag)

    # ---- G009: connectivity ------------------------------------------
    import networkx as nx

    nxg = graph.to_networkx()
    if len(nxg) > 1:
        expected = max(1, getattr(graph, "expected_components", 1))
        n_components = nx.number_weakly_connected_components(nxg)
        if n_components > expected:
            report.add(Diagnostic(
                "G009",
                f"graph splits into {n_components} disconnected components"
                f" ({expected} declared via expected_components)",
                source=graph.name,
            ))
    return report
