"""Configuration-time graph lints: structure, rates, buffers, SRAM.

The rule-based companion to :meth:`ApplicationGraph.validate` and
:mod:`repro.kahn.analysis`: instead of raising on the first structural
problem, :func:`lint_graph` collects every finding as a
:class:`~repro.verify.diagnostics.Diagnostic` so an application
architect sees the whole picture before any simulation.

Checks implemented (rule IDs in :mod:`repro.verify.diagnostics`):

* **G001** — structural validity (delegates to ``graph.validate()``).
* **G002** — SDF rate consistency via the repetition vector, using the
  declared port granularities as bytes-per-firing rates (engaged only
  when *every* connected port declares a grain > 1, or when an explicit
  ``rates`` mapping is passed).
* **G003** — every stream buffer must hold the largest sync grain of
  its endpoints, or that GetSpace can never be granted (paper §2.2).
* **G004** — buffers on dependency cycles must hold one producer grain
  plus one consumer grain, the classic sufficient-buffer bound for
  deadlock freedom of feedback loops under finite buffering.
* **G005/G006** — sync-grain and cache-line divisibility of buffers.
* **G007** — multicast consumers should agree on the sync grain.
* **G008** — the whole allocation must fit the instance SRAM
  (delegates to :func:`repro.core.sizing.plan_buffers`).
* **G009** — more than one weakly-connected component.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.kahn.analysis import RateInconsistencyError, repetition_vector
from repro.kahn.graph import ApplicationGraph, GraphError, PortRef, StreamEdge

from repro.verify.diagnostics import Diagnostic, Report

__all__ = ["lint_graph", "declared_rates"]

RatesArg = Union[str, None, Mapping[Tuple[str, str], int]]


def declared_rates(graph: ApplicationGraph) -> Optional[Dict[Tuple[str, str], int]]:
    """Port granularities as SDF rates, or None when undeclared.

    A graph "declares rates" when every connected port carries a sync
    granularity > 1 (the default of 1 means "unspecified" — engaging
    the balance equations on defaults would only ever prove the
    trivial all-ones vector).
    """
    rates: Dict[Tuple[str, str], int] = {}
    for task in graph.tasks.values():
        for p in task.ports:
            rates[(task.name, p.name)] = p.granularity
    if not rates or any(r <= 1 for r in rates.values()):
        return None
    return rates


def _grain(graph: ApplicationGraph, ref: PortRef) -> int:
    return graph.tasks[ref.task].port(ref.port).granularity


def _endpoint_grains(graph: ApplicationGraph, edge: StreamEdge):
    yield edge.producer, _grain(graph, edge.producer)
    for c in edge.consumers:
        yield c, _grain(graph, c)


def lint_graph(
    graph: ApplicationGraph,
    rates: RatesArg = "auto",
    cache_line: int = 32,
    sram_size: Optional[int] = None,
) -> Report:
    """Run every configuration-time check on ``graph``.

    ``rates`` is ``"auto"`` (derive from port granularities), ``None``
    (skip the rate check) or an explicit ``(task, port) -> bytes``
    mapping.  ``sram_size`` enables the G008 budget check; pass the
    instance's :attr:`SystemParams.sram_size`.
    """
    report = Report()

    # ---- G001: structure; everything else needs a valid graph --------
    try:
        graph.validate()
    except GraphError as e:
        report.add(Diagnostic("G001", str(e), source=graph.name))
        return report

    # ---- G002: SDF balance equations ---------------------------------
    resolved = declared_rates(graph) if rates == "auto" else rates
    if resolved:
        try:
            repetition_vector(graph, resolved)
        except RateInconsistencyError as e:
            report.add(Diagnostic("G002", str(e), source=graph.name))
        except GraphError as e:
            # missing/zero rate in an explicit mapping
            report.add(Diagnostic("G002", str(e), source=graph.name))
    else:
        report.note(f"{graph.name}: rate check skipped (no rates declared)")

    # ---- per-stream buffer/grain checks ------------------------------
    for name, edge in graph.streams.items():
        grains = list(_endpoint_grains(graph, edge))
        worst_ref, worst = max(grains, key=lambda pair: pair[1])
        if edge.buffer_size < worst:
            report.add(Diagnostic(
                "G003",
                f"buffer of {edge.buffer_size} B cannot hold the "
                f"{worst} B sync grain of {worst_ref} — GetSpace({worst}) "
                f"can never be granted",
                task=worst_ref.task, port=worst_ref.port, stream=name,
            ))
        for ref, grain in grains:
            if grain > 1 and edge.buffer_size % grain != 0:
                report.add(Diagnostic(
                    "G005",
                    f"buffer of {edge.buffer_size} B is not a multiple of "
                    f"the {grain} B sync grain",
                    task=ref.task, port=ref.port, stream=name,
                ))
        if cache_line > 1 and edge.buffer_size % cache_line != 0:
            padded = -(-edge.buffer_size // cache_line) * cache_line
            report.add(Diagnostic(
                "G006",
                f"buffer of {edge.buffer_size} B is not cache-line aligned; "
                f"configure() will pad it to {padded} B",
                task=edge.producer.task, port=edge.producer.port, stream=name,
            ))
        if edge.is_multicast:
            cons_grains = {_grain(graph, c) for c in edge.consumers}
            if len(cons_grains) > 1:
                report.add(Diagnostic(
                    "G007",
                    f"multicast consumers declare differing sync grains "
                    f"{sorted(cons_grains)}",
                    task=edge.producer.task, port=edge.producer.port, stream=name,
                ))

    # ---- G004: sufficient buffering on cycles ------------------------
    _lint_cycles(graph, report)

    # ---- G008: SRAM budget -------------------------------------------
    if sram_size is not None and graph.streams:
        from repro.core.sizing import plan_buffers

        plan = plan_buffers(
            graph,
            {name: e.buffer_size for name, e in graph.streams.items()},
            elasticity=1,
            line_pad=max(1, cache_line),
            sram_size=sram_size,
        )
        if not plan.fits:
            report.add(Diagnostic(
                "G008",
                f"buffers need {plan.total_bytes} B but the instance SRAM "
                f"holds {plan.sram_size} B (over by {-plan.headroom()} B)",
                source=graph.name,
            ))

    # ---- G009: connectivity ------------------------------------------
    import networkx as nx

    nxg = graph.to_networkx()
    if len(nxg) > 1:
        n_components = nx.number_weakly_connected_components(nxg)
        if n_components > 1:
            report.add(Diagnostic(
                "G009",
                f"graph splits into {n_components} disconnected components",
                source=graph.name,
            ))
    return report


def _lint_cycles(graph: ApplicationGraph, report: Report, max_cycles: int = 64) -> None:
    """G004: each cycle edge must buffer producer + consumer grains."""
    import networkx as nx

    nxg = graph.to_networkx()
    flagged = set()
    for cycle in islice(nx.simple_cycles(nxg), max_cycles):
        n = len(cycle)
        for i, u in enumerate(cycle):
            v = cycle[(i + 1) % n]
            for name, edge in graph.streams.items():
                if name in flagged or edge.producer.task != u:
                    continue
                for cons in edge.consumers:
                    if cons.task != v:
                        continue
                    need = _grain(graph, edge.producer) + _grain(graph, cons)
                    if edge.buffer_size < need:
                        flagged.add(name)
                        report.add(Diagnostic(
                            "G004",
                            f"buffer of {edge.buffer_size} B on cycle "
                            f"{' -> '.join(cycle + [cycle[0]])} is below the "
                            f"deadlock-freedom bound of {need} B "
                            f"(producer grain + consumer grain)",
                            task=cons.task, port=cons.port, stream=name,
                        ))
