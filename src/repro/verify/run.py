"""End-to-end verification entry points: graphs, workloads, modules.

:func:`verify_graph` is the one-call combination of the graph linter
and the kernel protocol checker.  :func:`verify_workload` applies it to
a named factory from :mod:`repro.workloads`, deriving the cache-line
and SRAM parameters from the instance the factory builds — the same
numbers ``EclipseSystem.configure`` would enforce dynamically.
:func:`verify_all` is what the CI verify job and ``repro verify``
(without arguments) run.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.kahn.graph import ApplicationGraph

from repro.verify.diagnostics import Report
from repro.verify.graph_lint import lint_graph
from repro.verify.protocol import check_graph_protocol

__all__ = [
    "verify_graph",
    "verify_workload",
    "verify_all",
    "verify_kernel_sources",
    "WORKLOADS",
]


def verify_graph(
    graph: ApplicationGraph,
    cache_line: int = 32,
    sram_size: Optional[int] = None,
    max_steps: int = 12,
) -> Report:
    """Lint the graph, then protocol-check its kernels.

    A structurally broken graph (G001) skips the protocol pass: the
    kernels cannot be matched to streams, and one actionable diagnostic
    beats a cascade of follow-on noise.
    """
    report = lint_graph(graph, cache_line=cache_line, sram_size=sram_size)
    if "G001" in report.rule_ids():
        report.note(f"{graph.name}: protocol check skipped (graph is invalid)")
        return report
    report.extend(check_graph_protocol(graph, max_steps=max_steps))
    return report


# ---------------------------------------------------------------------------
# named workloads (every factory in repro.workloads)
# ---------------------------------------------------------------------------
def _quickstart():
    from repro.workloads import quickstart_run

    return quickstart_run(payload_len=512)


def _conformance_pipeline():
    from repro.workloads import conformance_run

    return conformance_run(graph="pipeline", payload_len=256)


def _conformance_diamond():
    from repro.workloads import conformance_run

    return conformance_run(graph="diamond", payload_len=256)


def _decode():
    from repro.workloads import decode_run

    return decode_run(width=48, height=32, frames=2, gop_n=2, gop_m=2)


def _explore_decode():
    from repro.media import CodecParams, encode_sequence, synthetic_sequence
    from repro.workloads import explore_decode_run

    codec = CodecParams(width=48, height=32, gop_n=2, gop_m=2)
    seq = synthetic_sequence(codec.width, codec.height, 2, noise=1.0)
    bitstream, _, _ = encode_sequence(seq, codec)
    return explore_decode_run(bitstream)


def _conferencing():
    from repro.workloads import conferencing_run

    return conferencing_run(frames=3, gop_n=3, gop_m=1, audio_blocks=3,
                            loss_spec="moderate", loss_seed=1)


def _timeshift_loss():
    from repro.workloads import timeshift_loss_run

    return timeshift_loss_run(frames=2, gop_n=2, gop_m=2, audio_blocks=2,
                              loss_spec="mild", loss_seed=1)


def _multistream():
    from repro.workloads import multistream_contention_run

    return multistream_contention_run(frames=2, gop_n=2, gop_m=2,
                                      audio_blocks=2)


#: name -> zero-arg factory returning (EclipseSystem, ApplicationGraph);
#: small parameterizations of every factory in :mod:`repro.workloads`
WORKLOADS: Dict[str, Callable[[], tuple]] = {
    "quickstart": _quickstart,
    "conformance-pipeline": _conformance_pipeline,
    "conformance-diamond": _conformance_diamond,
    "decode": _decode,
    "explore-decode": _explore_decode,
    "conferencing": _conferencing,
    "timeshift-loss": _timeshift_loss,
    "multistream": _multistream,
}


def _instance_params(system) -> Tuple[int, int]:
    """(cache_line, sram_size) the instance would enforce."""
    cache_line = max(spec.shell.cache_line for spec in system.specs.values())
    return cache_line, system.params.sram_size


def verify_workload(name: str, max_steps: int = 12) -> Report:
    """Statically verify one named workload factory."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(WORKLOADS)}") from None
    system, graph = factory()
    cache_line, sram_size = _instance_params(system)
    return verify_graph(graph, cache_line=cache_line, sram_size=sram_size, max_steps=max_steps)


def verify_all(max_steps: int = 12) -> Dict[str, Report]:
    """Verify every named workload (the CI gate)."""
    return {name: verify_workload(name, max_steps=max_steps) for name in WORKLOADS}


def verify_kernel_sources() -> Report:
    """AST-lint the shipped kernel modules (raw-primitive misuse)."""
    from repro.kahn import library
    from repro.media import tasks
    from repro.verify.astlint import lint_module

    report = Report()
    for mod in (library, tasks):
        report.extend(lint_module(mod))
    return report
