"""The diagnostic engine: rules, diagnostics, reports, reporters.

Every check in :mod:`repro.verify` emits :class:`Diagnostic` records
tagged with a rule from the central :data:`RULES` registry, so the CLI,
CI and the tests all consume one uniform shape.  A rule has a stable ID
(``G…`` graph lints, ``P…`` protocol checks, ``A…`` AST lints, ``O…``
trace lints, ``S…`` solver diagnoses, ``V…`` verifier-internal), a
default severity, and a one-line contract; the catalogue in
``docs/static-analysis.md`` is *generated* from this registry
(``scripts/gen_rule_docs.py``) so docs and code cannot drift.

Severity semantics follow the acceptance contract of the subsystem:
``ERROR`` means the configuration *will* misbehave (never-grantable
request, protocol violation, unsolvable balance equations) and makes
``repro verify`` exit non-zero; ``WARNING`` flags likely trouble
(under-buffered cycles, grain misalignment); ``INFO`` is advisory
(cache-line padding the system will apply anyway).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

__all__ = [
    "Severity",
    "Rule",
    "RULES",
    "Diagnostic",
    "Report",
    "rule",
]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One entry of the rule catalogue."""

    id: str
    title: str
    severity: Severity
    summary: str


#: the central rule registry; stable IDs — never renumber, only add
RULES: Dict[str, Rule] = {}


def _register(id: str, title: str, severity: Severity, summary: str) -> Rule:
    if id in RULES:
        raise ValueError(f"duplicate rule id {id!r}")
    r = Rule(id, title, severity, summary)
    RULES[id] = r
    return r


def rule(id: str) -> Rule:
    """Look up a rule by ID (KeyError with the known IDs on miss)."""
    try:
        return RULES[id]
    except KeyError:
        raise KeyError(f"unknown rule {id!r}; known: {sorted(RULES)}") from None


# ---------------------------------------------------------------------------
# graph lints (configuration-time, paper §2/§5)
# ---------------------------------------------------------------------------
_register("G001", "graph-structure", Severity.ERROR,
          "structural validation failed (unbound port, direction mismatch, "
          "unknown task, double-bound port)")
_register("G002", "rate-inconsistency", Severity.ERROR,
          "the SDF balance equations over the declared port rates have no "
          "non-trivial solution — the graph needs unbounded buffering or starves")
_register("G003", "buffer-underflow", Severity.ERROR,
          "a stream buffer is smaller than the largest sync grain of its "
          "endpoints — that GetSpace can never be granted (paper §2.2)")
_register("G004", "cycle-underbuffered", Severity.WARNING,
          "a buffer on a dependency cycle cannot hold one producer grain plus "
          "one consumer grain — the feedback loop risks artificial deadlock")
_register("G005", "grain-misaligned", Severity.WARNING,
          "buffer size is not a multiple of an endpoint's sync granularity — "
          "sync units wrap mid-buffer and full occupancy is unreachable")
_register("G006", "line-misaligned", Severity.INFO,
          "buffer size is not a multiple of the cache-line/transport "
          "granularity — configure() will pad the allocation")
_register("G007", "multicast-grain-mismatch", Severity.WARNING,
          "consumers of one multicast stream declare different sync "
          "granularities — their commit patterns cannot interleave cleanly")
_register("G008", "sram-overflow", Severity.ERROR,
          "the buffer allocation plan does not fit the instance SRAM")
_register("G009", "disconnected-graph", Severity.WARNING,
          "the graph has more weakly-connected components than it declares "
          "— likely a forgotten stream (deliberate ∥ composition should "
          "raise graph.expected_components; blanket-suppress with "
          "--ignore G009)")

# ---------------------------------------------------------------------------
# kernel shell-protocol checks (abstract interpretation, paper §3.2/§4.2)
# ---------------------------------------------------------------------------
_register("P101", "read-outside-window", Severity.ERROR,
          "Read beyond the window granted by GetSpace")
_register("P102", "write-outside-window", Severity.ERROR,
          "Write beyond the window granted by GetSpace")
_register("P103", "putspace-overcommit", Severity.ERROR,
          "PutSpace commits more bytes than the acquired window holds")
_register("P104", "commit-on-abort", Severity.ERROR,
          "a step committed via PutSpace and then returned ABORTED — the "
          "scheduler's redo would duplicate the committed data (paper §4.2)")
_register("P105", "port-misuse", Severity.ERROR,
          "an op names an undeclared port or the wrong direction "
          "(Read on an output, Write on an input)")
_register("P106", "step-contract", Severity.ERROR,
          "Kernel.step is not a generator of ops returning a StepOutcome")
_register("P107", "getspace-exceeds-buffer", Severity.ERROR,
          "a GetSpace request is larger than the attached stream buffer — "
          "the shell can never grant it")

# ---------------------------------------------------------------------------
# AST lints over kernel source
# ---------------------------------------------------------------------------
_register("A201", "unyielded-op", Severity.ERROR,
          "a KernelContext op factory result is discarded instead of yielded "
          "— the primitive is never issued to the shell")
_register("A202", "raw-op-construction", Severity.WARNING,
          "an op record is constructed directly instead of through the "
          "KernelContext factories, bypassing port/direction validation")
_register("A203", "unsafe-kernel-state", Severity.WARNING,
          "a kernel accumulates unbounded Python state (list/dict/set/"
          "bytearray attributes) without declaring it via __getstate__ or "
          "STATE_FIELDS — checkpoint/restore cannot capture the kernel "
          "deterministically (docs/resilience.md)")

# ---------------------------------------------------------------------------
# observability lints (exported trace structure; docs/observability.md)
# ---------------------------------------------------------------------------
_register("O301", "span-unclosed", Severity.WARNING,
          "a span was opened but never closed (exported as a bare 'B' event) "
          "— the traced run ended mid-step, or an instrumented generator was "
          "abandoned; durations downstream of it are untrustworthy")
_register("O302", "trace-schema", Severity.ERROR,
          "an exported Chrome-trace event violates the trace schema (missing "
          "required field, unknown phase, wrong container shape) — Perfetto "
          "may silently drop it")
_register("O303", "span-negative-duration", Severity.ERROR,
          "a complete span has a negative duration or ends before it starts — "
          "recording bug or clock misuse; the timeline is unrenderable")

# ---------------------------------------------------------------------------
# solver diagnoses (constraint-based auto-configuration, `repro solve`)
# ---------------------------------------------------------------------------
_register("S401", "budget-infeasible", Severity.ERROR,
          "the SRAM budget is below the minimal feasible allocation — no "
          "buffer assignment can satisfy the grain/cycle bounds; the "
          "diagnosis names the binding per-stream constraint")
_register("S402", "empty-domain", Severity.ERROR,
          "constraint propagation emptied a variable's interval domain — "
          "two bounds contradict each other, so no configuration exists")
_register("S403", "no-consistent-grain", Severity.ERROR,
          "no candidate grain assignment satisfies rate consistency, "
          "multicast agreement and the SRAM budget together (the bounded "
          "branch-and-bound search was exhausted)")
_register("S404", "unmappable-task", Severity.ERROR,
          "a task cannot be placed on any coprocessor of the instance "
          "(declared mapping names an unknown unit, or no unit has capacity)")
_register("S405", "refinement-exhausted", Severity.ERROR,
          "counterexample-guided refinement hit its round bound before the "
          "derived configuration simulated to completion — the graph needs "
          "buffering beyond the static bounds and the budget (or round "
          "limit) will not admit it")

# ---------------------------------------------------------------------------
# network ingest / graceful degradation (repro.net; docs/networking.md)
# ---------------------------------------------------------------------------
_register("N501", "conceal-over-budget", Severity.WARNING,
          "unrecoverable network loss forced more frame concealment than the "
          "task's budget allows — playback continues but quality is degraded "
          "beyond the acceptable envelope (raise the FEC group rate, RTX "
          "attempts or the loss deadline)")
_register("N502", "header-concealed", Severity.WARNING,
          "a stream's sequence header was lost on the network and "
          "reconstructed from the configured codec parameters — decode "
          "correctness rests entirely on the out-of-band configuration")

# ---------------------------------------------------------------------------
# verifier-internal
# ---------------------------------------------------------------------------
_register("V001", "corpus-miss", Severity.ERROR,
          "a seeded mutation-corpus violation was not flagged by the checker")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a task/port/stream location."""

    rule_id: str
    message: str
    task: Optional[str] = None
    port: Optional[str] = None
    stream: Optional[str] = None
    #: e.g. ``path/to/file.py:123`` for AST lints, or a workload name
    source: Optional[str] = None
    #: override of the rule's default severity (rarely needed)
    severity_override: Optional[Severity] = None

    @property
    def severity(self) -> Severity:
        if self.severity_override is not None:
            return self.severity_override
        return rule(self.rule_id).severity

    @property
    def location(self) -> str:
        """Canonical ``task.port`` locator (the message-format contract)."""
        parts = []
        if self.task is not None:
            parts.append(f"{self.task}.{self.port}" if self.port else self.task)
        elif self.port is not None:
            parts.append(f"?.{self.port}")
        if self.stream is not None:
            parts.append(f"stream {self.stream!r}")
        if self.source is not None:
            parts.append(self.source)
        return ", ".join(parts) or "<graph>"

    def render(self) -> str:
        return f"{self.rule_id} {self.severity}: {self.location}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "title": rule(self.rule_id).title,
            "severity": str(self.severity),
            "task": self.task,
            "port": self.port,
            "stream": self.stream,
            "source": self.source,
            "message": self.message,
        }


@dataclass
class Report:
    """An ordered collection of diagnostics plus checker notes.

    ``notes`` records non-findings (e.g. a kernel whose data-dependent
    step could not be driven further on synthetic input) so "no
    diagnostics" is distinguishable from "nothing was checked".
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def extend(self, other: "Report") -> "Report":
        self.diagnostics.extend(other.diagnostics)
        self.notes.extend(other.notes)
        return self

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- selection ------------------------------------------------------
    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def rule_ids(self) -> set:
        return {d.rule_id for d in self.diagnostics}

    def ignoring(self, rule_ids: Iterable[str]) -> "Report":
        """Copy with the given rules suppressed (the CLI ``--ignore``)."""
        drop = set(rule_ids)
        for rid in drop:
            rule(rid)  # reject typos loudly
        return Report(
            diagnostics=[d for d in self.diagnostics if d.rule_id not in drop],
            notes=list(self.notes),
        )

    @property
    def exit_code(self) -> int:
        """The CLI contract: non-zero iff an error-severity finding."""
        return 1 if self.has_errors else 0

    # -- reporters ------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.by_severity(Severity.INFO)),
        }

    def render_text(self, verbose: bool = False) -> str:
        lines = [d.render() for d in sorted(
            self.diagnostics, key=lambda d: (-int(d.severity), d.rule_id, d.location)
        )]
        if verbose:
            lines += [f"note: {n}" for n in self.notes]
        c = self.counts()
        lines.append(
            f"{c['error']} error(s), {c['warning']} warning(s), {c['info']} info(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "notes": list(self.notes),
            "counts": self.counts(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
