"""Workload-level auto-configuration: ``repro solve``.

:mod:`repro.verify.solve` works on bare graphs; this module binds it to
the shipped workload factories (the same names ``repro verify`` knows,
:data:`repro.verify.run.WORKLOADS`) and closes the loop against the
simulator:

* each :class:`SolveModel` knows how to build a *fresh* (system, graph)
  pair — required because an :class:`EclipseSystem` configures once —
  plus the workload's worst-case request hints and, where the factory
  exposes the sync chunk, the grain candidates;
* the CEGAR ``refine`` runner rebuilds the workload with the candidate
  buffer sizes, simulates it on the **fast** engine (byte-identical to
  the reference engine by the PR 7 equivalence proof, so refining
  against it is sound) and feeds any deadlock diagnosis back into the
  solver;
* :func:`solve_workload` is the CLI/service entry point, and
  :func:`check_solution` is the round-trip gate: the derived
  configuration must pass the full ``repro verify`` pipeline with zero
  findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.shell import ShellProtocolError
from repro.core.system import StalledError
from repro.kahn.graph import ApplicationGraph

from repro.verify.diagnostics import Diagnostic, Report
from repro.verify.run import _instance_params, verify_graph
from repro.verify.solve import (
    DEFAULT_MAX_REFINE,
    Solution,
    SolveError,
    solve_graph,
)

__all__ = [
    "SolveModel",
    "SOLVE_MODELS",
    "solve_workload",
    "check_solution",
    "simulate_solution",
]


@dataclass
class SolveModel:
    """How to rebuild and re-simulate one named workload.

    ``build(engine, grain)`` returns a fresh unconfigured
    ``(EclipseSystem, ApplicationGraph)``; ``grain`` is only honoured
    when ``grain_candidates`` is non-empty (the factory exposes its
    sync chunk).  ``worst_requests(graph)`` maps stream name -> the
    largest GetSpace either endpoint will issue, for workloads whose
    kernels request more than their declared port grain (the media
    pipeline declares grain 1 but moves whole packets).
    """

    name: str
    build: Callable[..., Tuple[object, ApplicationGraph]]
    worst_requests: Optional[Callable[[ApplicationGraph], Dict[str, int]]] = None
    grain_candidates: Tuple[int, ...] = ()
    refinable: bool = True


# ---------------------------------------------------------------------------
# the shipped models (same keys as repro.verify.run.WORKLOADS)
# ---------------------------------------------------------------------------
def _build_quickstart(engine: str = "fast", grain: Optional[int] = None):
    from repro.workloads import quickstart_run

    return quickstart_run(payload_len=512, engine=engine)


def _build_conformance(shape: str, engine: str = "fast", grain: Optional[int] = None):
    from repro.workloads import conformance_run

    kwargs = dict(graph=shape, payload_len=256, fault_spec="none", engine=engine)
    if grain is not None:
        kwargs["chunk"] = grain
    return conformance_run(**kwargs)


def _build_conformance_pipeline(engine: str = "fast", grain: Optional[int] = None):
    return _build_conformance("pipeline", engine, grain)


def _build_conformance_diamond(engine: str = "fast", grain: Optional[int] = None):
    return _build_conformance("diamond", engine, grain)


def _build_decode(engine: str = "fast", grain: Optional[int] = None):
    from repro.workloads import decode_run

    return decode_run(width=48, height=32, frames=2, gop_n=2, gop_m=2, engine=engine)


def _build_explore_decode(engine: str = "fast", grain: Optional[int] = None):
    from repro.media import CodecParams, encode_sequence, synthetic_sequence
    from repro.workloads import explore_decode_run

    codec = CodecParams(width=48, height=32, gop_n=2, gop_m=2)
    seq = synthetic_sequence(codec.width, codec.height, 2, noise=1.0)
    bitstream, _, _ = encode_sequence(seq, codec)
    return explore_decode_run(bitstream, engine=engine)


def _build_conferencing(engine: str = "fast", grain: Optional[int] = None):
    from repro.workloads import conferencing_run

    return conferencing_run(frames=3, gop_n=3, gop_m=1, audio_blocks=3,
                            loss_spec="moderate", loss_seed=1, engine=engine)


def _build_timeshift_loss(engine: str = "fast", grain: Optional[int] = None):
    from repro.workloads import timeshift_loss_run

    return timeshift_loss_run(frames=2, gop_n=2, gop_m=2, audio_blocks=2,
                              loss_spec="mild", loss_seed=1, engine=engine)


def _build_multistream(engine: str = "fast", grain: Optional[int] = None):
    from repro.workloads import multistream_contention_run

    return multistream_contention_run(frames=2, gop_n=2, gop_m=2,
                                      audio_blocks=2, engine=engine)


def _decode_worst(graph: ApplicationGraph) -> Dict[str, int]:
    """The media kernels declare grain 1 (they move whole variable-size
    packets); the honest static bound is one worst-case packet per
    stream, from the same table ``decode_graph`` sizes from."""
    from repro.media.pipelines import default_buffer_sizes

    one = default_buffer_sizes(1)
    hints = {
        "coef": one["coef"],
        "mv": one["mv"],
        "dequant": one["coef_i16"],
        "resid": one["residual"],
        "recon": one["pixels"],
    }
    return {name: hints[name] for name in hints if name in graph.streams}


def _av_worst(graph: ApplicationGraph) -> Dict[str, int]:
    """Worst-case request hints for the demux+audio+video networks,
    including their ∥-composed forms (``b_``/``play_`` prefixes from
    the multistream and time-shift workloads) and the encoder half of
    the time-shift record side."""
    from repro.media.audio import BLOCK_BYTES, BLOCK_SAMPLES
    from repro.media.pipelines import default_buffer_sizes
    from repro.media.transport import TS_HEADER, TS_PACKET

    one = default_buffer_sizes(1)
    payload = TS_PACKET - TS_HEADER  # the demux writes whole TS payloads
    base = {
        # demux + decode half
        "video_es": 2048,
        "audio_es": max(payload, BLOCK_BYTES),
        "pcm": BLOCK_SAMPLES * 2,
        "coef": one["coef"],
        "mv": one["mv"],
        "dequant": one["coef_i16"],
        "resid": one["residual"],
        "recon": one["pixels"],
        # encoder half (time-shift record side); the me↔recon feedback
        # loop runs a frame ahead, so each cycle edge must hold the
        # in-flight macroblock window of both endpoints (2 + 2 grains)
        "resid_f": one["residual"],
        "pred": one["pixels"] * 4,
        "coef_f": one["coef_f64"],
        "symbols": one["coef"],
        "levels": one["levels"],
        "dequant_r": one["coef_i16"],
        "resid_r": one["residual"],
        "refs": one["pixels"] * 4,
    }
    hints: Dict[str, int] = {}
    for name in graph.streams:
        stem = name
        for prefix in ("b_", "play_"):
            if stem.startswith(prefix):
                stem = stem[len(prefix):]
        if stem in base:
            hints[name] = base[stem]
    return hints


#: workload name -> solve model; keys match repro.verify.run.WORKLOADS
SOLVE_MODELS: Dict[str, SolveModel] = {
    "quickstart": SolveModel("quickstart", _build_quickstart),
    "conformance-pipeline": SolveModel(
        "conformance-pipeline",
        _build_conformance_pipeline,
        grain_candidates=(8, 16, 32, 64),
    ),
    "conformance-diamond": SolveModel(
        "conformance-diamond",
        _build_conformance_diamond,
        grain_candidates=(8, 16, 32, 64),
    ),
    "decode": SolveModel("decode", _build_decode, worst_requests=_decode_worst),
    "explore-decode": SolveModel(
        "explore-decode", _build_explore_decode, worst_requests=_decode_worst
    ),
    "conferencing": SolveModel(
        "conferencing", _build_conferencing, worst_requests=_av_worst
    ),
    "timeshift-loss": SolveModel(
        "timeshift-loss", _build_timeshift_loss, worst_requests=_av_worst
    ),
    "multistream": SolveModel(
        "multistream", _build_multistream, worst_requests=_av_worst
    ),
}


def _apply_sizes(graph: ApplicationGraph, sizes: Mapping[str, int]) -> ApplicationGraph:
    for name, size in sizes.items():
        graph.streams[name].buffer_size = size
    return graph


def _make_refiner(
    model: SolveModel, grain: Optional[int]
) -> Callable[[Mapping[str, int]], Optional[str]]:
    """A runner ``sizes -> None | deadlock diagnosis`` over fresh
    fast-engine instances of the workload."""

    def run(sizes: Mapping[str, int]) -> Optional[str]:
        system, graph = model.build(engine="fast", grain=grain)
        _apply_sizes(graph, sizes)
        system.configure(graph)
        try:
            system.run()
        except (StalledError, ShellProtocolError) as e:
            # deadlock diagnosis or an oversize GetSpace — both name
            # the binding stream for the CEGAR growth step
            return str(e)
        return None

    return run


def solve_workload(
    name: str,
    sram_size: Optional[int] = None,
    elasticity: int = 1,
    refine: bool = True,
    max_refine: int = DEFAULT_MAX_REFINE,
    grain: Optional[int] = None,
) -> Solution:
    """Derive a full configuration for workload ``name`` under a budget.

    ``sram_size=None`` uses the instance's own SRAM (32 kB for the
    paper instance).  ``grain`` pins the sync grain; otherwise models
    with candidates search them largest-first, rebuilding the workload
    per candidate so the kernels and the declared rates agree.  Raises
    :class:`SolveError` with the structured S-report when no
    configuration exists.
    """
    try:
        model = SOLVE_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(SOLVE_MODELS)}"
        ) from None

    grains: Tuple[Optional[int], ...]
    if grain is not None:
        if not model.grain_candidates:
            raise SolveError(_single(Diagnostic(
                "S403",
                f"workload {name!r} does not expose a sync-grain knob; "
                f"omit --grain",
                source=name,
            )))
        grains = (grain,)
    elif model.grain_candidates:
        grains = tuple(sorted(model.grain_candidates, reverse=True))
    else:
        grains = (None,)

    causes = []
    for g in grains:
        system, graph = model.build(engine="fast", grain=g)
        cache_line, instance_sram = _instance_params(system)
        budget = instance_sram if sram_size is None else sram_size
        worst = model.worst_requests(graph) if model.worst_requests else None
        refiner = _make_refiner(model, g) if (refine and model.refinable) else None
        try:
            sol = solve_graph(
                graph,
                sram_size=budget,
                cache_line=cache_line,
                worst_requests=worst,
                coprocessors=list(system.specs),
                elasticity=elasticity,
                refine=refiner,
                max_refine=max_refine,
            )
        except SolveError as e:
            first = e.report.diagnostics[0]
            causes.append((g, first))
            continue
        sol.grain = g if g is not None else sol.grain
        sol.graph_name = name
        return sol

    if len(causes) == 1:
        raise SolveError(_single(causes[0][1]))
    raise SolveError(_single(Diagnostic(
        "S403",
        "no candidate grain yields a feasible configuration: "
        + "; ".join(f"grain {g}: {d.message}" for g, d in causes[-4:]),
        source=name,
    )))


def _single(diag: Diagnostic) -> Report:
    rep = Report()
    rep.add(diag)
    return rep


# ---------------------------------------------------------------------------
# the round-trip gate
# ---------------------------------------------------------------------------
def check_solution(name: str, solution: Solution) -> Report:
    """Run the full ``repro verify`` pipeline on the derived config.

    The acceptance contract of the solver: a solution must produce
    **zero** findings — the linter and the solver share one constraint
    model, so anything the solver emits that the linter rejects is a
    bug in that shared model.
    """
    model = SOLVE_MODELS[name]
    system, graph = model.build(engine="fast", grain=solution.grain)
    _apply_sizes(graph, solution.buffer_sizes)
    cache_line, _ = _instance_params(system)
    return verify_graph(graph, cache_line=cache_line, sram_size=solution.sram_size)


def simulate_solution(name: str, solution: Solution, engine: str) -> dict:
    """Run the workload under the derived config; returns the full
    result dict (histories included) for byte-identity comparison."""
    model = SOLVE_MODELS[name]
    system, graph = model.build(engine=engine, grain=solution.grain)
    _apply_sizes(graph, solution.buffer_sizes)
    system.configure(graph)
    result = system.run()
    return result.to_dict(include_histories=True)
