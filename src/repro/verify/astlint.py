"""``ast``-based lint for raw-primitive misuse in kernel source.

The abstract interpreter in :mod:`repro.verify.protocol` only sees ops
that kernels actually *yield*.  Two misuse patterns are invisible to it
yet common when writing kernels by hand:

* **A201** — calling a :class:`KernelContext` op factory and discarding
  the result (``ctx.read(...)`` as a bare statement instead of
  ``yield ctx.read(...)``): the op record is built and thrown away, so
  the primitive never reaches the shell.
* **A202** — constructing an op record directly (``ReadOp("in", 0, 8)``)
  instead of going through the context factories, bypassing the
  port/direction validation the factories perform.

These are source-level properties, so we check them with :mod:`ast`
over the kernel modules (``media/tasks.py`` and friends) without
importing or executing anything.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Union

from repro.verify.diagnostics import Diagnostic, Report

__all__ = ["lint_source", "lint_file", "lint_module", "CTX_OP_FACTORIES", "RAW_OP_CLASSES"]

#: KernelContext methods that build op records and must be yielded
CTX_OP_FACTORIES = frozenset({
    "get_space", "read", "write", "put_space", "compute", "external_access",
})

#: op record classes kernels should never construct directly
RAW_OP_CLASSES = frozenset({
    "GetSpaceOp", "ReadOp", "WriteOp", "PutSpaceOp", "ComputeOp",
    "ExternalAccessOp",
})


class _KernelSourceVisitor(ast.NodeVisitor):
    def __init__(self, filename: str, report: Report):
        self.filename = filename
        self.report = report
        self.class_stack: List[str] = []

    def _task(self) -> Optional[str]:
        return self.class_stack[-1] if self.class_stack else None

    def _loc(self, node: ast.AST) -> str:
        return f"{self.filename}:{node.lineno}"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def visit_Expr(self, node: ast.Expr) -> None:
        # a call used as a bare statement: its value is discarded
        call = node.value
        if isinstance(call, ast.Call):
            name = _ctx_factory_name(call)
            if name is not None:
                self.report.add(Diagnostic(
                    "A201",
                    f"ctx.{name}(...) is called but its op is discarded — "
                    f"did you mean 'yield ctx.{name}(...)'?",
                    task=self._task(),
                    source=self._loc(node),
                ))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _callee_name(node)
        if name in RAW_OP_CLASSES:
            self.report.add(Diagnostic(
                "A202",
                f"{name}(...) constructed directly — use the KernelContext "
                f"factory so the port and direction are validated",
                task=self._task(),
                source=self._loc(node),
            ))
        self.generic_visit(node)


def _ctx_factory_name(call: ast.Call) -> Optional[str]:
    """The factory name when ``call`` is ``ctx.<factory>(...)``."""
    f = call.func
    if (
        isinstance(f, ast.Attribute)
        and isinstance(f.value, ast.Name)
        and f.value.id == "ctx"
        and f.attr in CTX_OP_FACTORIES
    ):
        return f.attr
    return None


def _callee_name(call: ast.Call) -> Optional[str]:
    f = call.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


def lint_source(source: str, filename: str = "<string>") -> Report:
    """Lint kernel source text; syntax errors surface as P106."""
    report = Report()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as e:
        report.add(Diagnostic(
            "P106", f"source does not parse: {e.msg}",
            source=f"{filename}:{e.lineno or 0}",
        ))
        return report
    _KernelSourceVisitor(filename, report).visit(tree)
    return report


def lint_file(path: Union[str, Path]) -> Report:
    path = Path(path)
    return lint_source(path.read_text(), filename=str(path))


def lint_module(module) -> Report:
    """Lint an imported module by its source file."""
    return lint_file(module.__file__)
