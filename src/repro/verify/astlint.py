"""``ast``-based lint for raw-primitive misuse in kernel source.

The abstract interpreter in :mod:`repro.verify.protocol` only sees ops
that kernels actually *yield*.  Two misuse patterns are invisible to it
yet common when writing kernels by hand:

* **A201** — calling a :class:`KernelContext` op factory and discarding
  the result (``ctx.read(...)`` as a bare statement instead of
  ``yield ctx.read(...)``): the op record is built and thrown away, so
  the primitive never reaches the shell.
* **A202** — constructing an op record directly (``ReadOp("in", 0, 8)``)
  instead of going through the context factories, bypassing the
  port/direction validation the factories perform.
* **A203** — a kernel class assigning unbounded Python containers
  (list/dict/set/bytearray literals, comprehensions, or constructor
  calls) to ``self`` attributes without declaring its state via
  ``__getstate__`` or a ``STATE_FIELDS`` tuple: the resilience
  subsystem's ``export_state`` then falls back to ``vars(self)``,
  which may drag in unpicklable or non-deterministic members and
  silently destabilize checkpoint digests (docs/resilience.md).

These are source-level properties, so we check them with :mod:`ast`
over the kernel modules (``media/tasks.py`` and friends) without
importing or executing anything.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Union

from repro.verify.diagnostics import Diagnostic, Report

__all__ = ["lint_source", "lint_file", "lint_module", "CTX_OP_FACTORIES",
           "RAW_OP_CLASSES", "CONTAINER_CALLS"]

#: KernelContext methods that build op records and must be yielded
CTX_OP_FACTORIES = frozenset({
    "get_space", "read", "write", "put_space", "compute", "external_access",
})

#: op record classes kernels should never construct directly
RAW_OP_CLASSES = frozenset({
    "GetSpaceOp", "ReadOp", "WriteOp", "PutSpaceOp", "ComputeOp",
    "ExternalAccessOp",
})

#: constructor calls that produce unbounded mutable containers (A203)
CONTAINER_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter",
})


class _KernelSourceVisitor(ast.NodeVisitor):
    def __init__(self, filename: str, report: Report):
        self.filename = filename
        self.report = report
        self.class_stack: List[str] = []

    def _task(self) -> Optional[str]:
        return self.class_stack[-1] if self.class_stack else None

    def _loc(self, node: ast.AST) -> str:
        return f"{self.filename}:{node.lineno}"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self._check_kernel_state(node)
        self.generic_visit(node)
        self.class_stack.pop()

    def _check_kernel_state(self, node: ast.ClassDef) -> None:
        """A203: a Kernel subclass growing mutable containers on self
        with no declared state contract."""
        if not _is_kernel_class(node):
            return
        if _declares_state(node):
            return
        attrs = sorted(_mutable_self_attrs(node))
        if not attrs:
            return
        self.report.add(Diagnostic(
            "A203",
            f"kernel holds mutable container state ({', '.join(attrs)}) "
            f"but declares neither __getstate__ nor STATE_FIELDS — "
            f"declare the state so snapshots capture it deterministically",
            task=node.name,
            source=self._loc(node),
        ))

    def visit_Expr(self, node: ast.Expr) -> None:
        # a call used as a bare statement: its value is discarded
        call = node.value
        if isinstance(call, ast.Call):
            name = _ctx_factory_name(call)
            if name is not None:
                self.report.add(Diagnostic(
                    "A201",
                    f"ctx.{name}(...) is called but its op is discarded — "
                    f"did you mean 'yield ctx.{name}(...)'?",
                    task=self._task(),
                    source=self._loc(node),
                ))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _callee_name(node)
        if name in RAW_OP_CLASSES:
            self.report.add(Diagnostic(
                "A202",
                f"{name}(...) constructed directly — use the KernelContext "
                f"factory so the port and direction are validated",
                task=self._task(),
                source=self._loc(node),
            ))
        self.generic_visit(node)


def _ctx_factory_name(call: ast.Call) -> Optional[str]:
    """The factory name when ``call`` is ``ctx.<factory>(...)``."""
    f = call.func
    if (
        isinstance(f, ast.Attribute)
        and isinstance(f.value, ast.Name)
        and f.value.id == "ctx"
        and f.attr in CTX_OP_FACTORIES
    ):
        return f.attr
    return None


def _callee_name(call: ast.Call) -> Optional[str]:
    f = call.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


# ---------------------------------------------------------------------------
# A203 helpers
# ---------------------------------------------------------------------------
def _base_name(base: ast.expr) -> Optional[str]:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _is_kernel_class(node: ast.ClassDef) -> bool:
    """Heuristic: directly subclasses something named ``*Kernel``."""
    return any(
        (name := _base_name(b)) is not None and name.endswith("Kernel")
        for b in node.bases
    )


def _declares_state(node: ast.ClassDef) -> bool:
    """True when the class body defines ``__getstate__`` or assigns
    ``STATE_FIELDS`` (the two state contracts export_state honors)."""
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name == "__getstate__":
                return True
        elif isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "STATE_FIELDS"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "STATE_FIELDS":
                return True
    return False


def _is_container_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set,
                          ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        return _callee_name(value) in CONTAINER_CALLS
    return False


def _mutable_self_attrs(node: ast.ClassDef) -> set:
    """Names of ``self.<attr>`` assigned a mutable container anywhere
    in the class body (methods included)."""
    attrs = set()
    for sub in ast.walk(node):
        targets: List[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets, value = list(sub.targets), sub.value
        elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
            targets, value = [sub.target], sub.value
        else:
            continue
        if not _is_container_value(value):
            continue
        for t in targets:
            if (isinstance(t, ast.Attribute) and isinstance(t.value, ast.Name)
                    and t.value.id == "self"):
                attrs.add(t.attr)
    return attrs


def lint_source(source: str, filename: str = "<string>") -> Report:
    """Lint kernel source text; syntax errors surface as P106."""
    report = Report()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as e:
        report.add(Diagnostic(
            "P106", f"source does not parse: {e.msg}",
            source=f"{filename}:{e.lineno or 0}",
        ))
        return report
    _KernelSourceVisitor(filename, report).visit(tree)
    return report


def lint_file(path: Union[str, Path]) -> Report:
    path = Path(path)
    return lint_source(path.read_text(), filename=str(path))


def lint_module(module) -> Report:
    """Lint an imported module by its source file."""
    return lint_file(module.__file__)
