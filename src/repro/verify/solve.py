"""From checking to solving: constraint-based auto-configuration.

``repro verify`` (PR 3) *checks* a configuration against the Eclipse
feasibility constraints; this module *inverts* them.  Given a KPN/SDF
graph plus an SRAM budget, :func:`solve_graph` derives the minimal
per-stream buffer sizes, a consistent sync-grain choice, and a feasible
task-to-coprocessor mapping — replacing a grid sweep over the design
space with one propagation pass (cf. Zaichenkov et al., arXiv
1503.00622, who reconcile KPN interface constraints with CSP+SAT).

Three layers, cheapest first:

1. **Interval propagation** (continuous layer).  Every stream's buffer
   size gets a domain ``{s : s >= lo, s % step == 0, s <= hi}`` whose
   bounds come from the *same* :mod:`repro.verify.constraints` objects
   the linter evaluates — G003 (largest grain), G004 (cycle bound),
   G005/G006 (alignment lattice) raise ``lo``; G008 (SRAM budget)
   lowers ``hi``.  Propagation is monotone, so it reaches a fixpoint
   and the per-stream ``lo`` *is* the minimal solution — or a domain
   empties and the binding constraint is named in a structured
   diagnosis (S401/S402).

2. **Bounded branch-and-bound** (discrete layer).  Sync grains (and
   with them the declared rates) are chosen from a candidate set,
   largest first — bigger grains mean fewer synchronisation round
   trips (paper §2.2's grain/coupling trade-off) — pruning any partial
   assignment whose propagated lower bound already overflows the
   budget, and rejecting assignments that break rate consistency
   (G002) or multicast agreement (G007).  The node budget is hard; an
   exhausted search is a structured S403, never a hang.

3. **Counterexample-guided refinement** (dynamic layer, optional).
   Static per-edge bounds cannot see reconvergent fork/join buffering
   needs (that is a known gap of local SDF bounds).  When the caller
   provides a ``refine`` runner, the solver simulates the candidate
   configuration; a deadlock's blocked-stream diagnosis names the
   binding edge, whose size is bumped by one alignment step and the
   budget re-propagated — the classic CEGAR loop, bounded by
   ``max_refine`` (S405 on exhaustion).

Every solution round-trips through the full linter with zero findings
(*the* acceptance gate: ``tests/verify/test_solve.py``), because the
solver and the linter consume one constraint model.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.kahn.analysis import RateInconsistencyError, repetition_vector
from repro.kahn.graph import ApplicationGraph, GraphError

from repro.verify.constraints import (
    BudgetConstraint,
    Interval,
    align_up,
    stream_alignment,
    stream_facts,
    stream_lower_bound,
)
from repro.verify.diagnostics import Diagnostic, Report

__all__ = [
    "Solution",
    "SolveError",
    "solve_graph",
    "solve_mapping",
    "choose_grain",
    "blocked_streams",
]

#: branch-and-bound node budget for the discrete grain search
DEFAULT_NODE_BUDGET = 4096
#: CEGAR rounds before S405
DEFAULT_MAX_REFINE = 64


class SolveError(Exception):
    """No configuration exists; ``report`` carries the structured
    "no solution because <binding constraint>" diagnosis (S-rules)."""

    def __init__(self, report: Report):
        self.report = report
        first = report.diagnostics[0] if report.diagnostics else None
        super().__init__(first.render() if first else "no solution")


@dataclass
class Solution:
    """One derived configuration plus its provenance.

    ``binding`` names, per stream, the constraint that set the derived
    size (a G-rule ID, ``worst-request``, or ``refined[n]`` when the
    CEGAR loop grew it); ``headroom`` is the SRAM left over.
    """

    graph_name: str
    buffer_sizes: Dict[str, int]
    grain: Optional[int] = None
    mapping: Dict[str, str] = field(default_factory=dict)
    sram_size: int = 0
    cache_line: int = 32
    total_bytes: int = 0
    binding: Dict[str, str] = field(default_factory=dict)
    refinement_rounds: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def headroom(self) -> int:
        return self.sram_size - self.total_bytes

    def to_dict(self) -> dict:
        return {
            "graph": self.graph_name,
            "buffer_sizes": dict(sorted(self.buffer_sizes.items())),
            "grain": self.grain,
            "mapping": dict(sorted(self.mapping.items())),
            "sram_size": self.sram_size,
            "cache_line": self.cache_line,
            "total_bytes": self.total_bytes,
            "headroom": self.headroom,
            "binding": dict(sorted(self.binding.items())),
            "refinement_rounds": self.refinement_rounds,
            "notes": list(self.notes),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        lines = [f"{'stream':>16} {'bytes':>8}  binding"]
        for name in sorted(self.buffer_sizes):
            lines.append(
                f"{name:>16} {self.buffer_sizes[name]:>8}  {self.binding.get(name, '-')}"
            )
        lines.append(
            f"total {self.total_bytes} B of {self.sram_size} B SRAM "
            f"(headroom {self.headroom} B)"
        )
        if self.grain is not None:
            lines.append(f"sync grain: {self.grain} B")
        if self.mapping:
            placed = ", ".join(f"{t}->{c}" for t, c in sorted(self.mapping.items()))
            lines.append(f"mapping: {placed}")
        if self.refinement_rounds:
            lines.append(f"refinement: {self.refinement_rounds} round(s) of "
                         "counterexample-guided buffer growth")
        for n in self.notes:
            lines.append(f"note: {n}")
        return "\n".join(lines)

    def apply(self, graph: ApplicationGraph) -> ApplicationGraph:
        """Stamp the derived sizes onto ``graph`` (in place)."""
        for name, size in self.buffer_sizes.items():
            edge = graph.streams.get(name)
            if edge is None:
                raise KeyError(f"graph has no stream {name!r}")
            edge.buffer_size = size
        return graph


# ---------------------------------------------------------------------------
# layer 1: interval propagation over buffer sizes
# ---------------------------------------------------------------------------
def _propagate_sizes(
    graph: ApplicationGraph,
    budget: BudgetConstraint,
    worst_requests: Mapping[str, int],
) -> Tuple[Dict[str, Interval], Dict[str, str]]:
    """Minimal domains for every stream, or SolveError (S401/S402).

    Returns ``(domains, binding)``; each domain's ``lo`` is the minimal
    feasible size for that stream given every *other* stream also at
    its minimum.
    """
    facts = stream_facts(graph, cache_line=budget.cache_line)
    domains: Dict[str, Interval] = {}
    binding: Dict[str, str] = {}
    for name, f in facts.items():
        step = stream_alignment(f)
        lo, why = stream_lower_bound(f, int(worst_requests.get(name, 1)))
        dom = Interval(lo=lo, step=step).raise_lo(lo)
        if dom.empty:  # cannot happen with hi=None, but keep the guard
            raise SolveError(_report(Diagnostic(
                "S402",
                f"stream {name!r}: lower bound {lo} B exceeds its upper "
                f"bound — conflicting constraints",
                stream=name, source=graph.name,
            )))
        domains[name] = dom
        binding[name] = why

    domains, slack = budget.propagate(domains)
    if slack < 0:
        # name the largest contributor and its binding constraint — the
        # actionable part of "no solution because ..."
        worst = max(domains, key=lambda n: (budget.padded(domains[n].lo), n))
        raise SolveError(_report(Diagnostic(
            "S401",
            f"minimal allocation needs {budget.sram_size - slack} B but the "
            f"budget is {budget.sram_size} B (short by {-slack} B); largest "
            f"contributor is stream {worst!r} at "
            f"{budget.padded(domains[worst].lo)} B, pinned by its "
            f"{binding[worst]} bound",
            stream=worst, source=graph.name,
        )))
    for name, dom in domains.items():
        if dom.empty:
            raise SolveError(_report(Diagnostic(
                "S402",
                f"stream {name!r}: budget propagation emptied the domain "
                f"(lo={dom.lo} B, hi={dom.hi} B)",
                stream=name, source=graph.name,
            )))
    return domains, binding


def _report(*diags: Diagnostic) -> Report:
    rep = Report()
    for d in diags:
        rep.add(d)
    return rep


# ---------------------------------------------------------------------------
# layer 2: discrete choices — grains (branch and bound) and mapping
# ---------------------------------------------------------------------------
def _with_uniform_grain(graph: ApplicationGraph, grain: int) -> ApplicationGraph:
    """A structural copy of ``graph`` whose every port declares
    ``grain`` — the candidate the discrete layer evaluates."""
    from repro.kahn.graph import PortSpec, StreamEdge, TaskNode

    g = ApplicationGraph(graph.name)
    for t in graph.tasks.values():
        g.add_task(TaskNode(
            name=t.name,
            kernel_factory=t.kernel_factory,
            ports=tuple(PortSpec(p.name, p.direction, grain) for p in t.ports),
            task_info=t.task_info,
            mapping=t.mapping,
            budget=t.budget,
        ))
    for e in graph.streams.values():
        g.streams[e.name] = StreamEdge(
            e.name, e.producer, e.consumers, buffer_size=e.buffer_size
        )
    return g


def choose_grain(
    graph: ApplicationGraph,
    budget: BudgetConstraint,
    candidates: Sequence[int],
    worst_request_of: Optional[Callable[[int], Mapping[str, int]]] = None,
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> Tuple[int, Dict[str, Interval], Dict[str, str]]:
    """Pick the best uniform sync grain from ``candidates``.

    Candidates are explored largest-first (bigger grains mean fewer
    sync round trips); each is a branch whose feasibility is decided by
    rate consistency (G002), multicast agreement (G007) and the budget
    propagation of layer 1 — an infeasible branch is pruned with its
    cause recorded.  ``worst_request_of(grain)`` lets workloads scale
    their worst-case request with the grain.  Exhausting every branch
    (or the node budget) raises a structured S403.
    """
    causes: List[str] = []
    nodes = 0
    for grain in sorted(set(int(c) for c in candidates), reverse=True):
        if grain < 1:
            causes.append(f"grain {grain}: must be >= 1")
            continue
        nodes += 1
        if nodes > node_budget:
            causes.append(f"node budget {node_budget} exhausted")
            break
        candidate = _with_uniform_grain(graph, grain)
        if grain > 1:
            rates = {
                (t.name, p.name): grain
                for t in candidate.tasks.values() for p in t.ports
            }
            try:
                repetition_vector(candidate, rates)
            except (RateInconsistencyError, GraphError) as e:
                causes.append(f"grain {grain}: rate inconsistency ({e})")
                continue
        worst = dict(worst_request_of(grain)) if worst_request_of else {}
        try:
            domains, binding = _propagate_sizes(candidate, budget, worst)
        except SolveError as e:
            causes.append(f"grain {grain}: {e.report.diagnostics[0].message}")
            continue
        return grain, domains, binding
    raise SolveError(_report(Diagnostic(
        "S403",
        "no candidate grain fits: " + "; ".join(causes[-4:]),
        source=graph.name,
    )))


def solve_mapping(
    graph: ApplicationGraph,
    coprocessors: Sequence[str],
    max_tasks_per_unit: Optional[int] = None,
) -> Dict[str, str]:
    """A feasible, balanced task-to-coprocessor mapping.

    Declared mappings are honoured (S404 if they name a unit the
    instance lacks); unplaced tasks go to the least-loaded unit,
    deterministically (ties by unit declaration order).  A unit
    capacity (``max_tasks_per_unit``) turns placement into the
    classic bounded bin assignment; infeasible capacity is S404.
    """
    if not coprocessors:
        raise SolveError(_report(Diagnostic(
            "S404", "instance has no coprocessors to map onto",
            source=graph.name,
        )))
    units = list(coprocessors)
    load = {u: 0 for u in units}
    mapping: Dict[str, str] = {}
    for tname, node in graph.tasks.items():
        if node.mapping is not None:
            if node.mapping not in load:
                raise SolveError(_report(Diagnostic(
                    "S404",
                    f"task {tname!r} declares mapping {node.mapping!r} but "
                    f"the instance only has {units}",
                    task=tname, source=graph.name,
                )))
            mapping[tname] = node.mapping
            load[node.mapping] += 1
    for tname in graph.tasks:
        if tname in mapping:
            continue
        unit = min(units, key=lambda u: (load[u], units.index(u)))
        mapping[tname] = unit
        load[unit] += 1
    if max_tasks_per_unit is not None:
        over = {u: n for u, n in load.items() if n > max_tasks_per_unit}
        if over:
            unit, n = sorted(over.items())[0]
            raise SolveError(_report(Diagnostic(
                "S404",
                f"coprocessor {unit!r} would run {n} tasks but the capacity "
                f"is {max_tasks_per_unit} — {len(graph.tasks)} task(s) do "
                f"not fit on {len(units)} unit(s)",
                source=graph.name,
            )))
    return mapping


# ---------------------------------------------------------------------------
# layer 3: counterexample-guided refinement against the simulator
# ---------------------------------------------------------------------------
_BLOCKED_RE = re.compile(
    r"blocked on access point (?P<stream>[A-Za-z0-9_.\-]+)\.(?P<port>\w+) "
    r"\((?P<kind>producer|consumer)"
)
_OVERSIZE_RE = re.compile(
    r"GetSpace\('\w+', (?P<need>\d+)\) exceeds buffer size \d+ "
    r"of stream '(?P<stream>[^']+)'"
)


def blocked_streams(diagnosis: str) -> List[Tuple[str, str, Optional[int]]]:
    """Parse a deadlock/stall/oversize diagnosis into
    ``(stream, kind, need)`` triples.

    ``need`` is the exact byte count when the diagnosis states one (a
    ``GetSpace`` larger than the whole buffer), else None.  Order:
    oversize first (the request itself bounds the fix), then blocked
    producers (a producer starved for space is the edge to grow), then
    consumers."""
    triples: List[Tuple[str, str, Optional[int]]] = [
        (m.group("stream"), "oversize", int(m.group("need")))
        for m in _OVERSIZE_RE.finditer(diagnosis)
    ]
    triples += [
        (m.group("stream"), m.group("kind"), None)
        for m in _BLOCKED_RE.finditer(diagnosis)
    ]
    rank = {"oversize": 0, "producer": 1, "consumer": 2}
    return sorted(triples, key=lambda t: rank[t[1]])


def _refine_loop(
    sizes: Dict[str, int],
    steps: Dict[str, int],
    budget: BudgetConstraint,
    binding: Dict[str, str],
    refine: Callable[[Mapping[str, int]], Optional[str]],
    max_refine: int,
    graph_name: str,
) -> int:
    """Grow buffers until the runner reports completion.  Returns the
    number of rounds; raises SolveError (S401/S405) when the budget or
    the round bound stops the loop."""
    for round_no in range(1, max_refine + 1):
        diagnosis = refine(dict(sizes))
        if diagnosis is None:
            return round_no - 1
        candidates = blocked_streams(diagnosis)
        hit = next(((s, need) for s, _, need in candidates if s in sizes), None)
        if hit is None:
            raise SolveError(_report(Diagnostic(
                "S405",
                f"simulation did not complete but the diagnosis names no "
                f"known stream to grow: {diagnosis.strip().splitlines()[0]}",
                source=graph_name,
            )))
        target, need = hit
        step = steps[target]
        grown = dict(sizes)
        # an oversize request states the exact requirement: jump there
        grown[target] = max(
            sizes[target] + step,
            align_up(need, step) if need is not None else 0,
        )
        if not budget.fits(grown):
            raise SolveError(_report(Diagnostic(
                "S401",
                f"refinement needs stream {target!r} at "
                f"{grown[target]} B to break a simulated deadlock, but the "
                f"allocation would reach {budget.total(grown)} B of the "
                f"{budget.sram_size} B budget",
                stream=target, source=graph_name,
            )))
        sizes[target] = grown[target]
        binding[target] = f"refined[{round_no}]"
    raise SolveError(_report(Diagnostic(
        "S405",
        f"{max_refine} refinement round(s) exhausted without reaching "
        f"completion; last growth did not break the deadlock",
        source=graph_name,
    )))


# ---------------------------------------------------------------------------
# the solver entry point
# ---------------------------------------------------------------------------
def solve_graph(
    graph: ApplicationGraph,
    sram_size: int,
    cache_line: int = 32,
    worst_requests: Optional[Mapping[str, int]] = None,
    grain_candidates: Optional[Sequence[int]] = None,
    worst_request_of: Optional[Callable[[int], Mapping[str, int]]] = None,
    coprocessors: Optional[Sequence[str]] = None,
    max_tasks_per_unit: Optional[int] = None,
    elasticity: int = 1,
    refine: Optional[Callable[[Mapping[str, int]], Optional[str]]] = None,
    max_refine: int = DEFAULT_MAX_REFINE,
) -> Solution:
    """Derive a complete configuration for ``graph`` under a budget.

    ``worst_requests`` maps stream name -> the largest GetSpace either
    endpoint will ever issue (defaults to the declared grains).  With
    ``grain_candidates`` the sync grain itself becomes a decision
    variable (the graph is re-declared per candidate;
    ``worst_request_of(grain)`` then supplies the per-grain worst
    requests).  ``refine`` is a runner ``sizes -> None | diagnosis``
    that simulates the candidate and returns the blocked-task report on
    deadlock — enabling the CEGAR layer.  ``elasticity`` > 1 grows the
    minimal sizes toward ``elasticity x`` their bound, water-filling
    the remaining budget fairly (still aligned, still within budget —
    and still linter-clean, since growth preserves every constraint).

    Raises :class:`SolveError` with a structured S-rule report when no
    configuration exists; never an unstructured traceback.
    """
    if sram_size < 1:
        raise SolveError(_report(Diagnostic(
            "S401", f"SRAM budget must be >= 1 byte, got {sram_size}",
            source=graph.name,
        )))
    if elasticity < 1:
        raise ValueError(f"elasticity must be >= 1, got {elasticity}")
    try:
        graph.validate()
    except GraphError as e:
        raise SolveError(_report(Diagnostic(
            "S402", f"graph is structurally invalid: {e}", source=graph.name,
        )))
    if not graph.streams:
        return Solution(graph_name=graph.name, buffer_sizes={},
                        sram_size=sram_size, cache_line=cache_line,
                        notes=["graph has no streams; nothing to size"])

    budget = BudgetConstraint(sram_size=sram_size, cache_line=cache_line)

    grain: Optional[int] = None
    if grain_candidates:
        grain, domains, binding = choose_grain(
            graph, budget, grain_candidates, worst_request_of=worst_request_of
        )
        working = _with_uniform_grain(graph, grain)
    else:
        working = graph
        domains, binding = _propagate_sizes(
            working, budget, dict(worst_requests or {})
        )

    sizes = {name: dom.lo for name, dom in domains.items()}
    steps = {name: dom.step for name, dom in domains.items()}
    solution_notes: List[str] = []

    # ---- optional elasticity: water-fill the leftover budget ----------
    if elasticity > 1:
        targets = {
            name: align_up(elasticity * sizes[name], steps[name])
            for name in sizes
        }
        grew = True
        while grew:
            grew = False
            for name in sorted(sizes):
                if sizes[name] >= targets[name]:
                    continue
                trial = dict(sizes)
                trial[name] = sizes[name] + steps[name]
                if budget.fits(trial):
                    sizes[name] = trial[name]
                    grew = True
        solution_notes.append(
            f"elasticity {elasticity}x water-filled to {budget.total(sizes)} B"
        )

    # ---- CEGAR against the simulator ---------------------------------
    rounds = 0
    if refine is not None:
        rounds = _refine_loop(
            sizes, steps, budget, binding, refine, max_refine, graph.name
        )

    mapping = solve_mapping(
        working, coprocessors, max_tasks_per_unit
    ) if coprocessors is not None else {}

    return Solution(
        graph_name=graph.name,
        buffer_sizes=sizes,
        grain=grain,
        mapping=mapping,
        sram_size=sram_size,
        cache_line=cache_line,
        total_bytes=budget.total(sizes),
        binding=binding,
        refinement_rounds=rounds,
        notes=solution_notes,
    )
