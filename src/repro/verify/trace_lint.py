"""Lints over exported Chrome-trace JSON (rules O301-O303).

The span tracer (:mod:`repro.obs.tracer`) exports structured traces
for Perfetto; this module is the verifier that closes the loop.  It
checks an exported trace object (or file) against the subset of the
Chrome trace-event format the exporter promises
(:data:`repro.obs.tracer.CHROME_TRACE_SCHEMA`) and flags structural
trouble Perfetto would either reject or — worse — silently render
wrong:

* **O301 span-unclosed** — a ``"B"`` (begin) event with no matching
  end.  The exporter deliberately emits open spans this way (a run
  stopped mid-step leaves them), so the lint is how a pipeline notices
  that a trace is truncated.
* **O302 trace-schema** — a malformed event: missing required fields,
  an unknown phase, a non-list ``traceEvents`` container.
* **O303 span-negative-duration** — a complete ``"X"`` span with
  ``dur < 0`` or a non-numeric timestamp.

Used by ``repro trace --check`` and the CI observability job; import
:func:`lint_chrome_trace` directly for programmatic use.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.obs.tracer import CHROME_TRACE_SCHEMA
from repro.verify.diagnostics import Diagnostic, Report

__all__ = ["lint_chrome_trace", "lint_trace_file"]


def _event_name(event: Mapping[str, Any], index: int) -> str:
    name = event.get("name") if isinstance(event, Mapping) else None
    return f"event[{index}]" + (f" {name!r}" if name else "")


def lint_chrome_trace(trace: Any, source: str = "<trace>") -> Report:
    """Check one exported Chrome-trace object; returns a Report."""
    report = Report()
    if not isinstance(trace, Mapping):
        report.add(Diagnostic(
            "O302",
            f"trace root must be a JSON object, got {type(trace).__name__}",
            source=source,
        ))
        return report
    key = CHROME_TRACE_SCHEMA["container_key"]
    events = trace.get(key)
    if not isinstance(events, list):
        report.add(Diagnostic(
            "O302",
            f"trace has no {key!r} list "
            f"(got {type(events).__name__})",
            source=source,
        ))
        return report

    phases = CHROME_TRACE_SCHEMA["phases"]
    required = CHROME_TRACE_SCHEMA["required"]
    checked = 0
    for i, event in enumerate(events):
        if not isinstance(event, Mapping):
            report.add(Diagnostic(
                "O302",
                f"{_event_name(event, i)}: not a JSON object",
                source=source,
            ))
            continue
        ph = event.get("ph")
        if ph not in phases:
            report.add(Diagnostic(
                "O302",
                f"{_event_name(event, i)}: unknown phase {ph!r} "
                f"(exporter emits {'/'.join(phases)})",
                source=source,
            ))
            continue
        missing = [f for f in required[ph] if f not in event]
        if missing:
            report.add(Diagnostic(
                "O302",
                f"{_event_name(event, i)}: phase {ph!r} missing "
                f"required field(s) {missing}",
                source=source,
            ))
            continue
        checked += 1
        if ph == "B":
            report.add(Diagnostic(
                "O301",
                f"{_event_name(event, i)}: span opened at ts={event['ts']} "
                "but never closed (truncated run or abandoned generator)",
                task=(event.get("args") or {}).get("task"),
                source=source,
            ))
        elif ph == "X":
            ts, dur = event["ts"], event["dur"]
            if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)):
                report.add(Diagnostic(
                    "O303",
                    f"{_event_name(event, i)}: non-numeric ts/dur "
                    f"({ts!r}, {dur!r})",
                    source=source,
                ))
            elif dur < 0 or ts < 0:
                report.add(Diagnostic(
                    "O303",
                    f"{_event_name(event, i)}: negative timing "
                    f"(ts={ts}, dur={dur})",
                    source=source,
                ))
    report.note(f"{source}: {checked} of {len(events)} event(s) well-formed")
    return report


def lint_trace_file(path: str) -> Report:
    """Load a trace JSON file and lint it (O302 on unparseable JSON)."""
    try:
        with open(path) as fh:
            trace = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        report = Report()
        report.add(Diagnostic(
            "O302", f"cannot load trace: {type(e).__name__}: {e}", source=path
        ))
        return report
    return lint_chrome_trace(trace, source=path)
