"""Seeded mutation corpus: known-bad graphs and kernels.

Each :class:`CorpusCase` plants one specific contract violation — a
malformed graph, a protocol-breaking kernel, or misuse at the source
level — and names the rule IDs the checker *must* raise for it.  The
corpus is the checker's own regression oracle: ``repro verify
--corpus`` (and the CI verify job) fail if any seeded violation goes
unflagged, while the shipped workloads double as the zero-false-
positive fixture.

Only ``expected ⊆ found`` is asserted per case: a mutation is allowed
to trip secondary rules too (an under-buffered cycle is usually also
grain-misaligned), and pinning the exact set would make every new rule
a corpus-wide churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.kahn.graph import (
    ApplicationGraph,
    Direction,
    PortSpec,
    TaskNode,
)
from repro.kahn.kernel import Kernel, KernelContext, ReadOp, StepOutcome

from repro.verify.astlint import lint_source
from repro.verify.diagnostics import Diagnostic, Report
from repro.verify.graph_lint import lint_graph
from repro.verify.protocol import check_kernel_protocol

__all__ = ["CorpusCase", "CORPUS", "run_case", "run_corpus"]


@dataclass(frozen=True)
class CorpusCase:
    """One seeded violation and the rules that must catch it."""

    name: str
    expected: FrozenSet[str]
    #: returns the Report of checking this case
    check: Callable[[], Report] = field(repr=False)

    def found(self) -> FrozenSet[str]:
        return frozenset(self.check().rule_ids())

    def passed(self) -> bool:
        return self.expected <= self.found()


def _stub(*ports: PortSpec) -> Tuple[Callable[[], Kernel], Tuple[PortSpec, ...]]:
    """A do-nothing kernel declaring ``ports`` (for graph-only cases)."""

    class _Stub(Kernel):
        PORTS = tuple(ports)

        def step(self, ctx: KernelContext):
            return StepOutcome.FINISHED
            yield  # pragma: no cover

    return _Stub, _Stub.PORTS


def _graph_case(name, expected, build, **lint_kw):
    return CorpusCase(
        name=name,
        expected=frozenset(expected),
        check=lambda: lint_graph(build(), **lint_kw),
    )


def _kernel_case(name, expected, factory, buffer_of=None):
    return CorpusCase(
        name=name,
        expected=frozenset(expected),
        check=lambda: check_kernel_protocol(factory, name=name, buffer_of=buffer_of),
    )


def _source_case(name, expected, source):
    return CorpusCase(
        name=name,
        expected=frozenset(expected),
        check=lambda: lint_source(source, filename=f"<corpus:{name}>"),
    )


# ---------------------------------------------------------------------------
# graph mutations (G-rules)
# ---------------------------------------------------------------------------
def _g001_unbound_port() -> ApplicationGraph:
    g = ApplicationGraph("g001")
    k, ports = _stub(PortSpec("out", Direction.OUT), PortSpec("dbg", Direction.OUT))
    g.add_task(TaskNode("src", k, ports))
    ksink, psink = _stub(PortSpec("in", Direction.IN))
    g.add_task(TaskNode("dst", ksink, psink))
    g.connect("src.out", "dst.in")
    return g  # src.dbg never connected


def _g002_inconsistent_rates() -> ApplicationGraph:
    # reconvergence: A emits 32 B on both arms, B consumes 32 on one
    # input but 16 on the other — the balance equations force q[B] to
    # be both q[A] and 2*q[A]
    g = ApplicationGraph("g002")
    ka, pa = _stub(
        PortSpec("out_a", Direction.OUT, granularity=32),
        PortSpec("out_b", Direction.OUT, granularity=32),
    )
    kb, pb = _stub(
        PortSpec("in_a", Direction.IN, granularity=32),
        PortSpec("in_b", Direction.IN, granularity=16),
    )
    g.add_task(TaskNode("A", ka, pa))
    g.add_task(TaskNode("B", kb, pb))
    g.connect("A.out_a", "B.in_a", buffer_size=64)
    g.connect("A.out_b", "B.in_b", buffer_size=64)
    return g


def _g003_buffer_underflow() -> ApplicationGraph:
    g = ApplicationGraph("g003")
    kp, pp = _stub(PortSpec("out", Direction.OUT, granularity=16))
    kc, pc = _stub(PortSpec("in", Direction.IN, granularity=16))
    g.add_task(TaskNode("src", kp, pp))
    g.add_task(TaskNode("dst", kc, pc))
    g.connect("src.out", "dst.in", buffer_size=8)  # < the 16 B grain
    return g


def _g004_underbuffered_cycle() -> ApplicationGraph:
    g = ApplicationGraph("g004")
    ka, pa = _stub(
        PortSpec("in", Direction.IN, granularity=16),
        PortSpec("out", Direction.OUT, granularity=16),
    )
    kb, pb = _stub(
        PortSpec("in", Direction.IN, granularity=16),
        PortSpec("out", Direction.OUT, granularity=16),
    )
    g.add_task(TaskNode("A", ka, pa))
    g.add_task(TaskNode("B", kb, pb))
    g.connect("A.out", "B.in", buffer_size=32)
    g.connect("B.out", "A.in", buffer_size=16)  # < 16 + 16 bound
    return g


def _g005_grain_misaligned() -> ApplicationGraph:
    g = ApplicationGraph("g005")
    kp, pp = _stub(PortSpec("out", Direction.OUT, granularity=32))
    kc, pc = _stub(PortSpec("in", Direction.IN, granularity=32))
    g.add_task(TaskNode("src", kp, pp))
    g.add_task(TaskNode("dst", kc, pc))
    g.connect("src.out", "dst.in", buffer_size=48)  # 48 % 32 != 0
    return g


def _g007_multicast_mismatch() -> ApplicationGraph:
    g = ApplicationGraph("g007")
    kp, pp = _stub(PortSpec("out", Direction.OUT, granularity=32))
    ka, pa = _stub(PortSpec("in", Direction.IN, granularity=16))
    kb, pb = _stub(PortSpec("in", Direction.IN, granularity=32))
    g.add_task(TaskNode("src", kp, pp))
    g.add_task(TaskNode("a", ka, pa))
    g.add_task(TaskNode("b", kb, pb))
    g.connect("src.out", "a.in", "b.in", buffer_size=64)
    return g


def _g008_sram_overflow() -> ApplicationGraph:
    g = ApplicationGraph("g008")
    kp, pp = _stub(PortSpec("out", Direction.OUT))
    kc, pc = _stub(PortSpec("in", Direction.IN))
    g.add_task(TaskNode("src", kp, pp))
    g.add_task(TaskNode("dst", kc, pc))
    g.connect("src.out", "dst.in", buffer_size=4096)
    return g  # linted with sram_size=1024


def _g009_disconnected() -> ApplicationGraph:
    g = ApplicationGraph("g009")
    for i in range(2):
        kp, pp = _stub(PortSpec("out", Direction.OUT))
        kc, pc = _stub(PortSpec("in", Direction.IN))
        g.add_task(TaskNode(f"src{i}", kp, pp))
        g.add_task(TaskNode(f"dst{i}", kc, pc))
        g.connect(f"src{i}.out", f"dst{i}.in")
    return g


# ---------------------------------------------------------------------------
# kernel mutations (P-rules)
# ---------------------------------------------------------------------------
class _ReadBeyondGrant(Kernel):
    PORTS = (PortSpec("in", Direction.IN),)

    def step(self, ctx: KernelContext):
        space = yield ctx.get_space("in", 8)
        if not space:
            return StepOutcome.FINISHED
        yield ctx.read("in", 0, 16)  # only 8 granted
        yield ctx.put_space("in", 8)
        return StepOutcome.COMPLETED


class _WriteBeyondGrant(Kernel):
    PORTS = (PortSpec("out", Direction.OUT),)

    def step(self, ctx: KernelContext):
        space = yield ctx.get_space("out", 8)
        if not space:
            return StepOutcome.ABORTED
        yield ctx.write("out", 4, b"\xAA" * 8)  # [4:12) vs 8 granted
        yield ctx.put_space("out", 8)
        return StepOutcome.COMPLETED


class _PutSpaceOvercommit(Kernel):
    PORTS = (PortSpec("out", Direction.OUT),)

    def step(self, ctx: KernelContext):
        space = yield ctx.get_space("out", 8)
        if not space:
            return StepOutcome.ABORTED
        yield ctx.write("out", 0, b"\x00" * 8)
        yield ctx.put_space("out", 16)  # committed twice the window
        return StepOutcome.COMPLETED


class _CommitThenAbort(Kernel):
    """Commits output A, then aborts when B is denied (paper §4.2
    forbids exactly this: an ABORTED step must leave no trace)."""

    PORTS = (PortSpec("a", Direction.OUT), PortSpec("b", Direction.OUT))

    def step(self, ctx: KernelContext):
        sa = yield ctx.get_space("a", 8)
        if not sa:
            return StepOutcome.ABORTED
        yield ctx.write("a", 0, b"\x01" * 8)
        yield ctx.put_space("a", 8)  # committed too early...
        sb = yield ctx.get_space("b", 8)
        if not sb:
            return StepOutcome.ABORTED  # ...so this redo duplicates 'a'
        yield ctx.write("b", 0, b"\x02" * 8)
        yield ctx.put_space("b", 8)
        return StepOutcome.COMPLETED


class _WrongDirection(Kernel):
    """Bypasses the KernelContext factories with a raw op record, so
    the direction error only the static checker can see."""

    PORTS = (PortSpec("out", Direction.OUT),)

    def step(self, ctx: KernelContext):
        space = yield ctx.get_space("out", 8)
        if not space:
            return StepOutcome.ABORTED
        yield ReadOp("out", 0, 8)  # Read on an output port
        yield ctx.put_space("out", 8)
        return StepOutcome.COMPLETED


class _NotAGenerator(Kernel):
    PORTS = (PortSpec("out", Direction.OUT),)

    def step(self, ctx: KernelContext):  # type: ignore[override]
        return StepOutcome.COMPLETED  # plain return: no ops ever reach the shell


class _GetSpaceTooLarge(Kernel):
    PORTS = (PortSpec("out", Direction.OUT),)

    def step(self, ctx: KernelContext):
        space = yield ctx.get_space("out", 128)  # buffer is only 64 B
        if not space:
            return StepOutcome.ABORTED
        yield ctx.write("out", 0, b"\x00" * 128)
        yield ctx.put_space("out", 128)
        return StepOutcome.COMPLETED


# ---------------------------------------------------------------------------
# source mutations (A-rules)
# ---------------------------------------------------------------------------
_A201_SOURCE = '''
class LeakyKernel(Kernel):
    PORTS = (PortSpec("out", Direction.OUT),)

    def step(self, ctx):
        space = yield ctx.get_space("out", 8)
        if not space:
            return StepOutcome.ABORTED
        yield ctx.write("out", 0, b"x" * 8)
        ctx.put_space("out", 8)  # op built but never yielded
        return StepOutcome.COMPLETED
'''

_A202_SOURCE = '''
class RawOpKernel(Kernel):
    PORTS = (PortSpec("in", Direction.IN),)

    def step(self, ctx):
        space = yield ctx.get_space("in", 8)
        if not space:
            return StepOutcome.ABORTED
        data = yield ReadOp("in", 0, 8)  # bypasses the ctx factories
        yield ctx.put_space("in", 8)
        return StepOutcome.COMPLETED
'''


CORPUS: Tuple[CorpusCase, ...] = (
    _graph_case("g001-unbound-port", {"G001"}, _g001_unbound_port),
    _graph_case("g002-rate-inconsistent", {"G002"}, _g002_inconsistent_rates),
    _graph_case("g003-buffer-underflow", {"G003"}, _g003_buffer_underflow),
    _graph_case("g004-underbuffered-cycle", {"G004"}, _g004_underbuffered_cycle),
    _graph_case("g005-grain-misaligned", {"G005"}, _g005_grain_misaligned),
    _graph_case("g007-multicast-mismatch", {"G007"}, _g007_multicast_mismatch),
    _graph_case("g008-sram-overflow", {"G008"}, _g008_sram_overflow, sram_size=1024),
    _graph_case("g009-disconnected", {"G009"}, _g009_disconnected),
    _kernel_case("p101-read-beyond-grant", {"P101"}, _ReadBeyondGrant),
    _kernel_case("p102-write-beyond-grant", {"P102"}, _WriteBeyondGrant),
    _kernel_case("p103-putspace-overcommit", {"P103"}, _PutSpaceOvercommit),
    _kernel_case("p104-commit-then-abort", {"P104"}, _CommitThenAbort),
    _kernel_case("p105-wrong-direction", {"P105"}, _WrongDirection),
    _kernel_case("p106-not-a-generator", {"P106"}, _NotAGenerator),
    _kernel_case("p107-getspace-exceeds-buffer", {"P107"}, _GetSpaceTooLarge,
                 buffer_of={"out": 64}),
    _source_case("a201-unyielded-op", {"A201"}, _A201_SOURCE),
    _source_case("a202-raw-op-construction", {"A202"}, _A202_SOURCE),
)


def run_case(case: CorpusCase) -> Tuple[bool, FrozenSet[str]]:
    """(passed, rules found) for one corpus case."""
    found = case.found()
    return case.expected <= found, found


def run_corpus(cases: Optional[Tuple[CorpusCase, ...]] = None) -> Tuple[Report, List[dict]]:
    """Check every corpus case; misses become V001 diagnostics.

    Returns ``(report, rows)``; ``rows`` has one dict per case for the
    CLI/CI table.  ``report.exit_code`` is non-zero iff any seeded
    violation went unflagged.
    """
    report = Report()
    rows: List[dict] = []
    for case in cases or CORPUS:
        ok, found = run_case(case)
        missed = sorted(case.expected - found)
        rows.append({
            "case": case.name,
            "expected": sorted(case.expected),
            "found": sorted(found),
            "passed": ok,
        })
        if ok:
            report.note(f"corpus case {case.name}: flagged {sorted(case.expected)}")
        else:
            report.add(Diagnostic(
                "V001",
                f"seeded violation not flagged: expected {missed}, "
                f"checker found {sorted(found) or 'nothing'}",
                source=case.name,
            ))
    return report, rows
