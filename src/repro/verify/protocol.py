"""Static shell-protocol checking: abstract interpretation of kernels.

A :class:`~repro.kahn.kernel.Kernel` is a generator of primitive ops,
which makes it *statically checkable without running the system*: we
drive ``Kernel.step`` against a **window oracle** that answers GetSpace
inquiries under a chosen policy and audits every op against the
task-level-interface contract of paper §3.2/§4.2:

* Read/Write must stay inside the currently granted window (P101/P102);
* PutSpace must never commit more than the acquired window (P103);
* a step that returns ``ABORTED`` must not have committed anything —
  the scheduler's redo would duplicate the data (P104);
* ops must name declared ports with the right direction (P105);
* ``step`` must be a generator of ops returning a StepOutcome (P106);
* no GetSpace may exceed the attached stream buffer, which the shell
  could never grant (P107).

Policies mirror the paper's execution modes: a *grant-all* pass walks
the happy path, an *EOS* pass drives the wind-down path, and one
*deny-k* pass per observed inquiry forces each abort path in turn —
exactly the discard-and-redo branches §4.2 asks kernels to implement.
Kernels whose behaviour depends on real stream content may raise on
the oracle's synthetic (all-zero) input; that aborts the pass with a
:attr:`Report.notes` entry, never a diagnostic, so data-dependent
kernels cannot produce false positives.
"""

from __future__ import annotations

import inspect
from collections import defaultdict
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.kahn.graph import ApplicationGraph, Direction, PortRef, PortSpec
from repro.kahn.kernel import (
    ComputeOp,
    ExternalAccessOp,
    GetSpaceOp,
    Kernel,
    KernelContext,
    PutSpaceOp,
    ReadOp,
    Space,
    StepOutcome,
    WriteOp,
)

from repro.verify.diagnostics import Diagnostic, Report

__all__ = ["check_kernel_protocol", "check_graph_protocol"]


class _Oracle:
    """Answers GetSpace under a policy.

    ``deny_at`` denies the i-th inquiry of the session (0-based);
    with ``eos`` the denial carries end-of-stream for input ports —
    output-port denials are always plain "no room yet".
    """

    def __init__(self, deny_at: Optional[int] = None, eos: bool = False):
        self.deny_at = deny_at
        self.eos = eos
        self.count = 0

    def answer(self, op: GetSpaceOp, direction: Optional[Direction]) -> Space:
        i = self.count
        self.count += 1
        if self.deny_at is not None and i == self.deny_at:
            is_input = direction is Direction.IN
            return Space(granted=False, eos=self.eos and is_input, available=0)
        return Space(granted=True, available=op.n_bytes)


class _Auditor:
    """One checking session: persistent windows + violation dedup."""

    def __init__(
        self,
        name: str,
        ports: Dict[str, PortSpec],
        buffer_of: Dict[str, int],
        report: Report,
        seen: set,
    ):
        self.name = name
        self.ports = ports
        self.buffer_of = buffer_of
        self.report = report
        self.seen = seen
        #: granted-window bytes per port; persists across steps exactly
        #: like the shell's stream-table ``granted`` field
        self.windows: Dict[str, int] = defaultdict(int)

    def flag(self, rule_id: str, port: Optional[str], message: str) -> None:
        key = (rule_id, self.name, port)
        if key in self.seen:
            return
        self.seen.add(key)
        self.report.add(Diagnostic(rule_id, message, task=self.name, port=port))

    def _spec(self, op: Any, port: str) -> Optional[PortSpec]:
        spec = self.ports.get(port)
        if spec is None:
            self.flag("P105", port,
                      f"{type(op).__name__} on undeclared port "
                      f"(declared: {sorted(self.ports)})")
        return spec

    # -- one op ---------------------------------------------------------
    def audit(self, op: Any, oracle: _Oracle) -> Tuple[Any, bool]:
        """Audit one yielded op.  Returns (value to send, denied?)."""
        if isinstance(op, GetSpaceOp):
            spec = self._spec(op, op.port)
            space = oracle.answer(op, spec.direction if spec else None)
            if space.granted:
                limit = self.buffer_of.get(op.port)
                if limit is not None and op.n_bytes > limit:
                    self.flag("P107", op.port,
                              f"GetSpace({op.n_bytes}) exceeds the "
                              f"{limit} B stream buffer — never grantable")
                self.windows[op.port] = max(self.windows[op.port], op.n_bytes)
            return space, not space.granted
        if isinstance(op, ReadOp):
            spec = self._spec(op, op.port)
            if spec is not None and spec.direction is not Direction.IN:
                self.flag("P105", op.port, "Read on an output port")
            elif op.offset + op.n_bytes > self.windows[op.port]:
                self.flag("P101", op.port,
                          f"Read [{op.offset}:{op.offset + op.n_bytes}) outside "
                          f"the granted window of {self.windows[op.port]} B")
            return b"\x00" * op.n_bytes, False
        if isinstance(op, WriteOp):
            spec = self._spec(op, op.port)
            if spec is not None and spec.direction is not Direction.OUT:
                self.flag("P105", op.port, "Write on an input port")
            elif op.offset + len(op.data) > self.windows[op.port]:
                self.flag("P102", op.port,
                          f"Write [{op.offset}:{op.offset + len(op.data)}) outside "
                          f"the granted window of {self.windows[op.port]} B")
            return None, False
        if isinstance(op, PutSpaceOp):
            self._spec(op, op.port)
            if op.n_bytes > self.windows[op.port]:
                self.flag("P103", op.port,
                          f"PutSpace({op.n_bytes}) exceeds the acquired "
                          f"window of {self.windows[op.port]} B")
                self.windows[op.port] = 0
            else:
                self.windows[op.port] -= op.n_bytes
            return None, False
        if isinstance(op, (ComputeOp, ExternalAccessOp)):
            return None, False
        self.flag("P106", None,
                  f"step yielded {type(op).__name__}, which is not a "
                  f"task-level-interface op")
        return None, False


def _run_session(
    factory: Callable[[], Kernel],
    name: str,
    task_info: int,
    buffer_of: Dict[str, int],
    oracle: _Oracle,
    report: Report,
    seen: set,
    max_steps: int,
) -> None:
    """Drive one kernel instance for up to ``max_steps`` steps."""
    try:
        kernel = factory()
    except Exception as e:  # construction needs live data — inconclusive
        report.note(f"{name}: kernel factory raised {type(e).__name__}: {e}")
        return
    ports = {p.name: p for p in kernel.ports()}
    ctx = KernelContext(kernel.ports(), task_info=task_info, task=name)
    auditor = _Auditor(name, ports, buffer_of, report, seen)

    for _ in range(max_steps):
        try:
            gen = kernel.step(ctx)
        except Exception as e:
            report.note(f"{name}: step() raised {type(e).__name__}: {e}")
            return
        if not inspect.isgenerator(gen):
            auditor.flag("P106", None,
                         f"step() returned {type(gen).__name__} instead of "
                         f"a generator of ops")
            return
        commits = 0
        denied = False
        to_send: Any = None
        while True:
            try:
                op = gen.send(to_send)
            except StopIteration as stop:
                outcome = stop.value
                break
            except Exception as e:
                # data-dependent kernel meeting synthetic input: inconclusive
                report.note(f"{name}: step raised {type(e).__name__}: {e}")
                return
            if isinstance(op, PutSpaceOp):
                commits += 1
            to_send, was_denied = auditor.audit(op, oracle)
            denied = denied or was_denied
        if outcome is None:
            outcome = StepOutcome.COMPLETED
        if not isinstance(outcome, StepOutcome):
            auditor.flag("P106", None,
                         f"step returned {outcome!r} instead of a StepOutcome")
            return
        if outcome is StepOutcome.ABORTED:
            if commits:
                auditor.flag(
                    "P104", None,
                    f"step committed {commits} PutSpace op(s) and then "
                    f"returned ABORTED — the redo would re-commit them")
            return  # this session's purpose (the abort path) is done
        if outcome is StepOutcome.FINISHED:
            return
        if denied:
            # granted=False answered but the kernel completed anyway —
            # legal (e.g. partial-EOS drains); keep stepping
            continue


def check_kernel_protocol(
    factory: Callable[[], Kernel],
    name: str = "kernel",
    task_info: int = 0,
    buffer_of: Optional[Dict[str, int]] = None,
    max_steps: int = 12,
    max_deny_sessions: int = 8,
) -> Report:
    """Statically check one kernel against the shell protocol.

    ``factory`` must build a *fresh* kernel per call (the checker runs
    several abstract executions).  ``buffer_of`` maps port name to the
    attached stream's buffer size and enables the P107 check.
    """
    report = Report()
    buffer_of = buffer_of or {}
    seen: set = set()

    # pass 1 — grant-all: the happy path, window/commit accounting
    grant_all = _Oracle()
    _run_session(factory, name, task_info, buffer_of, grant_all, report, seen, max_steps)
    n_inquiries = grant_all.count

    # pass 2 — EOS on the first inquiry: the wind-down path
    _run_session(factory, name, task_info, buffer_of,
                 _Oracle(deny_at=0, eos=True), report, seen, max_steps)

    # pass 3 — deny each observed inquiry in turn: every §4.2 abort path
    for k in range(min(n_inquiries, max_deny_sessions)):
        _run_session(factory, name, task_info, buffer_of,
                     _Oracle(deny_at=k), report, seen, max_steps)
    return report


def check_graph_protocol(
    graph: ApplicationGraph,
    max_steps: int = 12,
    tasks: Optional[Iterable[str]] = None,
) -> Report:
    """Protocol-check every kernel of a (validated) application graph.

    Buffer sizes come from the graph's streams, so P107 catches
    configuration-time "request larger than buffer" mistakes that the
    cycle-level shell would only hit mid-simulation.
    """
    report = Report()
    for tname, node in graph.tasks.items():
        if tasks is not None and tname not in tasks:
            continue
        buffer_of = {}
        for p in node.ports:
            try:
                buffer_of[p.name] = graph.stream_of(PortRef(tname, p.name)).buffer_size
            except Exception:
                pass  # unbound port: G001 territory, not ours
        report.extend(check_kernel_protocol(
            node.kernel_factory,
            name=tname,
            task_info=node.task_info,
            buffer_of=buffer_of,
            max_steps=max_steps,
        ))
    return report
