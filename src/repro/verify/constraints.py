"""The shared declarative constraint model behind lint *and* solve.

PR 3's graph linter and PR 9's configuration solver answer two sides of
the same question.  The linter asks "does this configuration satisfy
the Eclipse feasibility constraints?"; the solver asks "what is the
smallest configuration that does?".  Keeping two independent encodings
of §2.2's buffer bounds would invite drift, so every per-stream G-rule
predicate lives here exactly once, in a declarative form both clients
consume:

* :func:`stream_facts` distils an :class:`ApplicationGraph` into
  per-stream :class:`StreamFacts` (endpoint grains, cycle membership,
  alignment context) — the ground terms of the constraint system.
* Each :class:`StreamRule` exposes the same constraint three ways:

  - ``check(facts, size)`` — the *linter* view: diagnostics for a
    concrete buffer size (byte-for-byte the messages ``repro verify``
    has always emitted);
  - ``lower(facts)`` — the *solver* view: the smallest size that can
    satisfy the rule (a monotone lower bound on the interval domain);
  - ``alignment(facts)`` — the divisibility lattice the size must live
    on (sync grains, cache lines).

  The model contract — proven by ``tests/verify/test_constraints.py``
  over randomized sizes — is::

      rule.check(f, s) == []   iff   s >= rule.lower(f)
                                     and s % rule.alignment(f) == 0

  so a size the solver derives by interval propagation is *by
  construction* a size the linter accepts, and vice versa.

* :class:`BudgetConstraint` is the one cross-stream (global) rule: the
  padded allocation must fit the instance SRAM (G008).  It gives the
  solver its upper bounds and the linter its overflow diagnostic from
  the same arithmetic (:func:`repro.core.sizing.plan_buffers`).

Interval domains here are integer ``[lo, hi]`` ranges restricted to an
alignment step; propagation only ever *raises* lower bounds and
*lowers* upper bounds (monotone), so it terminates and is order-
independent — the classic fixpoint argument for interval CSPs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from math import gcd
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.kahn.graph import ApplicationGraph, PortRef, StreamEdge

from repro.verify.diagnostics import Diagnostic

__all__ = [
    "Interval",
    "StreamFacts",
    "stream_facts",
    "StreamRule",
    "GrainCapacityRule",
    "CycleBufferRule",
    "GrainAlignmentRule",
    "LineAlignmentRule",
    "MulticastGrainRule",
    "STREAM_RULES",
    "BudgetConstraint",
    "align_up",
    "lcm_all",
]


def align_up(value: int, step: int) -> int:
    """Smallest multiple of ``step`` that is >= ``value``."""
    if step <= 1:
        return value
    return -(-value // step) * step


def lcm_all(values) -> int:
    """lcm of an iterable (1 for empty — the trivial alignment)."""
    out = 1
    for v in values:
        v = int(v)
        if v > 1:
            out = out * v // gcd(out, v)
    return out


@dataclass(frozen=True)
class Interval:
    """An integer domain ``{v : lo <= v <= hi, v % step == 0}``.

    ``hi is None`` means unbounded above.  All propagation steps keep
    ``lo`` a multiple of ``step`` (normal form), so ``lo`` is always a
    member of a non-empty domain — the minimal solution falls out of
    propagation for free.
    """

    lo: int
    hi: Optional[int] = None
    step: int = 1

    @property
    def empty(self) -> bool:
        return self.hi is not None and self.lo > self.hi

    def raise_lo(self, bound: int) -> "Interval":
        """Monotone: lift the lower bound to ``bound`` (aligned up)."""
        new_lo = align_up(max(self.lo, bound), self.step)
        return Interval(new_lo, self.hi, self.step)

    def lower_hi(self, bound: int) -> "Interval":
        """Monotone: cap the upper bound at ``bound`` (aligned down)."""
        capped = (bound // self.step) * self.step
        new_hi = capped if self.hi is None else min(self.hi, capped)
        return Interval(self.lo, new_hi, self.step)

    def contains(self, v: int) -> bool:
        return v >= self.lo and (self.hi is None or v <= self.hi) and v % self.step == 0


# ---------------------------------------------------------------------------
# ground facts
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CycleBound:
    """One deadlock-freedom bound induced by a dependency cycle: the
    stream must hold ``need`` bytes (producer grain + the grain of the
    consumer that continues the cycle)."""

    path: Tuple[str, ...]
    consumer: PortRef
    need: int

    def render_path(self) -> str:
        return " -> ".join(self.path + (self.path[0],))


@dataclass(frozen=True)
class StreamFacts:
    """Everything the per-stream rules need to know about one stream."""

    name: str
    #: producer first, then consumers, each with its declared sync grain
    endpoints: Tuple[Tuple[PortRef, int], ...]
    cache_line: int
    #: deadlock-freedom bounds, in cycle-enumeration order (G004)
    cycle_bounds: Tuple[CycleBound, ...] = ()

    @property
    def producer(self) -> Tuple[PortRef, int]:
        return self.endpoints[0]

    @property
    def consumers(self) -> Tuple[Tuple[PortRef, int], ...]:
        return self.endpoints[1:]

    @property
    def max_grain_endpoint(self) -> Tuple[PortRef, int]:
        return max(self.endpoints, key=lambda pair: pair[1])

    @property
    def is_multicast(self) -> bool:
        return len(self.endpoints) > 2


def _grain(graph: ApplicationGraph, ref: PortRef) -> int:
    return graph.tasks[ref.task].port(ref.port).granularity


def _cycle_bounds(
    graph: ApplicationGraph, max_cycles: int = 64
) -> Dict[str, List[CycleBound]]:
    """G004's ground terms: for every stream on a dependency cycle, the
    producer-plus-consumer grain bound, per enumerated cycle."""
    import networkx as nx

    out: Dict[str, List[CycleBound]] = {}
    nxg = graph.to_networkx()
    for cycle in islice(nx.simple_cycles(nxg), max_cycles):
        n = len(cycle)
        for i, u in enumerate(cycle):
            v = cycle[(i + 1) % n]
            for name, edge in graph.streams.items():
                if edge.producer.task != u:
                    continue
                for cons in edge.consumers:
                    if cons.task != v:
                        continue
                    out.setdefault(name, []).append(CycleBound(
                        path=tuple(cycle),
                        consumer=cons,
                        need=_grain(graph, edge.producer) + _grain(graph, cons),
                    ))
    return out


def stream_facts(
    graph: ApplicationGraph, cache_line: int = 32, with_cycles: bool = True
) -> Dict[str, StreamFacts]:
    """Distil a *structurally valid* graph into per-stream facts.

    ``with_cycles=False`` skips the (networkx) cycle enumeration for
    callers that only need the local bounds.
    """
    cycles = _cycle_bounds(graph) if with_cycles else {}
    facts: Dict[str, StreamFacts] = {}
    for name, edge in graph.streams.items():
        endpoints = [(edge.producer, _grain(graph, edge.producer))]
        endpoints += [(c, _grain(graph, c)) for c in edge.consumers]
        facts[name] = StreamFacts(
            name=name,
            endpoints=tuple(endpoints),
            cache_line=cache_line,
            cycle_bounds=tuple(cycles.get(name, ())),
        )
    return facts


# ---------------------------------------------------------------------------
# per-stream rules (one object per G-rule; the registry order is the
# order the linter reports in)
# ---------------------------------------------------------------------------
class StreamRule:
    """One per-stream constraint, usable as a predicate (lint) or as a
    bound/alignment contribution on an interval domain (solve)."""

    rule_id: str = "?"

    def lower(self, f: StreamFacts) -> int:
        """Smallest buffer size that can satisfy this rule."""
        return 1

    def alignment(self, f: StreamFacts) -> int:
        """Divisibility step the size must respect (1 = none)."""
        return 1

    def check(self, f: StreamFacts, size: int) -> List[Diagnostic]:
        """Diagnostics for a concrete size (empty = satisfied)."""
        raise NotImplementedError


class GrainCapacityRule(StreamRule):
    """G003: the buffer must hold the largest endpoint sync grain, or
    that GetSpace can never be granted (paper §2.2)."""

    rule_id = "G003"

    def lower(self, f: StreamFacts) -> int:
        return f.max_grain_endpoint[1]

    def check(self, f: StreamFacts, size: int) -> List[Diagnostic]:
        worst_ref, worst = f.max_grain_endpoint
        if size >= worst:
            return []
        return [Diagnostic(
            "G003",
            f"buffer of {size} B cannot hold the "
            f"{worst} B sync grain of {worst_ref} — GetSpace({worst}) "
            f"can never be granted",
            task=worst_ref.task, port=worst_ref.port, stream=f.name,
        )]


class CycleBufferRule(StreamRule):
    """G004: a buffer on a dependency cycle must hold one producer
    grain plus one consumer grain (the sufficient-buffer bound for
    deadlock freedom of feedback loops under finite buffering)."""

    rule_id = "G004"

    def lower(self, f: StreamFacts) -> int:
        return max((b.need for b in f.cycle_bounds), default=1)

    def check(self, f: StreamFacts, size: int) -> List[Diagnostic]:
        for bound in f.cycle_bounds:
            if size < bound.need:
                return [Diagnostic(
                    "G004",
                    f"buffer of {size} B on cycle "
                    f"{bound.render_path()} is below the "
                    f"deadlock-freedom bound of {bound.need} B "
                    f"(producer grain + consumer grain)",
                    task=bound.consumer.task, port=bound.consumer.port,
                    stream=f.name,
                )]
        return []


class GrainAlignmentRule(StreamRule):
    """G005: the size must be a multiple of every endpoint's declared
    sync grain, or sync units wrap mid-buffer."""

    rule_id = "G005"

    def alignment(self, f: StreamFacts) -> int:
        return lcm_all(g for _, g in f.endpoints)

    def check(self, f: StreamFacts, size: int) -> List[Diagnostic]:
        out = []
        for ref, grain in f.endpoints:
            if grain > 1 and size % grain != 0:
                out.append(Diagnostic(
                    "G005",
                    f"buffer of {size} B is not a multiple of "
                    f"the {grain} B sync grain",
                    task=ref.task, port=ref.port, stream=f.name,
                ))
        return out


class LineAlignmentRule(StreamRule):
    """G006: the size should be cache-line aligned, or ``configure()``
    pads the allocation (advisory)."""

    rule_id = "G006"

    def alignment(self, f: StreamFacts) -> int:
        return max(1, f.cache_line)

    def check(self, f: StreamFacts, size: int) -> List[Diagnostic]:
        line = f.cache_line
        if line <= 1 or size % line == 0:
            return []
        prod, _ = f.producer
        return [Diagnostic(
            "G006",
            f"buffer of {size} B is not cache-line aligned; "
            f"configure() will pad it to {align_up(size, line)} B",
            task=prod.task, port=prod.port, stream=f.name,
        )]


class MulticastGrainRule(StreamRule):
    """G007: consumers of a multicast stream must agree on the sync
    grain.  Size-independent — it constrains the *grain assignment*,
    which is the discrete layer of the solver."""

    rule_id = "G007"

    @staticmethod
    def consistent(f: StreamFacts) -> bool:
        return len({g for _, g in f.consumers}) <= 1

    def check(self, f: StreamFacts, size: int) -> List[Diagnostic]:
        if not f.is_multicast or self.consistent(f):
            return []
        prod, _ = f.producer
        cons_grains = {g for _, g in f.consumers}
        return [Diagnostic(
            "G007",
            f"multicast consumers declare differing sync grains "
            f"{sorted(cons_grains)}",
            task=prod.task, port=prod.port, stream=f.name,
        )]


#: the per-stream constraint registry, in linter report order
STREAM_RULES: Tuple[StreamRule, ...] = (
    GrainCapacityRule(),
    CycleBufferRule(),
    GrainAlignmentRule(),
    LineAlignmentRule(),
    MulticastGrainRule(),
)

#: the rules whose check() is a pure function of (lower, alignment) —
#: the shared-model equivalence theorem quantifies over these
SIZE_RULES: Tuple[StreamRule, ...] = tuple(
    r for r in STREAM_RULES if not isinstance(r, MulticastGrainRule)
)


def stream_lower_bound(f: StreamFacts, worst_request: int = 1) -> Tuple[int, str]:
    """The solver's per-stream lower bound and its provenance: the
    aligned max over every size rule's ``lower`` plus the workload's
    declared worst-case request.  Returns ``(bound, binding)`` where
    ``binding`` names the constraint that set it."""
    best, binding = 1, "minimum"
    for rule in SIZE_RULES:
        lo = rule.lower(f)
        if lo > best:
            best, binding = lo, rule.rule_id
    if worst_request > best:
        best, binding = worst_request, "worst-request"
    step = stream_alignment(f)
    aligned = align_up(best, step)
    return aligned, binding


def stream_alignment(f: StreamFacts) -> int:
    """The combined divisibility step of every size rule."""
    return lcm_all(rule.alignment(f) for rule in SIZE_RULES)


# ---------------------------------------------------------------------------
# the global (cross-stream) constraint: the SRAM budget
# ---------------------------------------------------------------------------
@dataclass
class BudgetConstraint:
    """G008: the padded allocation must fit the instance SRAM.

    The same arithmetic serves the linter (overflow diagnostic via
    :func:`repro.core.sizing.plan_buffers`) and the solver (upper-bound
    propagation: any one stream may use at most what the others' lower
    bounds leave free).
    """

    sram_size: int
    cache_line: int = 32

    def padded(self, size: int) -> int:
        """The bytes ``EclipseSystem.configure`` actually allocates."""
        return align_up(size, max(1, self.cache_line))

    def total(self, sizes: Mapping[str, int]) -> int:
        return sum(self.padded(s) for s in sizes.values())

    def fits(self, sizes: Mapping[str, int]) -> bool:
        return self.total(sizes) <= self.sram_size

    def check(self, graph: ApplicationGraph, sizes: Mapping[str, int]) -> List[Diagnostic]:
        """The linter view (the exact G008 message)."""
        from repro.core.sizing import plan_buffers

        # clamp: a non-positive size is already a G003 finding, and
        # plan_buffers rejects it outright — still account its padding
        plan = plan_buffers(
            graph,
            {name: max(1, s) for name, s in sizes.items()},
            elasticity=1,
            line_pad=max(1, self.cache_line),
            sram_size=self.sram_size,
        )
        if plan.fits:
            return []
        return [Diagnostic(
            "G008",
            f"buffers need {plan.total_bytes} B but the instance SRAM "
            f"holds {plan.sram_size} B (over by {-plan.headroom()} B)",
            source=graph.name,
        )]

    def propagate(
        self, domains: Dict[str, Interval]
    ) -> Tuple[Dict[str, Interval], int]:
        """Upper-bound propagation over every stream's domain.

        Returns the narrowed domains and the slack (budget left after
        every stream takes its lower bound; negative = infeasible).
        """
        total_min = sum(self.padded(d.lo) for d in domains.values())
        slack = self.sram_size - total_min
        out = {}
        for name, dom in domains.items():
            # this stream may grow by at most the global slack
            out[name] = dom.lower_hi(dom.lo + slack) if slack >= 0 else dom
        return out, slack
