"""Parallel run engine for bulk simulation (paper §7 methodology).

The §7 experiments are "run the cycle-level simulator over many
architectural parameter points and collect measurements".  Every run is
independent — a fresh :class:`~repro.core.system.EclipseSystem`, a fresh
graph, no shared state — so the sweep is embarrassingly parallel.  This
module is the engine that exploits that: declare each run as a
:class:`RunSpec` (a picklable *description* — a module-level factory
plus keyword arguments), hand the list to a :class:`ParallelRunner`,
and get back a :class:`RunReport` whose per-run :class:`RunResult`
entries are **keyed by spec index, never by completion order**.

Determinism contract
--------------------
The deterministic portion of a report (``RunReport.to_dict()`` without
timing) is byte-identical for the same spec list at any ``jobs`` count:

* each run builds its own system/graph inside the worker from the
  spec's factory — nothing leaks between runs;
* results are aggregated in spec order, not completion order;
* wall-clock measurements live in a separate ``timing`` block that is
  excluded from the canonical JSON unless explicitly requested.

Workloads whose specs cannot be pickled (closures, lambdas, bound
state) transparently fall back to in-process serial execution; the
report records the fallback in ``notes``.
"""

from __future__ import annotations

import importlib
import json
import os
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "RunSpec",
    "RunResult",
    "RunReport",
    "ParallelRunner",
    "run_specs",
    "resolve_factory",
]


Factory = Union[Callable[..., tuple], str]


def resolve_factory(factory: Factory) -> Callable[..., tuple]:
    """Resolve a factory reference to a callable.

    Accepts a callable (must be picklable by reference for the parallel
    path, i.e. a module-level function) or a dotted string
    ``"package.module:function"``.
    """
    if callable(factory):
        return factory
    if isinstance(factory, str):
        if ":" not in factory:
            raise ValueError(
                f"string factory must be 'module:function', got {factory!r}"
            )
        mod_name, func_name = factory.split(":", 1)
        mod = importlib.import_module(mod_name)
        try:
            return getattr(mod, func_name)
        except AttributeError:
            raise ValueError(f"module {mod_name!r} has no attribute {func_name!r}")
    raise TypeError(f"factory must be callable or 'module:function', got {factory!r}")


@dataclass(frozen=True)
class RunSpec:
    """A picklable description of one independent simulation run.

    ``factory(**kwargs)`` must return a ``(system, graph)`` pair — the
    system not yet configured — *or* a bare already-configured system.
    It is called inside the worker process, so it must be a module-level
    function (or a ``"module:function"`` string); the graph and its
    kernels never cross the process boundary, only the description
    does.
    """

    factory: Factory
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""
    #: per-run wall-clock timeout in seconds (None = runner default)
    timeout: Optional[float] = None
    #: extra attempts after a failure/timeout (None = runner default)
    retries: Optional[int] = None

    def describe(self) -> str:
        if self.label:
            return self.label
        name = self.factory if isinstance(self.factory, str) else getattr(
            self.factory, "__name__", repr(self.factory)
        )
        return f"{name}({', '.join(f'{k}={v!r}' for k, v in self.kwargs.items())})"


@dataclass
class RunResult:
    """What one run produced.  Everything except ``wall_time`` and
    ``attempts`` is a pure function of the spec — the deterministic
    payload the regression/determinism tests compare."""

    index: int
    label: str
    ok: bool
    completed: bool = False
    cycles: int = 0
    #: "ExceptionType: message" when the run raised; None when ok
    error: Optional[str] = None
    #: deterministic counters (SystemResult.to_dict() minus histories)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: sha256 over the sorted per-stream histories — lets callers check
    #: byte-identity against an oracle without shipping the bytes
    histories_sha256: Optional[str] = None
    #: the run exceeded its wall-clock budget (the worker may still be
    #: computing; distinguishable from ``crashed`` so supervisor
    #: policies can treat hangs and deaths differently)
    timed_out: bool = False
    #: the worker process died (pool breakage, signal, hard exit) —
    #: ``error`` carries the exception repr
    crashed: bool = False
    #: which execution core produced this result ("reference"/"fast");
    #: on failure, the engine the spec *asked* for
    engine: str = "reference"
    #: observability tier the run recorded at ("off".."full"); below
    #: "full" there are no byte histories, so ``histories_sha256`` is
    #: None — the tier in the result makes that unmistakable
    obs_level: str = "full"
    #: wall-clock seconds for the successful (or last) attempt
    wall_time: float = 0.0
    #: 1 for a first-try success; >1 after retries
    attempts: int = 1

    def to_dict(self, include_timing: bool = False) -> dict:
        out = {
            "index": self.index,
            "label": self.label,
            "ok": self.ok,
            "completed": self.completed,
            "cycles": self.cycles,
            "error": self.error,
            "metrics": self.metrics,
            "histories_sha256": self.histories_sha256,
            "timed_out": self.timed_out,
            "crashed": self.crashed,
            "engine": self.engine,
            "obs_level": self.obs_level,
        }
        if include_timing:
            out["wall_time"] = self.wall_time
            out["attempts"] = self.attempts
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from its dict form (the inverse of
        :meth:`to_dict`; timing fields default to zero when the dict
        was serialized without them)."""
        return cls(
            index=data["index"],
            label=data["label"],
            ok=data["ok"],
            completed=data.get("completed", False),
            cycles=data.get("cycles", 0),
            error=data.get("error"),
            metrics=dict(data.get("metrics", {})),
            histories_sha256=data.get("histories_sha256"),
            timed_out=data.get("timed_out", False),
            crashed=data.get("crashed", False),
            engine=data.get("engine", "reference"),
            obs_level=data.get("obs_level", "full"),
            wall_time=data.get("wall_time", 0.0),
            attempts=data.get("attempts", 1),
        )


@dataclass
class RunReport:
    """Aggregated results of one engine invocation, in spec order."""

    results: List[RunResult]
    jobs: int
    #: wall-clock seconds for the whole batch
    wall_time: float = 0.0
    #: sum of per-run wall times — the serial-time estimate the speedup
    #: is computed against
    serial_time_estimate: float = 0.0
    #: execution notes (e.g. the non-picklable serial fallback)
    notes: List[str] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Estimated speedup over a serial run of the same specs."""
        if self.wall_time <= 0:
            return 1.0
        return self.serial_time_estimate / self.wall_time

    @property
    def failures(self) -> List[RunResult]:
        return [r for r in self.results if not r.ok]

    def metrics(self, include_timing: bool = False) -> "MetricsRegistry":
        """The sweep's health/progress feed as a typed metrics registry.

        The deterministic instruments (run outcome counters, the cycle
        histogram) are pure functions of the results, so the canonical
        metrics block stays byte-identical at any ``jobs`` count and
        under the resilience supervisor.  Wall-clock instruments only
        exist when ``include_timing`` — same switch as the timing
        block.  Names are stable; the catalogue lives in
        ``docs/observability.md``.
        """
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("runs.total").inc(len(self.results))
        reg.counter("runs.ok").inc(sum(1 for r in self.results if r.ok))
        reg.counter("runs.failed").inc(len(self.failures))
        reg.counter("runs.completed").inc(
            sum(1 for r in self.results if r.completed)
        )
        reg.counter("runs.timed_out").inc(
            sum(1 for r in self.results if r.timed_out)
        )
        reg.counter("runs.crashed").inc(
            sum(1 for r in self.results if r.crashed)
        )
        reg.counter("cycles.total").inc(sum(r.cycles for r in self.results))
        cycles = reg.histogram("run.cycles")
        for r in self.results:
            cycles.observe(r.cycles)
        if include_timing:
            wall = reg.histogram("run.wall_time", round_to=4)
            for r in self.results:
                wall.observe(r.wall_time)
            reg.counter("runs.attempts").inc(
                sum(r.attempts for r in self.results)
            )
            reg.counter("runs.retried").inc(
                sum(1 for r in self.results if r.attempts > 1)
            )
            reg.gauge("runner.jobs").set(self.jobs)
            reg.gauge("runner.wall_time").set(round(self.wall_time, 4))
            reg.gauge("runner.speedup").set(round(self.speedup, 3))
        return reg

    def to_dict(self, include_timing: bool = False) -> dict:
        """JSON-ready report.  Without ``include_timing`` the output is
        byte-identical for the same specs at any ``jobs`` count."""
        out: Dict[str, Any] = {
            "schema": "repro.runner/1",
            "runs": [r.to_dict(include_timing=include_timing) for r in self.results],
            "summary": {
                "total": len(self.results),
                "ok": sum(1 for r in self.results if r.ok),
                "failed": len(self.failures),
                "total_cycles": sum(r.cycles for r in self.results),
            },
            "metrics": self.metrics(include_timing=include_timing).to_dict(),
        }
        if include_timing:
            out["timing"] = {
                "jobs": self.jobs,
                "wall_time": self.wall_time,
                "serial_time_estimate": self.serial_time_estimate,
                "speedup": self.speedup,
                "notes": list(self.notes),
            }
        return out

    def to_json(self, include_timing: bool = False) -> str:
        """Canonical serialization: sorted keys, two-space indent,
        trailing newline — stable bytes for regression diffing."""
        return json.dumps(self.to_dict(include_timing=include_timing),
                          indent=2, sort_keys=True) + "\n"

    def write(self, path: str, include_timing: bool = False) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json(include_timing=include_timing))


# ---------------------------------------------------------------------------
# worker
# ---------------------------------------------------------------------------
def _histories_digest(histories: Mapping[str, bytes]) -> str:
    h = sha256()
    for name in sorted(histories):
        h.update(name.encode())
        h.update(b"\x00")
        h.update(histories[name])
        h.update(b"\x01")
    return h.hexdigest()


def _spec_engine(spec: RunSpec) -> str:
    """The engine a spec *requested* (used when the run never built a
    system — failures, timeouts, worker crashes)."""
    return str(dict(spec.kwargs).get("engine", "reference"))


def _spec_obs_level(spec: RunSpec) -> str:
    """The observability tier a spec *requested* (failure-path twin of
    :func:`_spec_engine`)."""
    return str(dict(spec.kwargs).get("obs_level", "full"))


def _execute_spec(index: int, spec: RunSpec) -> RunResult:
    """Build, configure and run one spec.  Runs inside the worker
    process (or inline on the serial path); never raises — failures
    come back as ``ok=False`` results so one bad point cannot take the
    whole sweep down."""
    label = spec.describe()
    start = time.perf_counter()
    try:
        factory = resolve_factory(spec.factory)
        built = factory(**dict(spec.kwargs))
        if isinstance(built, tuple):
            system, graph = built
            system.configure(graph)
        else:
            system = built
        result = system.run()
        metrics = result.to_dict()
        metrics.pop("histories", None)
        obs = getattr(system, "obs", None)
        if obs is not None and system.sampler is not None:
            # deterministic sampling summary (sample counts are a pure
            # function of the schedule, which is level-invariant)
            metrics["sampling"] = {
                "interval": system.sampler.interval,
                "samples": max(
                    (len(s) for s in system.sampler.utilization.values()),
                    default=0,
                ),
            }
        return RunResult(
            index=index,
            label=label,
            ok=True,
            completed=result.completed,
            cycles=result.cycles,
            metrics=metrics,
            # below "full" there are no byte histories to digest —
            # None keeps the absence explicit instead of digesting
            # empty streams
            histories_sha256=(
                _histories_digest(result.histories)
                if obs is None or obs.histories
                else None
            ),
            wall_time=time.perf_counter() - start,
            engine=getattr(system, "engine", "reference"),
            obs_level=str(obs) if obs is not None else "full",
        )
    except Exception as e:  # noqa: BLE001 — the report carries the error
        # an unknown engine name lands here too, as the ValueError from
        # resolve_engine() naming the known engines — a diagnosis in the
        # report, not a KeyError taking the sweep down
        return RunResult(
            index=index,
            label=label,
            ok=False,
            error=f"{type(e).__name__}: {e}",
            metrics={"traceback": traceback.format_exc(limit=8)},
            wall_time=time.perf_counter() - start,
            engine=_spec_engine(spec),
            obs_level=_spec_obs_level(spec),
        )


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------
class ParallelRunner:
    """Fans independent :class:`RunSpec` runs out over a process pool.

    ``jobs`` defaults to ``os.cpu_count()``; ``jobs=1`` runs everything
    in-process (no pool, no pickling requirement).  ``timeout`` and
    ``retries`` are per-run defaults that individual specs may
    override.  A run that times out or fails is retried up to its retry
    budget; a run that exhausts it is reported as a failure, not
    raised.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
    ):
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> RunReport:
        """Execute every spec; results come back in spec order."""
        specs = list(specs)
        notes: List[str] = []
        start = time.perf_counter()
        if self.jobs == 1 or len(specs) <= 1:
            results = self._run_serial(specs)
        else:
            unpicklable = self._first_unpicklable(specs)
            if unpicklable is not None:
                notes.append(
                    f"serial fallback: spec {unpicklable[0]} "
                    f"({unpicklable[1]}) is not picklable"
                )
                results = self._run_serial(specs)
            else:
                results = self._run_pool(specs)
        return RunReport(
            results=results,
            jobs=self.jobs,
            wall_time=time.perf_counter() - start,
            serial_time_estimate=sum(r.wall_time for r in results),
            notes=notes,
        )

    # ------------------------------------------------------------------
    def _budget(self, spec: RunSpec) -> Tuple[Optional[float], int]:
        timeout = spec.timeout if spec.timeout is not None else self.timeout
        retries = spec.retries if spec.retries is not None else self.retries
        return timeout, retries

    @staticmethod
    def _first_unpicklable(specs: Sequence[RunSpec]) -> Optional[Tuple[int, str]]:
        for i, spec in enumerate(specs):
            try:
                pickle.dumps(spec)
            except Exception:
                return i, spec.describe()
        return None

    def _run_serial(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        results = []
        for i, spec in enumerate(specs):
            _timeout, retries = self._budget(spec)  # no preemption in-process
            result = _execute_spec(i, spec)
            attempts = 1
            while not result.ok and attempts <= retries:
                result = _execute_spec(i, spec)
                attempts += 1
            result.attempts = attempts
            results.append(result)
        return results

    def _run_pool(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        results: List[Optional[RunResult]] = [None] * len(specs)
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {i: pool.submit(_execute_spec, i, spec) for i, spec in enumerate(specs)}
            attempts = {i: 1 for i in futures}
            # collect in submission order — aggregation never depends on
            # completion order
            pending = list(futures)
            while pending:
                i = pending.pop(0)
                spec = specs[i]
                timeout, retries = self._budget(spec)
                try:
                    result = futures[i].result(timeout=timeout)
                except FutureTimeoutError:
                    futures[i].cancel()
                    result = RunResult(
                        index=i,
                        label=spec.describe(),
                        ok=False,
                        error=f"TimeoutError: run exceeded {timeout:g}s",
                        timed_out=True,
                        wall_time=timeout or 0.0,
                        engine=_spec_engine(spec),
                        obs_level=_spec_obs_level(spec),
                    )
                except Exception as e:
                    # _execute_spec never raises, so anything here is
                    # infrastructure breakage: a worker process died
                    # (BrokenProcessPool), pickling failed, a pipe broke.
                    # The repr keeps exception detail a str() would lose.
                    result = RunResult(
                        index=i,
                        label=spec.describe(),
                        ok=False,
                        error=f"{type(e).__name__}: {e!r}",
                        crashed=True,
                        engine=_spec_engine(spec),
                        obs_level=_spec_obs_level(spec),
                    )
                if not result.ok and attempts[i] <= retries:
                    attempts[i] += 1
                    try:
                        futures[i] = pool.submit(_execute_spec, i, spec)
                    except Exception:
                        # a broken pool refuses new work; report the
                        # crash instead of letting submit() take the
                        # whole sweep down
                        result.attempts = attempts[i] - 1
                        result.crashed = True
                        results[i] = result
                        continue
                    pending.append(i)
                    continue
                result.attempts = attempts[i]
                results[i] = result
        return [r for r in results if r is not None]


def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> RunReport:
    """One-call convenience wrapper around :class:`ParallelRunner`."""
    return ParallelRunner(jobs=jobs, timeout=timeout, retries=retries).run(specs)
