"""Deterministic synthetic video source.

The paper's evaluation uses real MPEG-2 streams we do not have; this
generator is the substitution (DESIGN.md): seeded scenes with global
pan, moving objects, a detailed texture band and sensor noise — enough
spatial detail that I frames are coefficient-heavy and enough coherent
motion that ME finds non-zero vectors and P/B residuals stay small,
i.e. the same load asymmetries the paper's Figure 10 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["Frame", "synthetic_sequence"]


@dataclass
class Frame:
    """One 4:2:0 picture: luma (h x w) and half-resolution chroma."""

    y: np.ndarray
    cb: np.ndarray
    cr: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        return self.y.shape

    def copy(self) -> "Frame":
        return Frame(self.y.copy(), self.cb.copy(), self.cr.copy())


def synthetic_sequence(
    width: int = 64,
    height: int = 48,
    num_frames: int = 12,
    seed: int = 7,
    noise: float = 2.0,
) -> List[Frame]:
    """Generate a deterministic test sequence.

    ``width``/``height`` must be multiples of 16 (macroblock size).
    """
    if width % 16 or height % 16:
        raise ValueError(f"dimensions must be multiples of 16, got {width}x{height}")
    if num_frames < 1:
        raise ValueError("num_frames must be >= 1")
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    # static scene content, panned per frame
    base = (
        96.0
        + 50.0 * np.sin(2 * np.pi * xx / 37.0)
        + 40.0 * np.cos(2 * np.pi * yy / 23.0)
    )
    texture = rng.normal(0.0, 24.0, size=(height, width))
    texture[height // 3 :, :] = 0.0  # detail band in the top third
    scene = base + texture
    # a moving bright square object
    obj_size = max(8, height // 4)
    frames: List[Frame] = []
    for t in range(num_frames):
        # integer 1 px/frame pan: anchor-to-anchor displacement stays
        # inside the default +-4 search range, so P/B frames predict
        # well (few coefficients) while I frames stay texture-heavy —
        # the load asymmetry the paper's Figure 10 shows.
        pan_x = t
        pan_y = t // 2
        y = np.roll(np.roll(scene, pan_y, axis=0), pan_x, axis=1).copy()
        oy = (1 * t) % max(1, height - obj_size)
        ox = (2 * t) % max(1, width - obj_size)
        y[oy : oy + obj_size, ox : ox + obj_size] += 60.0
        y += rng.normal(0.0, noise, size=y.shape)
        y = np.clip(y, 0, 255).astype(np.uint8)
        # chroma: smooth colour ramps following the pan
        cb = np.clip(
            128.0 + 30.0 * np.sin(2 * np.pi * (xx[::2, ::2] + 2 * pan_x) / 53.0),
            0,
            255,
        ).astype(np.uint8)
        cr = np.clip(
            128.0 + 30.0 * np.cos(2 * np.pi * (yy[::2, ::2] + 2 * pan_y) / 41.0),
            0,
            255,
        ).astype(np.uint8)
        frames.append(Frame(y=y, cb=cb, cr=cr))
    return frames
