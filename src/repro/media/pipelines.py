"""Ready-made Kahn application graphs for the media workloads.

* :func:`decode_graph` — the MPEG-2 decoder process network of the
  paper's Figure 2: VLD → RLSQ → DCT → MC → DISP plus the VLD → MC
  motion-vector side stream.
* :func:`encode_graph` — the encoder with its reconstruction loop:
  ME → FDCT → QRLE → (VLE, IQ → IDCT → RECON → back to ME).
* :func:`timeshift_graph` — encode ∥ decode on one instance (the
  paper's §6 time-shift use case), sharing coprocessors through
  multi-tasking.

Buffer sizes default to a small number of packets per stream; the
sync-granularity and buffer-sizing benches sweep them.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.kahn.graph import ApplicationGraph, TaskNode
from repro.media.codec import CodecParams
from repro.media.packets import HEADER_SIZE
from repro.media.tasks import (
    CostModel,
    DctKernel,
    DispKernel,
    FdctKernel,
    IdctKernel,
    IqKernel,
    McKernel,
    MeKernel,
    QrleKernel,
    ReconKernel,
    RlsqInvKernel,
    VldKernel,
    VleKernel,
)
from repro.media.video import Frame

__all__ = ["decode_graph", "encode_graph", "timeshift_graph", "default_buffer_sizes"]

#: worst-case coefficient payload: 6 blocks x (2 + 64 x 3) bytes
_COEF_MAX = 6 * (2 + 64 * 3)


def default_buffer_sizes(packets: int = 3) -> Dict[str, int]:
    """Stream buffer sizes holding ``packets`` worst-case packets."""
    if packets < 1:
        raise ValueError("packets must be >= 1")
    return {
        "coef": packets * (HEADER_SIZE + _COEF_MAX),
        "mv": packets * HEADER_SIZE,
        "coef_i16": packets * (HEADER_SIZE + 6 * 64 * 2),
        "coef_f64": packets * (HEADER_SIZE + 6 * 64 * 8),
        "levels": packets * (HEADER_SIZE + 6 * 64 * 2),
        "residual": packets * (HEADER_SIZE + 6 * 64 * 2),
        "pixels": packets * (HEADER_SIZE + 384),
    }


def decode_graph(
    bitstream: bytes,
    mapping: Optional[Dict[str, str]] = None,
    buffer_packets: int = 3,
    cost: Optional[CostModel] = None,
    name: str = "decode",
    budgets: Optional[Dict[str, int]] = None,
) -> ApplicationGraph:
    """Figure 2's decoder network for one compressed stream.

    ``mapping`` assigns task name -> coprocessor name (e.g. the Figure 8
    instance mapping); None leaves tasks auto-mappable.
    """
    cost = cost or CostModel()
    sizes = default_buffer_sizes(buffer_packets)
    mapping = mapping or {}
    budgets = budgets or {}
    g = ApplicationGraph(name)

    # the VLD must parse the sequence header once here so MC/DISP know
    # their geometry — mirrors the CPU configuring tasks at run time
    probe = VldKernel(bitstream, cost)
    params, num_frames = probe.params, probe.num_frames

    def node(tname: str, factory, ports, task_info: int = 0) -> TaskNode:
        return g.add_task(
            TaskNode(
                tname,
                factory,
                ports,
                task_info=task_info,
                mapping=mapping.get(tname),
                budget=budgets.get(tname, 2000),
            )
        )

    node("vld", lambda: VldKernel(bitstream, cost), VldKernel.PORTS)
    node("rlsq", lambda: RlsqInvKernel(cost), RlsqInvKernel.PORTS)
    # the weakly-programmable DCT: task_info bit 0 selects the direction
    node("idct", lambda: DctKernel(cost), DctKernel.PORTS, task_info=0)
    node("mc", lambda: McKernel(params, num_frames, cost), McKernel.PORTS)
    node("disp", lambda: DispKernel(params, num_frames, cost), DispKernel.PORTS)

    g.connect("vld.coef_out", "rlsq.in", name="coef", buffer_size=sizes["coef"])
    g.connect("vld.mv_out", "mc.mv_in", name="mv", buffer_size=sizes["mv"] * 8)
    g.connect("rlsq.out", "idct.in", name="dequant", buffer_size=sizes["coef_i16"])
    g.connect("idct.out", "mc.resid_in", name="resid", buffer_size=sizes["residual"])
    g.connect("mc.out", "disp.in", name="recon", buffer_size=sizes["pixels"])
    g.validate()
    return g


def encode_graph(
    frames: Sequence[Frame],
    params: CodecParams,
    mapping: Optional[Dict[str, str]] = None,
    buffer_packets: int = 3,
    cost: Optional[CostModel] = None,
    name: str = "encode",
    budgets: Optional[Dict[str, int]] = None,
) -> ApplicationGraph:
    """The encoder network with its closed reconstruction loop."""
    cost = cost or CostModel()
    sizes = default_buffer_sizes(buffer_packets)
    mapping = mapping or {}
    budgets = budgets or {}
    num_frames = len(frames)
    g = ApplicationGraph(name)

    def node(tname: str, factory, ports, task_info: int = 0) -> TaskNode:
        return g.add_task(
            TaskNode(
                tname,
                factory,
                ports,
                task_info=task_info,
                mapping=mapping.get(tname),
                budget=budgets.get(tname, 2000),
            )
        )

    node("me", lambda: MeKernel(frames, params, cost), MeKernel.PORTS)
    # one DCT kernel, two configurations: the paper's weakly-
    # programmable coprocessor ("one bit to select whether a forward or
    # inverse DCT is to be performed", §3.2)
    node("fdct", lambda: DctKernel(cost), DctKernel.PORTS, task_info=DctKernel.FORWARD)
    node("qrle", lambda: QrleKernel(cost), QrleKernel.PORTS)
    node("vle", lambda: VleKernel(params, num_frames, cost), VleKernel.PORTS)
    node("iq", lambda: IqKernel(cost), IqKernel.PORTS)
    node("idct_r", lambda: DctKernel(cost), DctKernel.PORTS, task_info=0)
    node("recon", lambda: ReconKernel(params, num_frames, cost), ReconKernel.PORTS)

    g.connect("me.resid_out", "fdct.in", name="resid_f", buffer_size=sizes["residual"])
    g.connect("me.pred_out", "recon.pred_in", name="pred", buffer_size=sizes["pixels"] * 2)
    g.connect("fdct.out", "qrle.in", name="coef_f", buffer_size=sizes["coef_f64"])
    g.connect("qrle.sym_out", "vle.in", name="symbols", buffer_size=sizes["coef"])
    g.connect("qrle.lev_out", "iq.in", name="levels", buffer_size=sizes["levels"])
    g.connect("iq.out", "idct_r.in", name="dequant_r", buffer_size=sizes["coef_i16"])
    g.connect("idct_r.out", "recon.resid_in", name="resid_r", buffer_size=sizes["residual"])
    g.connect("recon.recon_out", "me.recon_in", name="refs", buffer_size=sizes["pixels"] * 2)
    g.validate()
    return g


def timeshift_graph(
    raw_frames: Sequence[Frame],
    enc_params: CodecParams,
    playback_bitstream: bytes,
    mapping_encode: Optional[Dict[str, str]] = None,
    mapping_decode: Optional[Dict[str, str]] = None,
    buffer_packets: int = 3,
    cost: Optional[CostModel] = None,
) -> ApplicationGraph:
    """Time-shift: record (encode) one programme while playing back
    (decoding) another — the paper's §6 simultaneous encode+decode
    scenario, run as two Kahn networks on one Eclipse instance."""
    enc = encode_graph(
        raw_frames, enc_params, mapping_encode, buffer_packets, cost, name="timeshift"
    )
    dec = decode_graph(
        playback_bitstream, mapping_decode, buffer_packets, cost, name="playback"
    )
    merged = enc.merge(dec, prefix="play_")
    merged.validate()
    return merged
