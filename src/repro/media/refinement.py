"""Mixed-level simulation: the §7 gradual-refinement methodology.

"The simulation environment supports a design trajectory with gradual
refinement of Kahn application models into cycle-accurate Eclipse
coprocessor models.  Thereto, the simulator supports mixed-level
simulation at various levels of abstraction."

This module provides the *coarse* end of that trajectory for the video
decoder: :class:`FusedVideoBackendKernel` implements RLSQ + IDCT + MC
as ONE functional task with a lumped cycle cost — the kind of
early-phase model an architect writes before partitioning work across
coprocessors.  :func:`decode_graph_coarse` builds the matching
application graph (VLD → fused backend → DISP).

Because both abstraction levels share the reference codec's arithmetic,
their outputs are bit-identical; what refinement changes is the
*performance estimate* — the refined model exposes the task-level
parallelism (and the synchronization/communication costs) the fused
model hides.  EXP-A8 quantifies exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.kahn.graph import ApplicationGraph, Direction, PortSpec, TaskNode
from repro.kahn.kernel import Kernel, KernelContext, StepOutcome
from repro.media.bitstream import BitstreamError
from repro.media.codec import CodecParams, mb_prediction, reconstruct_macroblock
from repro.media.gop import FrameType
from repro.media.packets import (
    HEADER_SIZE,
    mb_from_header,
    pack_pixels,
    unpack_coef_payload,
)
from repro.media.pipelines import default_buffer_sizes
from repro.media.tasks import (
    CostModel,
    DispKernel,
    VldKernel,
    emit,
    read_packet,
    reserve_all,
)
from repro.media.tasks import _new_frame
from repro.media.video import Frame

__all__ = ["FusedVideoBackendKernel", "decode_graph_coarse"]


class FusedVideoBackendKernel(Kernel):
    """RLSQ + IDCT + MC as one coarse functional task.

    Consumes the VLD's coefficient and motion-vector packets, performs
    the complete macroblock reconstruction via the reference-codec
    helpers, and emits reconstructed pixel packets.  The cycle cost per
    macroblock is the *sum* of the three refined tasks' models — the
    aggregate estimate an unpartitioned model gives.
    """

    PORTS = (
        PortSpec("coef_in", Direction.IN),
        PortSpec("mv_in", Direction.IN),
        PortSpec("out", Direction.OUT),
    )

    OUT_PAYLOAD = 384

    def __init__(self, params: CodecParams, num_frames: int, cost: Optional[CostModel] = None):
        super().__init__()
        self.cost = cost or CostModel()
        self.params = params
        self._plans = params.gop().coded_order(num_frames)
        self._frame_ptr = 0
        self._mb_ptr = 0
        self._building: Frame = _new_frame(params)
        self._refs: Dict[int, Frame] = {}

    def step(self, ctx: KernelContext):
        if self._frame_ptr >= len(self._plans):
            return StepOutcome.FINISHED
        plan = self._plans[self._frame_ptr]
        status, mv_hdr, _ = yield from read_packet(ctx, "mv_in")
        if status == "eos":
            return StepOutcome.FINISHED
        if status == "abort":
            return StepOutcome.ABORTED
        status, c_hdr, c_payload = yield from read_packet(ctx, "coef_in")
        if status == "eos":
            raise BitstreamError("coef stream ended before mv stream")
        if status == "abort":
            return StepOutcome.ABORTED
        if mv_hdr.mb_index != c_hdr.mb_index:
            raise BitstreamError("mv/coef streams out of step")

        mb = mb_from_header(c_hdr, unpack_coef_payload(c_payload, c_hdr.cbp))
        mb_y, mb_x = divmod(mb.mb_index, self.params.mb_cols)
        fwd = self._refs.get(plan.forward_ref) if plan.forward_ref is not None else None
        bwd = self._refs.get(plan.backward_ref) if plan.backward_ref is not None else None
        pred = mb_prediction(mb.mode, fwd, bwd, mb_y, mb_x, mb.fwd_vec, mb.bwd_vec)
        recon = reconstruct_macroblock(mb, pred, c_hdr.qscale)

        # lumped cost: what the three refined tasks would charge
        n_pairs = sum(len(p) for p in mb.block_pairs)
        n_coded = bin(mb.cbp).count("1")
        from repro.media.codec import MbMode

        n_fetches = {MbMode.INTRA: 0, MbMode.FWD: 1, MbMode.BWD: 1, MbMode.BI: 2}[mb.mode]
        cycles = (
            self.cost.rlsq_per_mb
            + self.cost.rlsq_per_block * n_coded
            + self.cost.rlsq_per_pair * n_pairs
            + self.cost.dct_per_mb
            + self.cost.dct_per_block * n_coded
            + self.cost.mc_per_mb
            + self.cost.mc_add_cycles
        )
        yield ctx.compute(cycles)
        for _ in range(n_fetches):
            yield ctx.external_access(self.cost.mc_fetch_bytes, is_write=False)

        out = mv_hdr.with_payload(self.OUT_PAYLOAD).pack() + pack_pixels(recon)
        ok = yield from reserve_all(ctx, [("out", len(out))])
        if not ok:
            return StepOutcome.ABORTED
        yield from emit(ctx, "out", out)
        if plan.frame_type is not FrameType.B:
            yield ctx.external_access(self.cost.mb_pixel_bytes, is_write=True, posted=True)
        yield ctx.put_space("mv_in", HEADER_SIZE)
        yield ctx.put_space("coef_in", HEADER_SIZE + c_hdr.payload_len)
        # ---- commit state ----
        from repro.media.codec import insert_mb

        insert_mb(self._building, mb_y, mb_x, recon)
        self._mb_ptr += 1
        if self._mb_ptr == self.params.mbs_per_frame:
            if plan.frame_type is not FrameType.B:
                self._refs[plan.display_index] = self._building
                live = {plan.display_index}
                for p in self._plans[self._frame_ptr + 1 :]:
                    if p.forward_ref is not None:
                        live.add(p.forward_ref)
                    if p.backward_ref is not None:
                        live.add(p.backward_ref)
                self._refs = {k: v for k, v in self._refs.items() if k in live}
            self._building = _new_frame(self.params)
            self._mb_ptr = 0
            self._frame_ptr += 1
        return StepOutcome.COMPLETED


def decode_graph_coarse(
    bitstream: bytes,
    mapping: Optional[Dict[str, str]] = None,
    buffer_packets: int = 3,
    cost: Optional[CostModel] = None,
    name: str = "decode_coarse",
) -> ApplicationGraph:
    """The unrefined decoder: VLD → fused backend → DISP."""
    cost = cost or CostModel()
    sizes = default_buffer_sizes(buffer_packets)
    mapping = mapping or {}
    probe = VldKernel(bitstream, cost)
    params, num_frames = probe.params, probe.num_frames
    g = ApplicationGraph(name)

    def node(tname, factory, ports):
        g.add_task(TaskNode(tname, factory, ports, mapping=mapping.get(tname)))

    node("vld", lambda: VldKernel(bitstream, cost), VldKernel.PORTS)
    node(
        "backend",
        lambda: FusedVideoBackendKernel(params, num_frames, cost),
        FusedVideoBackendKernel.PORTS,
    )
    node("disp", lambda: DispKernel(params, num_frames, cost), DispKernel.PORTS)
    g.connect("vld.coef_out", "backend.coef_in", name="coef", buffer_size=sizes["coef"])
    g.connect("vld.mv_out", "backend.mv_in", name="mv", buffer_size=sizes["mv"] * 8)
    g.connect("backend.out", "disp.in", name="recon", buffer_size=sizes["pixels"])
    return g
