"""The complete §6 application: demux + audio decode + video decode.

"Audio decoding, variable-length encoding, and de-multiplexing are
executed in software on the media processor (DSP-CPU)" while the
hardwired coprocessors decode the video.  This graph is that full
picture: a transport stream feeds a software demultiplexer, whose
video elementary stream drives the streaming VLD → RLSQ → DCT → MC →
DISP chain on the coprocessors and whose audio stream drives the
software ADPCM decoder → PCM sink on the DSP.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.kahn.graph import ApplicationGraph, TaskNode
from repro.media.audio import AdpcmDecoderKernel, BLOCK_BYTES, BLOCK_SAMPLES, PcmSinkKernel
from repro.media.codec import CodecParams
from repro.media.pipelines import default_buffer_sizes
from repro.media.tasks import CostModel, DispKernel, IdctKernel, McKernel, RlsqInvKernel
from repro.media.transport import DemuxKernel, VldStreamKernel

__all__ = ["av_decode_graph", "lossy_av_decode_graph", "AV_DECODE_MAPPING"]

#: task -> coprocessor for the Figure 8 instance: software tasks on the
#: DSP, video pipeline on the hardwired units
AV_DECODE_MAPPING: Dict[str, str] = {
    "demux": "dsp",
    "audio_dec": "dsp",
    "pcm_sink": "dsp",
    "vld": "vld",
    "rlsq": "rlsq",
    "idct": "dct",
    "mc": "mcme",
    "disp": "dsp",
}


def av_decode_graph(
    ts: bytes,
    params: CodecParams,
    num_frames: int,
    mapping: Optional[Dict[str, str]] = None,
    buffer_packets: int = 3,
    cost: Optional[CostModel] = None,
    name: str = "av_decode",
) -> ApplicationGraph:
    """Build the audio+video decode network for a transport stream."""
    cost = cost or CostModel()
    sizes = default_buffer_sizes(buffer_packets)
    mapping = mapping or {}
    g = ApplicationGraph(name)

    def node(tname, factory, ports):
        g.add_task(TaskNode(tname, factory, ports, mapping=mapping.get(tname)))

    node("demux", lambda: DemuxKernel(ts), DemuxKernel.PORTS)
    node("vld", lambda: VldStreamKernel(params, num_frames, cost), VldStreamKernel.PORTS)
    node("audio_dec", lambda: AdpcmDecoderKernel(), AdpcmDecoderKernel.PORTS)
    node("pcm_sink", lambda: PcmSinkKernel(), PcmSinkKernel.PORTS)
    node("rlsq", lambda: RlsqInvKernel(cost), RlsqInvKernel.PORTS)
    node("idct", lambda: IdctKernel(cost), IdctKernel.PORTS)
    node("mc", lambda: McKernel(params, num_frames, cost), McKernel.PORTS)
    node("disp", lambda: DispKernel(params, num_frames, cost), DispKernel.PORTS)

    g.connect("demux.video_out", "vld.es_in", name="video_es", buffer_size=2048)
    g.connect(
        "demux.audio_out",
        "audio_dec.in",
        name="audio_es",
        buffer_size=4 * BLOCK_BYTES,
    )
    g.connect(
        "audio_dec.out",
        "pcm_sink.in",
        name="pcm",
        buffer_size=4 * BLOCK_SAMPLES * 2,
    )
    g.connect("vld.coef_out", "rlsq.in", name="coef", buffer_size=sizes["coef"])
    g.connect("vld.mv_out", "mc.mv_in", name="mv", buffer_size=sizes["mv"] * 8)
    g.connect("rlsq.out", "idct.in", name="dequant", buffer_size=sizes["coef_i16"])
    g.connect("idct.out", "mc.resid_in", name="resid", buffer_size=sizes["residual"])
    g.connect("mc.out", "disp.in", name="recon", buffer_size=sizes["pixels"])
    return g


def lossy_av_decode_graph(
    ingest_result,
    params: CodecParams,
    num_frames: int,
    mapping: Optional[Dict[str, str]] = None,
    buffer_packets: int = 3,
    cost: Optional[CostModel] = None,
    conceal_budget: float = 0.5,
    name: str = "lossy_av_decode",
) -> ApplicationGraph:
    """The A/V decode network behind a lossy network ingest.

    Takes a :class:`repro.net.IngestResult` and builds the same graph
    as :func:`av_decode_graph` with three substitutions: the demux runs
    on the *recovered* stream and reports the ingest statistics, the
    VLD conceals frames overlapping unrecovered erasures, and the audio
    decoder silences damaged ADPCM blocks.  When the plan is inert
    (``loss_active`` false) every kernel delegates to its parent class,
    so the run is byte-identical to the packet-free pipeline.
    """
    from repro.media.conceal import (
        ConcealingAdpcmKernel,
        ConcealingVldKernel,
        damaged_audio_blocks,
        overlapping_frames,
        video_frame_spans,
    )
    from repro.media.transport import AUDIO_PID, VIDEO_PID, LossyDemuxKernel, ts_demux

    cost = cost or CostModel()
    sizes = default_buffer_sizes(buffer_packets)
    mapping = mapping or {}
    report = ingest_result.loss_active

    if ingest_result.lost_slots:
        erased = ingest_result.erased_ranges()
        v_erased = erased.get(VIDEO_PID, ())
        a_erased = erased.get(AUDIO_PID, ())
        video_es = ts_demux(ingest_result.original_ts)[VIDEO_PID]
        header_end, spans = video_frame_spans(video_es, params, num_frames)
        damaged = overlapping_frames(spans, v_erased)
        header_damaged = bool(overlapping_frames([(0, header_end)], v_erased))
        audio_damaged = damaged_audio_blocks(a_erased)
    else:
        # nothing erased: skip the clean-parse damage mapping entirely,
        # so a 0%-loss ingest costs (nearly) nothing end-to-end
        header_end, spans = 0, ()
        damaged, audio_damaged = set(), set()
        header_damaged = False

    g = ApplicationGraph(name)

    def node(tname, factory, ports):
        g.add_task(TaskNode(tname, factory, ports, mapping=mapping.get(tname)))

    recovered = ingest_result.recovered_ts
    lost = ingest_result.lost_slots
    net_stats = ingest_result.stats.to_dict()
    node(
        "demux",
        lambda: LossyDemuxKernel(recovered, lost, net_stats, report),
        LossyDemuxKernel.PORTS,
    )
    node(
        "vld",
        lambda: ConcealingVldKernel(
            params,
            num_frames,
            damaged_frames=damaged,
            frame_spans=spans,
            header_end_bit=header_end,
            header_damaged=header_damaged,
            conceal_budget=conceal_budget,
            report_always=report,
            cost=cost,
        ),
        ConcealingVldKernel.PORTS,
    )
    node(
        "audio_dec",
        lambda: ConcealingAdpcmKernel(audio_damaged, report_always=report),
        ConcealingAdpcmKernel.PORTS,
    )
    node("pcm_sink", lambda: PcmSinkKernel(), PcmSinkKernel.PORTS)
    node("rlsq", lambda: RlsqInvKernel(cost), RlsqInvKernel.PORTS)
    node("idct", lambda: IdctKernel(cost), IdctKernel.PORTS)
    node("mc", lambda: McKernel(params, num_frames, cost), McKernel.PORTS)
    node("disp", lambda: DispKernel(params, num_frames, cost), DispKernel.PORTS)

    g.connect("demux.video_out", "vld.es_in", name="video_es", buffer_size=2048)
    g.connect(
        "demux.audio_out",
        "audio_dec.in",
        name="audio_es",
        buffer_size=4 * BLOCK_BYTES,
    )
    g.connect(
        "audio_dec.out",
        "pcm_sink.in",
        name="pcm",
        buffer_size=4 * BLOCK_SAMPLES * 2,
    )
    g.connect("vld.coef_out", "rlsq.in", name="coef", buffer_size=sizes["coef"])
    g.connect("vld.mv_out", "mc.mv_in", name="mv", buffer_size=sizes["mv"] * 8)
    g.connect("rlsq.out", "idct.in", name="dequant", buffer_size=sizes["coef_i16"])
    g.connect("idct.out", "mc.resid_in", name="resid", buffer_size=sizes["residual"])
    g.connect("mc.out", "disp.in", name="recon", buffer_size=sizes["pixels"])
    return g
