"""Group-of-pictures structure: frame types, coded vs display order.

An MPEG GOP is parameterized by N (frames per GOP) and M (distance
between anchor frames): display order ``I B B P B B P ...`` for M=3.
Coded (transmission/decode) order moves each anchor before the B frames
that reference it — the reordering that makes Figure 10's per-frame-
type bottleneck analysis possible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["FrameType", "GopStructure", "FramePlan"]


class FrameType(enum.Enum):
    I = "I"
    P = "P"
    B = "B"


@dataclass(frozen=True)
class FramePlan:
    """One frame's plan in coded order."""

    coded_index: int
    display_index: int
    frame_type: FrameType
    #: display indices of the references (None where not applicable)
    forward_ref: Optional[int]
    backward_ref: Optional[int]


class GopStructure:
    """Closed-GOP planner.

    ``n`` frames per GOP, anchors every ``m`` frames.  ``m=1`` means no
    B frames (IPPP...), ``n=1`` means all-intra.
    """

    def __init__(self, n: int = 12, m: int = 3):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if m < 1 or m > n:
            raise ValueError(f"m must be in [1, n], got {m}")
        self.n = n
        self.m = m

    def display_types(self, num_frames: int) -> List[FrameType]:
        """Frame type of each display index."""
        types = []
        for i in range(num_frames):
            pos = i % self.n
            if pos == 0:
                types.append(FrameType.I)
            elif pos % self.m == 0:
                types.append(FrameType.P)
            else:
                types.append(FrameType.B)
        # A trailing B run has no backward anchor: force the last frame
        # of the sequence to P so every B is properly bounded.
        if types and types[-1] is FrameType.B:
            types[-1] = FrameType.P
        return types

    def coded_order(self, num_frames: int) -> List[FramePlan]:
        """The transmission plan: anchors precede their B frames."""
        types = self.display_types(num_frames)
        plans: List[FramePlan] = []
        pending_b: List[int] = []
        prev_anchor: Optional[int] = None
        for disp, ftype in enumerate(types):
            if ftype is FrameType.B:
                pending_b.append(disp)
                continue
            fwd = prev_anchor if ftype is FrameType.P else None
            plans.append(FramePlan(len(plans), disp, ftype, fwd, None))
            this_anchor = disp
            for b in pending_b:
                plans.append(
                    FramePlan(len(plans), b, FrameType.B, prev_anchor, this_anchor)
                )
            pending_b = []
            prev_anchor = this_anchor
        if pending_b:  # unreachable given display_types()' trailing fix
            raise AssertionError("B frames without a backward anchor")
        return plans

    def display_order(self, num_frames: int) -> List[int]:
        """Permutation: display index -> coded index."""
        plans = self.coded_order(num_frames)
        out = [0] * num_frames
        for p in plans:
            out[p.display_index] = p.coded_index
        return out
