"""Regular video-filtering kernels (paper §2.2's counterpoint).

"Regular tasks, such as in linear video filtering where worst-case
communication requirements equal the average case, allow a tight
coupling with minimal buffering.  Irregular tasks demand less tight
coupling..."  These kernels are the regular half of that comparison: a
line-based filter chain whose per-step I/O and compute are perfectly
constant, so EXP-A7 can measure how much buffering each class of task
actually needs.

All kernels work on a raster of ``width``-byte luma rows:

* :class:`RowSourceKernel` — emits a frame's rows;
* :class:`HFilterKernel` — 3-tap horizontal FIR per row (stateless);
* :class:`VFilterKernel` — 3-tap vertical FIR (two-row state, still
  constant I/O per step);
* :class:`DownscaleKernel` — 2:1 horizontal decimation;
* :class:`RowSinkKernel` — collects rows back into a frame.

`reference_*` functions give the numpy golden output for equivalence
checks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.kahn.graph import ApplicationGraph, Direction, PortSpec, TaskNode
from repro.kahn.kernel import Kernel, KernelContext, StepOutcome

__all__ = [
    "RowSourceKernel",
    "HFilterKernel",
    "VFilterKernel",
    "DownscaleKernel",
    "RowSinkKernel",
    "MbToRasterKernel",
    "filter_chain_graph",
    "reference_hfilter",
    "reference_vfilter",
    "reference_downscale",
    "reference_chain",
]


def _filter3(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """The shared 3-tap kernel: (a + 2b + c + 2) // 4, saturating u8."""
    acc = a.astype(np.int32) + 2 * b.astype(np.int32) + c.astype(np.int32)
    return ((acc + 2) // 4).clip(0, 255).astype(np.uint8)


# ---------------------------------------------------------------------------
# golden reference (pure numpy)
# ---------------------------------------------------------------------------
def reference_hfilter(image: np.ndarray) -> np.ndarray:
    left = np.concatenate([image[:, :1], image[:, :-1]], axis=1)
    right = np.concatenate([image[:, 1:], image[:, -1:]], axis=1)
    return _filter3(left, image, right)


def reference_vfilter(image: np.ndarray) -> np.ndarray:
    up = np.concatenate([image[:1], image[:-1]], axis=0)
    down = np.concatenate([image[1:], image[-1:]], axis=0)
    return _filter3(up, image, down)


def reference_downscale(image: np.ndarray) -> np.ndarray:
    pairs = image.reshape(image.shape[0], -1, 2).astype(np.uint16)
    return ((pairs.sum(axis=2) + 1) // 2).astype(np.uint8)


def reference_chain(image: np.ndarray) -> np.ndarray:
    return reference_downscale(reference_vfilter(reference_hfilter(image)))


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------
class RowSourceKernel(Kernel):
    """Emit a frame row by row — perfectly regular output."""

    PORTS = (PortSpec("out", Direction.OUT),)

    def __init__(self, image: np.ndarray, compute_cycles: int = 8):
        super().__init__()
        self.image = np.ascontiguousarray(image, dtype=np.uint8)
        self.compute_cycles = compute_cycles
        self._row = 0

    def step(self, ctx: KernelContext):
        if self._row >= self.image.shape[0]:
            return StepOutcome.FINISHED
        row = self.image[self._row].tobytes()
        sp = yield ctx.get_space("out", len(row))
        if not sp:
            return StepOutcome.ABORTED
        yield ctx.compute(self.compute_cycles)
        yield ctx.write("out", 0, row)
        yield ctx.put_space("out", len(row))
        self._row += 1
        return StepOutcome.COMPLETED


class HFilterKernel(Kernel):
    """3-tap horizontal FIR: one row in, one row out, zero state."""

    PORTS = (PortSpec("in", Direction.IN), PortSpec("out", Direction.OUT))

    def __init__(self, width: int, cycles_per_row: Optional[int] = None):
        super().__init__()
        if width < 2:
            raise ValueError("width must be >= 2")
        self.width = width
        self.cycles_per_row = cycles_per_row if cycles_per_row is not None else width // 2

    def step(self, ctx: KernelContext):
        w = self.width
        sp = yield ctx.get_space("in", w)
        if not sp:
            return StepOutcome.FINISHED if sp.eos else StepOutcome.ABORTED
        sp_out = yield ctx.get_space("out", w)
        if not sp_out:
            return StepOutcome.ABORTED
        data = yield ctx.read("in", 0, w)
        row = np.frombuffer(data, dtype=np.uint8).reshape(1, w)
        out = reference_hfilter(row).tobytes()
        yield ctx.compute(self.cycles_per_row)
        yield ctx.write("out", 0, out)
        yield ctx.put_space("in", w)
        yield ctx.put_space("out", w)
        return StepOutcome.COMPLETED


class VFilterKernel(Kernel):
    """3-tap vertical FIR with edge clamping.

    Keeps the previous two rows as task state; emits row r's output
    once row r+1 has arrived (plus a final flush row at end of stream).
    I/O stays one-row-in/one-row-out per step after the one-row
    pipeline fill — still a regular task.
    """

    PORTS = (PortSpec("in", Direction.IN), PortSpec("out", Direction.OUT))

    def __init__(self, width: int, cycles_per_row: Optional[int] = None):
        super().__init__()
        self.width = width
        self.cycles_per_row = cycles_per_row if cycles_per_row is not None else width // 2
        self._prev: Optional[np.ndarray] = None  # row r-1
        self._cur: Optional[np.ndarray] = None  # row r
        self._flushed = False

    def _emit(self, ctx, above, mid, below):
        out = _filter3(above, mid, below).tobytes()
        yield ctx.write("out", 0, out)
        yield ctx.put_space("out", self.width)

    def step(self, ctx: KernelContext):
        w = self.width
        sp = yield ctx.get_space("in", w)
        if not sp:
            if sp.eos:
                if self._cur is not None and not self._flushed:
                    # final row: clamp below edge
                    sp_out = yield ctx.get_space("out", w)
                    if not sp_out:
                        return StepOutcome.ABORTED
                    above = self._prev if self._prev is not None else self._cur
                    yield from self._emit(ctx, above, self._cur, self._cur)
                    self._flushed = True
                return StepOutcome.FINISHED
            return StepOutcome.ABORTED
        if self._cur is not None:
            sp_out = yield ctx.get_space("out", w)
            if not sp_out:
                return StepOutcome.ABORTED
        data = yield ctx.read("in", 0, w)
        new = np.frombuffer(data, dtype=np.uint8)
        yield ctx.compute(self.cycles_per_row)
        if self._cur is not None:
            above = self._prev if self._prev is not None else self._cur
            yield from self._emit(ctx, above, self._cur, new)
        yield ctx.put_space("in", w)
        self._prev, self._cur = self._cur, new
        return StepOutcome.COMPLETED


class DownscaleKernel(Kernel):
    """2:1 horizontal decimation: in-row W, out-row W/2 — constant."""

    PORTS = (PortSpec("in", Direction.IN), PortSpec("out", Direction.OUT))

    def __init__(self, width: int, cycles_per_row: Optional[int] = None):
        super().__init__()
        if width % 2:
            raise ValueError("width must be even")
        self.width = width
        self.cycles_per_row = cycles_per_row if cycles_per_row is not None else width // 4

    def step(self, ctx: KernelContext):
        w = self.width
        sp = yield ctx.get_space("in", w)
        if not sp:
            return StepOutcome.FINISHED if sp.eos else StepOutcome.ABORTED
        sp_out = yield ctx.get_space("out", w // 2)
        if not sp_out:
            return StepOutcome.ABORTED
        data = yield ctx.read("in", 0, w)
        row = np.frombuffer(data, dtype=np.uint8).reshape(1, w)
        out = reference_downscale(row).tobytes()
        yield ctx.compute(self.cycles_per_row)
        yield ctx.write("out", 0, out)
        yield ctx.put_space("in", w)
        yield ctx.put_space("out", w // 2)
        return StepOutcome.COMPLETED


class RowSinkKernel(Kernel):
    """Collect rows into :attr:`rows`; :meth:`image` rebuilds the frame."""

    PORTS = (PortSpec("in", Direction.IN),)

    def __init__(self, width: int, compute_cycles: int = 4):
        super().__init__()
        self.width = width
        self.compute_cycles = compute_cycles
        self.rows: List[bytes] = []

    def image(self) -> np.ndarray:
        return np.frombuffer(b"".join(self.rows), dtype=np.uint8).reshape(-1, self.width)

    def step(self, ctx: KernelContext):
        w = self.width
        sp = yield ctx.get_space("in", w)
        if not sp:
            return StepOutcome.FINISHED if sp.eos else StepOutcome.ABORTED
        data = yield ctx.read("in", 0, w)
        yield ctx.compute(self.compute_cycles)
        yield ctx.put_space("in", w)
        self.rows.append(data)
        return StepOutcome.COMPLETED


# ---------------------------------------------------------------------------
# graph builder
# ---------------------------------------------------------------------------
def filter_chain_graph(
    image: np.ndarray,
    buffer_rows: int = 2,
    mapping: Optional[dict] = None,
) -> ApplicationGraph:
    """source -> hfilter -> vfilter -> downscale -> sink over rows.

    ``buffer_rows`` sizes every stream in rows — the §2.2 coupling
    knob: regular chains should run well even at ``buffer_rows=1``.
    """
    h, w = image.shape
    mapping = mapping or {}
    g = ApplicationGraph("filter_chain")

    def node(name, factory, ports):
        g.add_task(TaskNode(name, factory, ports, mapping=mapping.get(name)))

    node("src", lambda: RowSourceKernel(image), RowSourceKernel.PORTS)
    node("hf", lambda: HFilterKernel(w), HFilterKernel.PORTS)
    node("vf", lambda: VFilterKernel(w), VFilterKernel.PORTS)
    node("ds", lambda: DownscaleKernel(w), DownscaleKernel.PORTS)
    node("sink", lambda: RowSinkKernel(w // 2), RowSinkKernel.PORTS)
    g.connect("src.out", "hf.in", buffer_size=buffer_rows * w)
    g.connect("hf.out", "vf.in", buffer_size=buffer_rows * w)
    g.connect("vf.out", "ds.in", buffer_size=buffer_rows * w)
    g.connect("ds.out", "sink.in", buffer_size=max(1, buffer_rows * w // 2))
    return g


class MbToRasterKernel(Kernel):
    """Format converter: macroblock pixel packets -> luma raster rows.

    The glue between the block-oriented decode pipeline and the
    line-oriented display processing (scalers/filters) — a standard
    element of display subsystems (cf. paper ref [7], Jaspers & de
    With).  Buffers one 16-line macroblock row; once the row of
    macroblocks is complete, emits its 16 luma lines and recycles the
    buffer.  Finishes by count (frames x lines).
    """

    PORTS = (PortSpec("in", Direction.IN), PortSpec("out", Direction.OUT))

    def __init__(self, width: int, height: int, num_frames: int, compute_cycles: int = 8):
        super().__init__()
        if width % 16 or height % 16:
            raise ValueError("dimensions must be multiples of 16")
        self.width = width
        self.height = height
        self.num_frames = num_frames
        self.compute_cycles = compute_cycles
        self.mb_cols = width // 16
        self._strip = np.zeros((16, width), dtype=np.uint8)
        self._mb_in_row = 0
        self._emitted_frames = 0
        self._pending_rows = 0  # rows of the completed strip not yet sent

    def step(self, ctx: KernelContext):
        from repro.media.packets import HEADER_SIZE, unpack_pixels
        from repro.media.tasks import read_packet

        if self._pending_rows:
            row_idx = 16 - self._pending_rows
            row = self._strip[row_idx].tobytes()
            sp = yield ctx.get_space("out", self.width)
            if not sp:
                return StepOutcome.ABORTED
            yield ctx.compute(self.compute_cycles)
            yield ctx.write("out", 0, row)
            yield ctx.put_space("out", self.width)
            self._pending_rows -= 1
            return StepOutcome.COMPLETED

        if self._emitted_frames >= self.num_frames and self._mb_in_row == 0:
            return StepOutcome.FINISHED
        status, hdr, payload = yield from read_packet(ctx, "in")
        if status == "eos":
            return StepOutcome.FINISHED
        if status == "abort":
            return StepOutcome.ABORTED
        yield ctx.compute(self.compute_cycles)
        yield ctx.put_space("in", HEADER_SIZE + hdr.payload_len)
        # ---- commit state: place the 4 luma blocks into the strip ----
        blocks = unpack_pixels(payload)
        mb_x = hdr.mb_index % self.mb_cols
        self._strip[0:8, mb_x * 16 : mb_x * 16 + 8] = blocks[0]
        self._strip[0:8, mb_x * 16 + 8 : mb_x * 16 + 16] = blocks[1]
        self._strip[8:16, mb_x * 16 : mb_x * 16 + 8] = blocks[2]
        self._strip[8:16, mb_x * 16 + 8 : mb_x * 16 + 16] = blocks[3]
        self._mb_in_row += 1
        if self._mb_in_row == self.mb_cols:
            self._mb_in_row = 0
            self._pending_rows = 16
            if hdr.mb_index == (self.height // 16) * self.mb_cols - 1:
                self._emitted_frames += 1
        return StepOutcome.COMPLETED
