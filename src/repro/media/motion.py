"""Block motion estimation and compensation.

Full-search block matching over a configurable range on 16x16 luma
macroblocks (SAD criterion), plus the prediction builders for P
(one reference) and B (two references, averaged) macroblocks.  Chroma
uses halved motion vectors on 8x8 blocks (4:2:0).

This is the functional model of the first instance's MC/ME coprocessor
(paper §6) — in hardware it is the unit with a dedicated off-chip
connection for reference-frame access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["MotionVector", "estimate", "predict_block", "predict_mb", "sad"]

MB = 16  # luma macroblock size


@dataclass(frozen=True)
class MotionVector:
    """Motion vector (dy, dx) in luma pixels; integer-pel by default.

    Half-pel mode (MPEG-2's finer grid) stores vectors in *half-pel
    units* with :attr:`half_pel` set; prediction then bilinearly
    interpolates with MPEG's round-half-up integer arithmetic."""

    dy: int
    dx: int
    half_pel: bool = False

    def halved(self) -> "MotionVector":
        """Chroma vector for 4:2:0 (integer division toward zero)."""
        return MotionVector(int(self.dy / 2), int(self.dx / 2), self.half_pel)


def sad(a: np.ndarray, b: np.ndarray) -> int:
    """Sum of absolute differences."""
    return int(np.abs(a.astype(np.int32) - b.astype(np.int32)).sum())


def _clamped_patch(frame: np.ndarray, y: int, x: int, h: int, w: int) -> np.ndarray:
    """Patch with edge-clamped coordinates (motion over frame borders)."""
    hh, ww = frame.shape
    ys = np.clip(np.arange(y, y + h), 0, hh - 1)
    xs = np.clip(np.arange(x, x + w), 0, ww - 1)
    return frame[np.ix_(ys, xs)]


def estimate(
    current: np.ndarray,
    reference: np.ndarray,
    mb_y: int,
    mb_x: int,
    search_range: int = 4,
    half_pel: bool = False,
) -> Tuple[MotionVector, int]:
    """Block-matching ME for the macroblock at (mb_y, mb_x) luma pixels.

    Full search over +-search_range integer positions; with
    ``half_pel``, a +-1 half-pel refinement around the integer winner
    (the classic two-stage search).  Returns the best (vector, SAD);
    the zero vector wins ties — deterministic and compression-friendly.
    """
    target = current[mb_y : mb_y + MB, mb_x : mb_x + MB]
    best_vec = MotionVector(0, 0)
    best_cost = sad(target, _clamped_patch(reference, mb_y, mb_x, MB, MB))
    for dy in range(-search_range, search_range + 1):
        for dx in range(-search_range, search_range + 1):
            if dy == 0 and dx == 0:
                continue
            cost = sad(target, _clamped_patch(reference, mb_y + dy, mb_x + dx, MB, MB))
            if cost < best_cost:
                best_cost = cost
                best_vec = MotionVector(dy, dx)
    if not half_pel:
        return best_vec, best_cost
    # half-pel refinement around the integer winner
    best_vec = MotionVector(2 * best_vec.dy, 2 * best_vec.dx, half_pel=True)
    refined_vec, refined_cost = best_vec, best_cost
    for hdy in (-1, 0, 1):
        for hdx in (-1, 0, 1):
            if hdy == 0 and hdx == 0:
                continue
            cand = MotionVector(best_vec.dy + hdy, best_vec.dx + hdx, half_pel=True)
            pred = predict_block(reference, mb_y, mb_x, MB, cand)
            cost = sad(target, pred.astype(np.int32))
            if cost < refined_cost:
                refined_cost = cost
                refined_vec = cand
    return refined_vec, refined_cost


def predict_block(
    reference: np.ndarray, y: int, x: int, size: int, vec: MotionVector
) -> np.ndarray:
    """Motion-compensated prediction patch (edge-clamped).

    Half-pel vectors interpolate bilinearly with MPEG-2's integer
    rounding: ``//2 +1`` for the 1-D halves, ``//4 +2`` for the 2-D
    quarter position — exact integer arithmetic, so predictions stay
    bit-reproducible everywhere."""
    if not vec.half_pel:
        return _clamped_patch(reference, y + vec.dy, x + vec.dx, size, size).astype(np.float64)
    int_dy, frac_y = vec.dy >> 1, vec.dy & 1
    int_dx, frac_x = vec.dx >> 1, vec.dx & 1
    base_y, base_x = y + int_dy, x + int_dx
    p00 = _clamped_patch(reference, base_y, base_x, size, size).astype(np.int32)
    if not frac_y and not frac_x:
        return p00.astype(np.float64)
    if frac_y and not frac_x:
        p10 = _clamped_patch(reference, base_y + 1, base_x, size, size).astype(np.int32)
        return ((p00 + p10 + 1) >> 1).astype(np.float64)
    if frac_x and not frac_y:
        p01 = _clamped_patch(reference, base_y, base_x + 1, size, size).astype(np.int32)
        return ((p00 + p01 + 1) >> 1).astype(np.float64)
    p10 = _clamped_patch(reference, base_y + 1, base_x, size, size).astype(np.int32)
    p01 = _clamped_patch(reference, base_y, base_x + 1, size, size).astype(np.int32)
    p11 = _clamped_patch(reference, base_y + 1, base_x + 1, size, size).astype(np.int32)
    return ((p00 + p01 + p10 + p11 + 2) >> 2).astype(np.float64)


def predict_mb(
    fwd: Optional[np.ndarray],
    bwd: Optional[np.ndarray],
    y: int,
    x: int,
    size: int,
    fwd_vec: Optional[MotionVector],
    bwd_vec: Optional[MotionVector],
) -> np.ndarray:
    """Prediction for one block: forward, backward, or bidirectional.

    Exactly one of the standard MPEG modes: pass the references and
    vectors that apply; bidirectional averages the two predictions
    (rounded half up, as MPEG does).
    """
    preds = []
    if fwd is not None and fwd_vec is not None:
        preds.append(predict_block(fwd, y, x, size, fwd_vec))
    if bwd is not None and bwd_vec is not None:
        preds.append(predict_block(bwd, y, x, size, bwd_vec))
    if not preds:
        raise ValueError("prediction needs at least one reference+vector")
    if len(preds) == 1:
        return preds[0]
    return np.floor((preds[0] + preds[1] + 1) / 2)
