"""Exact 8x8 type-II DCT / inverse DCT.

The orthonormal DCT-II in matrix form: ``coef = C @ block @ C.T`` with
the standard basis matrix C.  Matrix multiplication on numpy arrays is
both exact (float64) and fast — the DCT coprocessor's functional model.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fdct8x8", "idct8x8", "DCT_BASIS"]

_N = 8


def _basis() -> np.ndarray:
    k = np.arange(_N).reshape(-1, 1)
    n = np.arange(_N).reshape(1, -1)
    c = np.sqrt(2.0 / _N) * np.cos((2 * n + 1) * k * np.pi / (2 * _N))
    c[0, :] = np.sqrt(1.0 / _N)
    return c


#: The orthonormal 8-point DCT-II basis matrix (C @ C.T == I).
DCT_BASIS = _basis()
_C = DCT_BASIS
_CT = DCT_BASIS.T


def fdct8x8(block: np.ndarray) -> np.ndarray:
    """Forward DCT of one 8x8 block (any numeric dtype) -> float64."""
    if block.shape != (_N, _N):
        raise ValueError(f"expected 8x8 block, got {block.shape}")
    return _C @ block.astype(np.float64) @ _CT


def idct8x8(coef: np.ndarray) -> np.ndarray:
    """Inverse DCT of one 8x8 coefficient block -> float64."""
    if coef.shape != (_N, _N):
        raise ValueError(f"expected 8x8 block, got {coef.shape}")
    return _CT @ coef.astype(np.float64) @ _C
