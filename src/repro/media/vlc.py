"""Variable-length coding: canonical Huffman for (run, level) pairs.

Modelled on MPEG-2's DCT-coefficient tables: common (run, |level|)
pairs get short codes from a static table; everything else uses an
escape code with fixed-length run and level fields; EOB terminates a
block.  The table is generated deterministically at import time from a
two-sided geometric frequency model — not MPEG-2's exact table, but
with the same structure and a similar length distribution, so VLD/VLE
cycle counts scale with content the same way.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.media.bitstream import BitReader, BitWriter, BitstreamError
from repro.media.quant import LEVEL_MAX

__all__ = ["VlcTable", "COEFF_TABLE", "encode_block_pairs", "decode_block_pairs"]

#: (run, |level|) pairs that get dedicated Huffman codes.
_TABLED_RUN = 16
_TABLED_LEVEL = 8

#: escape code field widths
_ESC_RUN_BITS = 6
_ESC_LEVEL_BITS = 12  # signed magnitude fits LEVEL_MAX


class VlcTable:
    """A canonical Huffman code over symbols 0..n-1 plus helpers.

    Symbols: ``0`` = EOB, ``1`` = ESC, then tabled (run, |level|) pairs
    in row-major order.  Codes are canonical (sorted by length, then
    symbol), so the table is fully defined by its code lengths.
    """

    EOB = 0
    ESC = 1

    def __init__(self, frequencies: List[float]):
        if len(frequencies) < 2:
            raise ValueError("need at least two symbols")
        lengths = _huffman_lengths(frequencies)
        self.codes: List[Tuple[int, int]] = _canonical_codes(lengths)  # (code, length)
        #: decode map: (length, code) -> symbol
        self._decode: Dict[Tuple[int, int], int] = {
            (length, code): sym for sym, (code, length) in enumerate(self.codes)
        }
        self.max_length = max(length for _c, length in self.codes)

    @staticmethod
    def pair_symbol(run: int, magnitude: int) -> int:
        """Symbol index of a tabled (run, |level|) pair."""
        return 2 + run * _TABLED_LEVEL + (magnitude - 1)

    @staticmethod
    def is_tabled(run: int, level: int) -> bool:
        return 0 <= run < _TABLED_RUN and 1 <= abs(level) <= _TABLED_LEVEL

    def write_symbol(self, w: BitWriter, symbol: int) -> None:
        code, length = self.codes[symbol]
        w.write_bits(code, length)

    def read_symbol(self, r: BitReader) -> int:
        code = 0
        for length in range(1, self.max_length + 1):
            code = (code << 1) | r.read_bits(1)
            sym = self._decode.get((length, code))
            if sym is not None:
                return sym
        raise BitstreamError("invalid VLC code (corrupt stream)")


def _huffman_lengths(frequencies: List[float]) -> List[int]:
    """Code lengths from frequencies via the standard Huffman heap."""
    n = len(frequencies)
    heap = [(freq, i, (i,)) for i, freq in enumerate(frequencies)]
    heapq.heapify(heap)
    lengths = [0] * n
    next_id = n
    while len(heap) > 1:
        f1, _i1, syms1 = heapq.heappop(heap)
        f2, _i2, syms2 = heapq.heappop(heap)
        merged = syms1 + syms2
        for s in merged:
            lengths[s] += 1
        heapq.heappush(heap, (f1 + f2, next_id, merged))
        next_id += 1
    return lengths


def _canonical_codes(lengths: List[int]) -> List[Tuple[int, int]]:
    """Canonical code assignment: by (length, symbol)."""
    order = sorted(range(len(lengths)), key=lambda s: (lengths[s], s))
    codes: List[Tuple[int, int]] = [(0, 0)] * len(lengths)
    code = 0
    prev_len = 0
    for sym in order:
        length = lengths[sym]
        code <<= length - prev_len
        codes[sym] = (code, length)
        code += 1
        prev_len = length
    return codes


def _default_frequencies() -> List[float]:
    """Two-sided geometric model: short runs and small levels dominate
    (the empirical shape of DCT coefficient statistics)."""
    freqs = [1.0, 0.02]  # EOB very frequent (once per block), ESC rare
    for run in range(_TABLED_RUN):
        for mag in range(1, _TABLED_LEVEL + 1):
            freqs.append(0.9 ** run * 0.55 ** mag)
    return freqs


#: The coefficient table shared by the encoder (VLE) and decoder (VLD).
COEFF_TABLE = VlcTable(_default_frequencies())


def encode_block_pairs(w: BitWriter, pairs: List[Tuple[int, int]]) -> int:
    """Write one block's run-level pairs + EOB; returns bits written."""
    start = w.bits_written
    for run, level in pairs:
        if level == 0 or run < 0:
            raise ValueError(f"bad pair ({run}, {level})")
        if abs(level) > LEVEL_MAX or run >= (1 << _ESC_RUN_BITS):
            raise ValueError(f"pair ({run}, {level}) exceeds escape range")
        if COEFF_TABLE.is_tabled(run, level):
            COEFF_TABLE.write_symbol(w, VlcTable.pair_symbol(run, abs(level)))
            w.write_bit(1 if level < 0 else 0)
        else:
            COEFF_TABLE.write_symbol(w, VlcTable.ESC)
            w.write_bits(run, _ESC_RUN_BITS)
            w.write_bit(1 if level < 0 else 0)
            w.write_bits(abs(level), _ESC_LEVEL_BITS)
    COEFF_TABLE.write_symbol(w, VlcTable.EOB)
    return w.bits_written - start


def decode_block_pairs(r: BitReader) -> List[Tuple[int, int]]:
    """Read run-level pairs up to and including EOB."""
    pairs: List[Tuple[int, int]] = []
    while True:
        sym = COEFF_TABLE.read_symbol(r)
        if sym == VlcTable.EOB:
            return pairs
        if sym == VlcTable.ESC:
            run = r.read_bits(_ESC_RUN_BITS)
            sign = r.read_bit()
            mag = r.read_bits(_ESC_LEVEL_BITS)
            if mag == 0:
                raise BitstreamError("escape with zero level")
            pairs.append((run, -mag if sign else mag))
        else:
            idx = sym - 2
            run, mag = divmod(idx, _TABLED_LEVEL)
            mag += 1
            sign = r.read_bit()
            pairs.append((run, -mag if sign else mag))
        if len(pairs) > 64:
            raise BitstreamError("more than 64 coefficients in a block")
