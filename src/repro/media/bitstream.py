"""Bit-level stream writer/reader.

MSB-first bit packing, as in MPEG elementary streams.  Includes
unsigned/signed exp-Golomb codes (used for motion-vector differentials
in our simplified syntax).
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader", "BitstreamError"]


class BitstreamError(ValueError):
    """Malformed bitstream or misuse of the reader/writer."""


class BitWriter:
    """Accumulates bits MSB-first into a byte buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0
        self._n = 0  # bits in accumulator
        self.bits_written = 0

    def write_bits(self, value: int, n_bits: int) -> None:
        if n_bits < 0 or n_bits > 64:
            raise BitstreamError(f"n_bits must be in [0, 64], got {n_bits}")
        if value < 0 or value >= (1 << n_bits):
            raise BitstreamError(f"value {value} does not fit in {n_bits} bits")
        self._acc = (self._acc << n_bits) | value
        self._n += n_bits
        self.bits_written += n_bits
        while self._n >= 8:
            self._n -= 8
            self._bytes.append((self._acc >> self._n) & 0xFF)
        self._acc &= (1 << self._n) - 1

    def write_bit(self, bit: int) -> None:
        self.write_bits(1 if bit else 0, 1)

    def write_ue(self, value: int) -> None:
        """Unsigned exp-Golomb."""
        if value < 0:
            raise BitstreamError(f"ue() needs value >= 0, got {value}")
        code = value + 1
        n = code.bit_length()
        self.write_bits(0, n - 1)
        self.write_bits(code, n)

    def write_se(self, value: int) -> None:
        """Signed exp-Golomb (0, 1, -1, 2, -2, ...)."""
        self.write_ue(2 * value - 1 if value > 0 else -2 * value)

    def align(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        if self._n:
            self.write_bits(0, 8 - self._n)

    def getvalue(self) -> bytes:
        """Byte-aligned snapshot (pads a copy; the writer stays usable)."""
        out = bytearray(self._bytes)
        if self._n:
            out.append((self._acc << (8 - self._n)) & 0xFF)
        return bytes(out)

    def __len__(self) -> int:
        return len(self._bytes) + (1 if self._n else 0)


class BitReader:
    """Reads bits MSB-first from a byte buffer."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0  # bit position

    @property
    def bit_position(self) -> int:
        return self._pos

    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    def read_bits(self, n_bits: int) -> int:
        if n_bits < 0 or n_bits > 64:
            raise BitstreamError(f"n_bits must be in [0, 64], got {n_bits}")
        if self._pos + n_bits > len(self._data) * 8:
            raise BitstreamError(
                f"read of {n_bits} bits past end (at bit {self._pos} of "
                f"{len(self._data) * 8})"
            )
        value = 0
        pos = self._pos
        remaining = n_bits
        while remaining:
            byte = self._data[pos >> 3]
            bit_off = pos & 7
            take = min(remaining, 8 - bit_off)
            chunk = (byte >> (8 - bit_off - take)) & ((1 << take) - 1)
            value = (value << take) | chunk
            pos += take
            remaining -= take
        self._pos = pos
        return value

    def read_bit(self) -> int:
        return self.read_bits(1)

    def read_ue(self) -> int:
        zeros = 0
        while self.read_bits(1) == 0:
            zeros += 1
            if zeros > 32:
                raise BitstreamError("exp-Golomb prefix too long (corrupt stream)")
        return ((1 << zeros) | self.read_bits(zeros)) - 1 if zeros else 0

    def read_se(self) -> int:
        ue = self.read_ue()
        return (ue + 1) // 2 if ue % 2 == 1 else -(ue // 2)

    def align(self) -> None:
        self._pos = (self._pos + 7) & ~7

    def peek_bits(self, n_bits: int) -> int:
        pos = self._pos
        try:
            return self.read_bits(n_bits)
        finally:
            self._pos = pos
