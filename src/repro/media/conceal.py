"""Error concealment: decoding a stream the network damaged.

After a lossy ingest (:mod:`repro.net`) the recovered transport stream
may carry erased slots — the 4-byte TS header survives but the payload
is zeroed.  The decode graph must keep running at full rate anyway:
that is the whole point of graceful degradation.  This module supplies
the two drop-in kernels that make it so:

* :class:`ConcealingVldKernel` — a :class:`~repro.media.transport.
  VldStreamKernel` that knows, from a build-time clean parse of the
  original elementary stream (:func:`video_frame_spans`), which coded
  frames overlap an erasure.  Clean frames parse exactly as before; a
  damaged frame is *concealed*: its bits are consumed unparsed and one
  synthetic macroblock per step is emitted instead — forward zero-vector
  prediction with no residual for P/B frames (a motion-compensated
  repeat of the reference, the classic slice-loss concealment), flat
  intra for I frames.  Downstream kernels see perfectly ordinary packets.
* :class:`ConcealingAdpcmKernel` — an audio decoder that substitutes
  silence for ADPCM blocks overlapping an erasure instead of decoding
  zeroed (or half-zeroed) bytes into noise.

Both kernels delegate to their parent class when their damage set is
empty, so a 0%-loss run is *structurally* byte-identical to the
packet-free pipeline.  Both report ``degradation_stats()`` — picked up
by :meth:`repro.core.system.EclipseSystem` into
``SystemResult.degradation`` — with exact decoded/concealed accounting
and an ``N501`` diagnosis when concealment exceeds the budget.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.kahn.kernel import KernelContext, StepOutcome
from repro.media.audio import BLOCK_BYTES, BLOCK_SAMPLES, AdpcmDecoderKernel, adpcm_decode_block
from repro.media.bitstream import BitReader, BitstreamError
from repro.media.codec import MAGIC, SYNC_MARKER, CodecParams, FrameType, MbMode, read_mb_syntax
from repro.media.motion import MotionVector
from repro.media.packets import HEADER_SIZE, MbHeader
from repro.media.tasks import CostModel, emit, reserve_all
from repro.media.transport import VldStreamKernel

__all__ = [
    "video_frame_spans",
    "overlapping_frames",
    "damaged_audio_blocks",
    "ConcealingVldKernel",
    "ConcealingAdpcmKernel",
]

ByteRange = Tuple[int, int]


# ---------------------------------------------------------------------------
# build-time damage mapping
# ---------------------------------------------------------------------------
def video_frame_spans(
    video_es: bytes, params: CodecParams, num_frames: int
) -> Tuple[int, List[Tuple[int, int]]]:
    """Clean-parse the *original* elementary stream into bit spans.

    Returns ``(header_end_bit, spans)`` where ``spans[i]`` is the
    ``(start_bit, end_bit)`` of coded frame ``i`` (coded order).  Runs
    at build time on the pre-loss stream, so every parse must succeed;
    the spans then locate damage in the post-loss stream, whose byte
    layout is identical (erasure zeroes payloads in place).
    """
    r = BitReader(video_es)
    magic = bytes(r.read_bits(8) for _ in range(4))
    if magic != MAGIC:
        raise BitstreamError(f"bad magic {magic!r}")
    for _ in range(9):
        r.read_ue()
    header_end = r.bit_position
    plans = params.gop().coded_order(num_frames)
    spans: List[Tuple[int, int]] = []
    for plan in plans:
        start = r.bit_position
        r.align()
        if r.read_bits(8) != SYNC_MARKER:
            raise BitstreamError(f"lost sync at frame {plan.display_index}")
        r.read_ue()  # display index
        r.read_ue()  # frame type
        for mb in range(params.mbs_per_frame):
            read_mb_syntax(r, mb, plan.frame_type, params.half_pel)
        spans.append((start, r.bit_position))
    return header_end, spans


def _overlaps_bits(span: Tuple[int, int], erased: Sequence[ByteRange]) -> bool:
    s_bit, e_bit = span
    for b0, b1 in erased:
        if s_bit < b1 * 8 and b0 * 8 < e_bit:
            return True
    return False


def overlapping_frames(
    spans: Sequence[Tuple[int, int]], erased: Sequence[ByteRange]
) -> Set[int]:
    """Coded-frame indices whose bit span touches an erased byte range."""
    return {i for i, span in enumerate(spans) if _overlaps_bits(span, erased)}


def damaged_audio_blocks(erased: Sequence[ByteRange]) -> Set[int]:
    """ADPCM block indices overlapping an erased audio-ES byte range."""
    out: Set[int] = set()
    for b0, b1 in erased:
        out.update(range(b0 // BLOCK_BYTES, (max(b1, b0 + 1) - 1) // BLOCK_BYTES + 1))
    return out


# ---------------------------------------------------------------------------
# video: frame concealment
# ---------------------------------------------------------------------------
class ConcealingVldKernel(VldStreamKernel):
    """VLD front end that survives erasures by concealing whole frames.

    ``damaged_frames``/``frame_spans``/``header_end_bit`` come from the
    build-time damage mapping above; ``header_damaged`` means the
    sequence header itself was hit (it is then skipped — the CPU
    configured the codec parameters out-of-band, exactly the knowledge
    the parent class already requires).  ``conceal_budget`` is the
    acceptable concealed fraction of the coded frames; beyond it the
    degradation report carries an ``N501`` diagnosis.  When
    ``report_always`` is false and nothing was damaged,
    ``degradation_stats()`` returns None so a clean run's result is
    byte-identical to the packet-free pipeline's.
    """

    def __init__(
        self,
        params: CodecParams,
        num_frames: int,
        damaged_frames: Iterable[int] = (),
        frame_spans: Sequence[Tuple[int, int]] = (),
        header_end_bit: int = 0,
        header_damaged: bool = False,
        conceal_budget: float = 0.5,
        report_always: bool = False,
        cost: Optional[CostModel] = None,
    ):
        super().__init__(params, num_frames, cost)
        self._damaged = frozenset(damaged_frames)
        self._spans = tuple(frame_spans)
        self._header_end_bit = header_end_bit
        self._header_damaged = header_damaged
        if self._damaged and len(self._spans) < len(self._plans):
            raise ValueError("frame_spans must cover every coded frame")
        if not 0.0 <= conceal_budget <= 1.0:
            raise ValueError(f"conceal_budget must be in [0, 1], got {conceal_budget}")
        self.conceal_budget = conceal_budget
        self._report_always = report_always
        self._dropped_bits = 0  # bits compacted out of the FIFO so far
        self.mbs_concealed = 0
        self._frames_done: Set[int] = set()

    # absolute ES bit bookkeeping ------------------------------------------
    def _compact(self) -> None:
        self._dropped_bits += (self._bitpos // 8) * 8
        super()._compact()

    def _buffered_end_bit(self) -> int:
        return self._dropped_bits + len(self._fifo) * 8

    def _refill(self, ctx: KernelContext):
        # identical to the parent's refill arm: same ops, same cycles
        sp = yield ctx.get_space("es_in", self.REFILL)
        n = self.REFILL if sp else sp.available
        if not sp and not sp.eos:
            return StepOutcome.ABORTED
        if n == 0:
            raise BitstreamError("elementary stream ended mid-parse")
        yield ctx.get_space("es_in", n)
        data = yield ctx.read("es_in", 0, n)
        yield ctx.put_space("es_in", n)
        yield ctx.compute(4 + n // 8)
        self._fifo.extend(data)
        return StepOutcome.COMPLETED

    def _conceal_header(self, plan) -> MbHeader:
        ft = plan.frame_type
        q = self.params.qscale(ft)
        if ft is FrameType.I:
            return MbHeader(self._mb_ptr, ft, MbMode.INTRA, 0, q, None, None, 0)
        zero = MotionVector(0, 0, self.params.half_pel)
        if ft is FrameType.P:
            return MbHeader(self._mb_ptr, ft, MbMode.FWD, 0, q, zero, None, 0)
        return MbHeader(self._mb_ptr, ft, MbMode.BI, 0, q, zero, zero, 0)

    def step(self, ctx: KernelContext):
        if not self._damaged and not self._header_damaged:
            return (yield from super().step(ctx))
        if self._frame_ptr >= len(self._plans):
            return StepOutcome.FINISHED
        if not self._header_checked and self._header_damaged:
            # the header bits are garbage; skip them once buffered — the
            # expected parameters were configured out-of-band (N502)
            if self._buffered_end_bit() < self._header_end_bit:
                return (yield from self._refill(ctx))
            yield ctx.compute(self.cost.vld_per_mb)
            self._bitpos = self._header_end_bit - self._dropped_bits
            self._header_checked = True
            self._compact()
            return StepOutcome.COMPLETED
        if self._header_checked and self._frame_ptr in self._damaged:
            return (yield from self._conceal_step(ctx))
        return (yield from super().step(ctx))

    def _conceal_step(self, ctx: KernelContext):
        plan = self._plans[self._frame_ptr]
        _start, end_bit = self._spans[self._frame_ptr]
        if self._buffered_end_bit() < end_bit:
            # pull the damaged span in before discarding it, preserving
            # the stream-consumption pattern of a real decode
            return (yield from self._refill(ctx))
        hdr = self._conceal_header(plan)
        yield ctx.compute(self.cost.vld_per_mb)
        ok = yield from reserve_all(
            ctx, [("coef_out", HEADER_SIZE), ("mv_out", HEADER_SIZE)]
        )
        if not ok:
            return StepOutcome.ABORTED
        packed = hdr.pack()
        yield from emit(ctx, "coef_out", packed)
        yield from emit(ctx, "mv_out", packed)
        # commit
        self.mbs_concealed += 1
        self._frames_done.add(self._frame_ptr)
        self._mb_ptr += 1
        if self._mb_ptr == self.params.mbs_per_frame:
            self._mb_ptr = 0
            self._bitpos = end_bit - self._dropped_bits
            self._compact()
            self._frame_ptr += 1
        return StepOutcome.COMPLETED

    # degradation accounting -----------------------------------------------
    def degradation_stats(self) -> Optional[Dict]:
        concealed = len(self._frames_done)
        if not self._report_always and not concealed and not self._header_damaged:
            return None
        total = len(self._plans)
        over = total > 0 and concealed > self.conceal_budget * total
        out: Dict = {
            "kind": "video",
            "frames_total": total,
            "frames_decoded": total - concealed,
            "frames_concealed": concealed,
            "mbs_concealed": self.mbs_concealed,
            "header_concealed": bool(self._header_damaged),
            "conceal_budget": self.conceal_budget,
            "over_budget": over,
        }
        diagnoses = []
        if over:
            diagnoses.append({
                "rule": "N501",
                "message": (
                    f"{concealed}/{total} frames concealed exceeds the "
                    f"budget of {self.conceal_budget:g}"
                ),
            })
        if self._header_damaged:
            diagnoses.append({
                "rule": "N502",
                "message": "sequence header reconstructed from configuration",
            })
        if diagnoses:
            out["diagnoses"] = diagnoses
        return out


# ---------------------------------------------------------------------------
# audio: silence substitution
# ---------------------------------------------------------------------------
class ConcealingAdpcmKernel(AdpcmDecoderKernel):
    """ADPCM decoder that outputs silence for network-damaged blocks.

    A zeroed (or worse, half-zeroed) ADPCM block would decode into a
    click or noise burst; explicit silence is the audible equivalent of
    frame-copy concealment, and gives exact accounting."""

    def __init__(
        self,
        damaged_blocks: Iterable[int] = (),
        report_always: bool = False,
        cycles_per_sample: int = 3,
    ):
        super().__init__(cycles_per_sample)
        self._damaged = frozenset(damaged_blocks)
        self._report_always = report_always
        self._block_idx = 0
        self.blocks_total = 0
        self.blocks_silenced = 0

    def step(self, ctx: KernelContext):
        if not self._damaged and not self._report_always:
            return (yield from super().step(ctx))
        sp = yield ctx.get_space("in", BLOCK_BYTES)
        if not sp:
            return StepOutcome.FINISHED if sp.eos else StepOutcome.ABORTED
        out_bytes = BLOCK_SAMPLES * 2
        sp_out = yield ctx.get_space("out", out_bytes)
        if not sp_out:
            return StepOutcome.ABORTED
        block = yield ctx.read("in", 0, BLOCK_BYTES)
        silenced = self._block_idx in self._damaged
        if silenced:
            pcm_bytes = b"\x00" * out_bytes
        else:
            pcm_bytes = adpcm_decode_block(block).tobytes()
        yield ctx.compute(self.cycles_per_sample * BLOCK_SAMPLES)
        yield ctx.write("out", 0, pcm_bytes)
        yield ctx.put_space("in", BLOCK_BYTES)
        yield ctx.put_space("out", out_bytes)
        # commit
        self._block_idx += 1
        self.blocks_total += 1
        if silenced:
            self.blocks_silenced += 1
        return StepOutcome.COMPLETED

    def degradation_stats(self) -> Optional[Dict]:
        if not self._report_always and not self.blocks_silenced:
            return None
        return {
            "kind": "audio",
            "blocks_total": self.blocks_total,
            "blocks_decoded": self.blocks_total - self.blocks_silenced,
            "blocks_silenced": self.blocks_silenced,
        }
