"""Audio substrate: PCM source and an IMA-ADPCM codec.

Paper §6: "Audio decoding, variable-length encoding, and
de-multiplexing are executed in software on the media processor
(DSP-CPU)."  This module provides the audio half of that story: a
deterministic PCM test source and a block-based IMA-ADPCM codec
(integer state machine, bit-exact by construction), plus the Eclipse
task kernels that decode it as a *software* task.

IMA-ADPCM is the classic 4-bit differential codec: a step-size table
indexed adaptively, one nibble per sample, 4:1 compression on 16-bit
PCM.  Blocks are independently decodable: each starts with the
predictor and step index, so the stream is packetizable per block —
matching Eclipse's packet-oriented processing.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

import numpy as np

from repro.kahn.graph import Direction, PortSpec
from repro.kahn.kernel import Kernel, KernelContext, StepOutcome

__all__ = [
    "STEP_TABLE",
    "INDEX_TABLE",
    "synthetic_pcm",
    "adpcm_encode_block",
    "adpcm_decode_block",
    "adpcm_encode",
    "adpcm_decode",
    "BLOCK_SAMPLES",
    "BLOCK_BYTES",
    "AdpcmDecoderKernel",
    "PcmSinkKernel",
]

#: samples per ADPCM block (even; two samples per byte)
BLOCK_SAMPLES = 256
#: encoded block: 2 B predictor + 1 B index + 1 B pad + nibbles
BLOCK_BYTES = 4 + BLOCK_SAMPLES // 2

#: the standard IMA step-size table (89 entries)
STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]

#: index adjustment per 4-bit code
INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]


def synthetic_pcm(num_samples: int, seed: int = 11, rate: int = 48_000) -> np.ndarray:
    """Deterministic int16 mono test signal: tones + noise."""
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    rng = np.random.default_rng(seed)
    t = np.arange(num_samples) / rate
    signal = (
        6000 * np.sin(2 * np.pi * 440.0 * t)
        + 3000 * np.sin(2 * np.pi * 1320.0 * t + 0.5)
        + 1200 * np.sin(2 * np.pi * 3700.0 * t)
        + rng.normal(0, 120, num_samples)
    )
    return np.clip(signal, -32768, 32767).astype(np.int16)


def _encode_sample(sample: int, predictor: int, index: int) -> Tuple[int, int, int]:
    """One IMA-ADPCM encode step: returns (code, predictor', index')."""
    step = STEP_TABLE[index]
    diff = sample - predictor
    code = 0
    if diff < 0:
        code = 8
        diff = -diff
    if diff >= step:
        code |= 4
        diff -= step
    if diff >= step >> 1:
        code |= 2
        diff -= step >> 1
    if diff >= step >> 2:
        code |= 1
    _, predictor = _decode_sample(code, predictor, index)
    index = max(0, min(88, index + INDEX_TABLE[code]))
    return code, predictor, index


def _decode_sample(code: int, predictor: int, index: int) -> Tuple[int, int]:
    """One IMA-ADPCM decode step: returns (sample, predictor')."""
    step = STEP_TABLE[index]
    diff = step >> 3
    if code & 4:
        diff += step
    if code & 2:
        diff += step >> 1
    if code & 1:
        diff += step >> 2
    if code & 8:
        predictor -= diff
    else:
        predictor += diff
    predictor = max(-32768, min(32767, predictor))  # IMA clamps the state
    return predictor, predictor


def adpcm_encode_block(samples: np.ndarray) -> bytes:
    """Encode exactly BLOCK_SAMPLES int16 samples to one block."""
    if samples.shape != (BLOCK_SAMPLES,):
        raise ValueError(f"expected {BLOCK_SAMPLES} samples, got {samples.shape}")
    predictor = int(samples[0])
    index = 0
    out = bytearray(struct.pack("<hBx", predictor, index))
    nibble: Optional[int] = None
    for s in samples:
        code, predictor, index = _encode_sample(int(s), predictor, index)
        if nibble is None:
            nibble = code
        else:
            out.append(nibble | (code << 4))
            nibble = None
    assert nibble is None  # BLOCK_SAMPLES is even
    return bytes(out)


def adpcm_decode_block(block: bytes) -> np.ndarray:
    """Decode one block back to BLOCK_SAMPLES int16 samples."""
    if len(block) != BLOCK_BYTES:
        raise ValueError(f"expected {BLOCK_BYTES} B block, got {len(block)}")
    predictor, index = struct.unpack_from("<hBx", block)
    index = max(0, min(88, index))
    out = np.empty(BLOCK_SAMPLES, dtype=np.int16)
    pos = 0
    for byte in block[4:]:
        for code in (byte & 0xF, byte >> 4):
            sample, predictor = _decode_sample(code, predictor, index)
            index = max(0, min(88, index + INDEX_TABLE[code]))
            out[pos] = sample
            pos += 1
    return out


def adpcm_encode(pcm: np.ndarray) -> bytes:
    """Encode PCM (padded with zeros to a whole number of blocks)."""
    n_blocks = -(-len(pcm) // BLOCK_SAMPLES)
    padded = np.zeros(n_blocks * BLOCK_SAMPLES, dtype=np.int16)
    padded[: len(pcm)] = pcm
    return b"".join(
        adpcm_encode_block(padded[i * BLOCK_SAMPLES : (i + 1) * BLOCK_SAMPLES])
        for i in range(n_blocks)
    )


def adpcm_decode(data: bytes) -> np.ndarray:
    if len(data) % BLOCK_BYTES:
        raise ValueError(f"stream length {len(data)} is not a whole number of blocks")
    blocks = [
        adpcm_decode_block(data[i : i + BLOCK_BYTES])
        for i in range(0, len(data), BLOCK_BYTES)
    ]
    return np.concatenate(blocks) if blocks else np.empty(0, dtype=np.int16)


# ---------------------------------------------------------------------------
# Eclipse task kernels (software tasks for the DSP-CPU)
# ---------------------------------------------------------------------------
class AdpcmDecoderKernel(Kernel):
    """Software audio decoder: ADPCM blocks in, PCM blocks out.

    One block per processing step; the cycle cost models a software
    inner loop (a few cycles per sample on the DSP)."""

    PORTS = (PortSpec("in", Direction.IN), PortSpec("out", Direction.OUT))

    def __init__(self, cycles_per_sample: int = 3):
        super().__init__()
        self.cycles_per_sample = cycles_per_sample

    def step(self, ctx: KernelContext):
        sp = yield ctx.get_space("in", BLOCK_BYTES)
        if not sp:
            return StepOutcome.FINISHED if sp.eos else StepOutcome.ABORTED
        out_bytes = BLOCK_SAMPLES * 2
        sp_out = yield ctx.get_space("out", out_bytes)
        if not sp_out:
            return StepOutcome.ABORTED
        block = yield ctx.read("in", 0, BLOCK_BYTES)
        pcm = adpcm_decode_block(block)
        yield ctx.compute(self.cycles_per_sample * BLOCK_SAMPLES)
        yield ctx.write("out", 0, pcm.tobytes())
        yield ctx.put_space("in", BLOCK_BYTES)
        yield ctx.put_space("out", out_bytes)
        return StepOutcome.COMPLETED


class PcmSinkKernel(Kernel):
    """Collects decoded PCM (and models the audio-out DMA)."""

    PORTS = (PortSpec("in", Direction.IN),)

    CHUNK = BLOCK_SAMPLES * 2

    def __init__(self, compute_cycles: int = 16):
        super().__init__()
        self.compute_cycles = compute_cycles
        self._data = bytearray()

    def pcm(self) -> np.ndarray:
        return np.frombuffer(bytes(self._data), dtype=np.int16)

    def step(self, ctx: KernelContext):
        sp = yield ctx.get_space("in", self.CHUNK)
        if not sp:
            if sp.eos:
                n = sp.available
                if n:
                    yield ctx.get_space("in", n)
                    data = yield ctx.read("in", 0, n)
                    yield ctx.put_space("in", n)
                    self._data.extend(data)
                return StepOutcome.FINISHED
            return StepOutcome.ABORTED
        data = yield ctx.read("in", 0, self.CHUNK)
        yield ctx.compute(self.compute_cycles)
        yield ctx.external_access(self.CHUNK, is_write=True, posted=True)
        yield ctx.put_space("in", self.CHUNK)
        self._data.extend(data)
        return StepOutcome.COMPLETED
