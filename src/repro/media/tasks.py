"""Eclipse task kernels for the MPEG-2-like codec.

Each kernel corresponds to a medium-grain function of the paper's first
instance (Figure 8): VLD, RLSQ (inverse and forward = quantize+RLE),
DCT (inverse and forward), MC/ME, plus the software tasks (VLE) for the
DSP-CPU and the DISP sink.  They speak only the task-level interface
(GetSpace/Read/Write/PutSpace via generator ops) and share all pixel
arithmetic with the functional reference codec
(:mod:`repro.media.codec`) so that pipeline output is bit-exact.

Design discipline (paper §4.2): a step never mutates persistent kernel
state before every GetSpace it needs has been granted and its outputs
written — a denied inquiry aborts the step and the redo recomputes the
same results from the same uncommitted inputs.

Cycle costs are charged via ComputeOp from a :class:`CostModel`; the
constants are chosen so the per-frame-type bottlenecks of the paper's
Figure 10 emerge (I → RLSQ, P → DCT, B → MC), and every cost is
data-dependent where the paper says it is (VLC bit counts, run-level
pair counts, coded-block counts, one vs two reference fetches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.kahn.graph import Direction, PortSpec
from repro.kahn.kernel import Kernel, KernelContext, StepOutcome
from repro.media.bitstream import BitReader, BitstreamError
from repro.media.codec import (
    CodecParams,
    MacroblockData,
    MbMode,
    SYNC_MARKER,
    encode_macroblock,
    extract_mb,
    insert_mb,
    mb_prediction,
    mode_decision,
    read_mb_syntax,
    reconstruct_macroblock,
)
from repro.media.codec import MAGIC
from repro.media.dct import fdct8x8, idct8x8
from repro.media.gop import FramePlan, FrameType
from repro.media.packets import (
    HEADER_SIZE,
    MbHeader,
    header_from_mb,
    mb_from_header,
    pack_blocks,
    pack_coef_payload,
    pack_pixels,
    unpack_blocks,
    unpack_coef_payload,
    unpack_pixels,
)
from repro.media.quant import dequantize, quantize
from repro.media.scan import inverse_zigzag, run_level_decode, run_level_encode, zigzag
from repro.media.video import Frame
from repro.media.vlc import encode_block_pairs
from repro.media.bitstream import BitWriter

__all__ = [
    "CostModel",
    "VldKernel",
    "RlsqInvKernel",
    "DctKernel",
    "IdctKernel",
    "McKernel",
    "DispKernel",
    "MeKernel",
    "FdctKernel",
    "QrleKernel",
    "IqKernel",
    "ReconKernel",
    "VleKernel",
]


@dataclass
class CostModel:
    """Hardware cycle costs per work unit (150 MHz-era estimates).

    Tuned so that, with typical content, per-MB costs order as the
    paper's Figure 10 requires: RLSQ slowest on I frames (pair-bound),
    DCT slowest on P frames (coded-block-bound), MC slowest on B frames
    (two off-chip reference fetches).
    """

    vld_per_mb: int = 20
    vld_per_pair: int = 1
    vld_per_8bits: int = 1
    rlsq_per_mb: int = 20
    rlsq_per_block: int = 12
    rlsq_per_pair: int = 9
    dct_per_mb: int = 20
    dct_per_block: int = 70
    mc_per_mb: int = 60
    mc_add_cycles: int = 64
    me_per_mb: int = 40
    me_per_candidate: int = 8
    qrle_per_mb: int = 20
    qrle_per_block: int = 24
    qrle_per_pair: int = 2
    vle_per_mb: int = 40
    vle_per_8bits: int = 8
    disp_per_mb: int = 10
    recon_per_mb: int = 40
    #: bytes of one macroblock's pixels in external memory
    mb_pixel_bytes: int = 384
    #: bytes fetched per prediction direction: the mv-offset reference
    #: window with burst/row alignment overhead is ~2x the bare 384 B
    mc_fetch_bytes: int = 768


# ---------------------------------------------------------------------------
# packet I/O helpers (generator sub-routines used inside kernel steps)
# ---------------------------------------------------------------------------
def read_packet(ctx: KernelContext, port: str) -> Generator:
    """Two-phase packet read (paper's data-dependent GetSpace pattern).

    Returns ``(status, header, payload)`` with status in
    {"ok", "abort", "eos"}.  Does NOT commit — the caller must
    ``put_space(port, HEADER_SIZE + header.payload_len)`` once its step
    is sure to complete.
    """
    sp = yield ctx.get_space(port, HEADER_SIZE)
    if not sp:
        return ("eos" if sp.eos else "abort"), None, None
    hdr_bytes = yield ctx.read(port, 0, HEADER_SIZE)
    hdr = MbHeader.unpack(hdr_bytes)
    if hdr.payload_len == 0:
        return "ok", hdr, b""
    sp = yield ctx.get_space(port, HEADER_SIZE + hdr.payload_len)
    if not sp:
        if sp.eos:
            raise BitstreamError(f"stream on {port!r} ended mid-packet")
        return "abort", None, None
    payload = yield ctx.read(port, HEADER_SIZE, hdr.payload_len)
    return "ok", hdr, payload


def reserve_all(ctx: KernelContext, requests: Sequence[Tuple[str, int]]) -> Generator:
    """GetSpace on every output before committing anything — the only
    safe order for multi-output steps (a partial commit followed by an
    abort would duplicate packets on redo)."""
    for port, size in requests:
        sp = yield ctx.get_space(port, size)
        if not sp:
            return False
    return True


def emit(ctx: KernelContext, port: str, data: bytes) -> Generator:
    """Write+commit one reserved packet."""
    yield ctx.write(port, 0, data)
    yield ctx.put_space(port, len(data))


# ---------------------------------------------------------------------------
# decode-side kernels
# ---------------------------------------------------------------------------
class VldKernel(Kernel):
    """Variable-length decoder: bitstream -> coefficient + mv packets.

    Holds the compressed stream as task state and charges its fetch
    through the off-chip port, exactly like the paper's VLD coprocessor
    ("the VLD coprocessor fetches the incoming compressed bit-streams
    from off-chip memory", §6).
    """

    PORTS = (
        PortSpec("coef_out", Direction.OUT),
        PortSpec("mv_out", Direction.OUT),
    )
    STATE_FIELDS = ("num_frames", "_frame_ptr", "_mb_ptr", "bits_consumed_per_mb")

    def __init__(self, bitstream: bytes, cost: Optional[CostModel] = None):
        super().__init__()
        self.cost = cost or CostModel()
        self._reader = BitReader(bitstream)
        self.params, self.num_frames = self._parse_sequence_header(self._reader)
        self._plans: List[FramePlan] = self.params.gop().coded_order(self.num_frames)
        self._frame_ptr = 0
        self._mb_ptr = 0
        self.bits_consumed_per_mb: List[int] = []

    @staticmethod
    def _parse_sequence_header(r: BitReader) -> Tuple[CodecParams, int]:
        magic = bytes(r.read_bits(8) for _ in range(4))
        if magic != MAGIC:
            raise BitstreamError(f"bad magic {magic!r}")
        mb_cols, mb_rows, num_frames = r.read_ue(), r.read_ue(), r.read_ue()
        gop_n, gop_m = r.read_ue(), r.read_ue()
        q_i, q_p, q_b = r.read_ue(), r.read_ue(), r.read_ue()
        half_pel = bool(r.read_ue())
        params = CodecParams(
            width=mb_cols * 16,
            height=mb_rows * 16,
            gop_n=gop_n,
            gop_m=gop_m,
            q_i=q_i,
            q_p=q_p,
            q_b=q_b,
            half_pel=half_pel,
        )
        return params, num_frames

    def step(self, ctx: KernelContext):
        if self._frame_ptr >= len(self._plans):
            return StepOutcome.FINISHED
        plan = self._plans[self._frame_ptr]
        # parse into locals only — state advances after commit (§4.2)
        pos_before = self._reader.bit_position
        r = self._reader
        if self._mb_ptr == 0:
            r.align()
            marker = r.read_bits(8)
            if marker != SYNC_MARKER:
                raise BitstreamError(f"lost sync: {marker:#x}")
            disp = r.read_ue()
            ft = r.read_ue()
            if disp != plan.display_index or ft != "IPB".index(plan.frame_type.value):
                raise BitstreamError("picture header does not match GOP plan")
        mb = read_mb_syntax(r, self._mb_ptr, plan.frame_type, self.params.half_pel)
        bits = r.bit_position - pos_before
        pos_after = r.bit_position

        qscale = self.params.qscale(plan.frame_type)
        payload = pack_coef_payload(mb.block_pairs)
        coef_hdr = header_from_mb(mb, plan.frame_type, qscale, len(payload))
        mv_hdr = header_from_mb(mb, plan.frame_type, qscale, 0)
        n_pairs = sum(len(p) for p in mb.block_pairs)
        yield ctx.compute(
            self.cost.vld_per_mb
            + self.cost.vld_per_pair * n_pairs
            + self.cost.vld_per_8bits * (bits // 8)
        )
        yield ctx.external_access((bits + 7) // 8, is_write=False)

        # restore-then-commit: the reader must stay at pos_before until
        # output space is granted, or an aborted step would skip data
        self._reader._pos = pos_before
        ok = yield from reserve_all(
            ctx,
            [
                ("coef_out", HEADER_SIZE + len(payload)),
                ("mv_out", HEADER_SIZE),
            ],
        )
        if not ok:
            return StepOutcome.ABORTED
        yield from emit(ctx, "coef_out", coef_hdr.pack() + payload)
        yield from emit(ctx, "mv_out", mv_hdr.pack())
        # committed: advance persistent state
        self._reader._pos = pos_after
        self.bits_consumed_per_mb.append(bits)
        self._mb_ptr += 1
        if self._mb_ptr == self.params.mbs_per_frame:
            self._mb_ptr = 0
            self._frame_ptr += 1
        return StepOutcome.COMPLETED


class RlsqInvKernel(Kernel):
    """RLSQ, decode direction: run-level decode + inverse scan +
    inverse quantization -> dense int16 coefficient blocks."""

    PORTS = (PortSpec("in", Direction.IN), PortSpec("out", Direction.OUT))

    #: six dense 8x8 int16 blocks (MPEG-2 saturates dequantized
    #: coefficients to 12 bits, so 16-bit transport is exact)
    OUT_PAYLOAD = 6 * 64 * 2

    def __init__(self, cost: Optional[CostModel] = None):
        super().__init__()
        self.cost = cost or CostModel()

    def step(self, ctx: KernelContext):
        status, hdr, payload = yield from read_packet(ctx, "in")
        if status == "eos":
            return StepOutcome.FINISHED
        if status == "abort":
            return StepOutcome.ABORTED
        pairs = unpack_coef_payload(payload, hdr.cbp)
        intra = hdr.mode is MbMode.INTRA
        blocks: List[np.ndarray] = []
        pair_iter = iter(pairs)
        n_pairs = 0
        for i in range(6):
            if hdr.cbp & (1 << i):
                p = next(pair_iter)
                n_pairs += len(p)
                levels = inverse_zigzag(run_level_decode(p))
                blocks.append(dequantize(levels, intra, hdr.qscale))
            else:
                blocks.append(np.zeros((8, 8), dtype=np.int16))
        n_coded = bin(hdr.cbp).count("1")
        yield ctx.compute(
            self.cost.rlsq_per_mb
            + self.cost.rlsq_per_block * n_coded
            + self.cost.rlsq_per_pair * n_pairs
        )
        out = hdr.with_payload(self.OUT_PAYLOAD).pack() + pack_blocks(blocks, np.int16)
        ok = yield from reserve_all(ctx, [("out", len(out))])
        if not ok:
            return StepOutcome.ABORTED
        yield from emit(ctx, "out", out)
        yield ctx.put_space("in", HEADER_SIZE + hdr.payload_len)
        return StepOutcome.COMPLETED


class DctKernel(Kernel):
    """The DCT coprocessor: weakly programmable, both directions.

    Paper §3.2: the GetTask ``task_info`` word carries "one bit to
    select whether a forward or inverse DCT is to be performed" — so
    one kernel serves the decoder's IDCT, the encoder's forward DCT and
    the encoder-loop IDCT, selected per task at configuration time.

    * inverse (``task_info & 1 == 0``): int16 coefficients -> int16
      spatial residual; only coded blocks (cbp) are transformed;
    * forward (``task_info & 1 == 1``): int16 residual -> float64
      coefficients, all six blocks.
    """

    PORTS = (PortSpec("in", Direction.IN), PortSpec("out", Direction.OUT))

    INV_PAYLOAD = 6 * 64 * 2
    FWD_PAYLOAD = 6 * 64 * 8

    #: task_info bit selecting the forward transform
    FORWARD = 1

    def __init__(self, cost: Optional[CostModel] = None):
        super().__init__()
        self.cost = cost or CostModel()

    def step(self, ctx: KernelContext):
        status, hdr, payload = yield from read_packet(ctx, "in")
        if status == "eos":
            return StepOutcome.FINISHED
        if status == "abort":
            return StepOutcome.ABORTED
        if ctx.task_info & self.FORWARD:
            resid = unpack_blocks(payload, np.int16)
            blocks = [fdct8x8(b.astype(np.float64)) for b in resid]
            n_transformed = 6
            out = hdr.with_payload(self.FWD_PAYLOAD).pack() + pack_blocks(
                blocks, np.float64
            )
        else:
            coef = unpack_blocks(payload, np.int16)
            blocks = []
            n_transformed = 0
            for i in range(6):
                if hdr.cbp & (1 << i):
                    n_transformed += 1
                    blocks.append(
                        np.rint(idct8x8(coef[i].astype(np.float64))).astype(np.int16)
                    )
                else:
                    blocks.append(np.zeros((8, 8), dtype=np.int16))
            out = hdr.with_payload(self.INV_PAYLOAD).pack() + pack_blocks(
                blocks, np.int16
            )
        yield ctx.compute(self.cost.dct_per_mb + self.cost.dct_per_block * n_transformed)
        ok = yield from reserve_all(ctx, [("out", len(out))])
        if not ok:
            return StepOutcome.ABORTED
        yield from emit(ctx, "out", out)
        yield ctx.put_space("in", HEADER_SIZE + hdr.payload_len)
        return StepOutcome.COMPLETED


class IdctKernel(DctKernel):
    """Inverse-configured DCT kernel (back-compat alias; the task_info
    routing happens in the context, so this class only documents
    intent — pair it with ``task_info=0`` in the TaskNode)."""

    OUT_PAYLOAD = DctKernel.INV_PAYLOAD


def _new_frame(params: CodecParams) -> Frame:
    return Frame(
        np.zeros((params.height, params.width), dtype=np.uint8),
        np.zeros((params.height // 2, params.width // 2), dtype=np.uint8),
        np.zeros((params.height // 2, params.width // 2), dtype=np.uint8),
    )


class McKernel(Kernel):
    """Motion compensation: residual + motion vectors -> reconstructed
    macroblocks; keeps reference frames in (modelled) off-chip memory
    and charges one fetch per prediction direction — the source of the
    B-frame bottleneck in Figure 10."""

    PORTS = (
        PortSpec("resid_in", Direction.IN),
        PortSpec("mv_in", Direction.IN),
        PortSpec("out", Direction.OUT),
    )

    OUT_PAYLOAD = 384
    STATE_FIELDS = ("_frame_ptr", "_mb_ptr", "_building", "_refs")

    def __init__(self, params: CodecParams, num_frames: int, cost: Optional[CostModel] = None):
        super().__init__()
        self.cost = cost or CostModel()
        self.params = params
        self._plans = params.gop().coded_order(num_frames)
        self._frame_ptr = 0
        self._mb_ptr = 0
        self._building: Frame = _new_frame(params)
        self._refs: Dict[int, Frame] = {}

    def step(self, ctx: KernelContext):
        if self._frame_ptr >= len(self._plans):
            return StepOutcome.FINISHED
        plan = self._plans[self._frame_ptr]
        status, mv_hdr, _ = yield from read_packet(ctx, "mv_in")
        if status == "eos":
            return StepOutcome.FINISHED
        if status == "abort":
            return StepOutcome.ABORTED
        status, r_hdr, r_payload = yield from read_packet(ctx, "resid_in")
        if status == "eos":
            raise BitstreamError("residual stream ended before mv stream")
        if status == "abort":
            return StepOutcome.ABORTED
        if mv_hdr.mb_index != r_hdr.mb_index:
            raise BitstreamError(
                f"mv/residual streams out of step: {mv_hdr.mb_index} vs {r_hdr.mb_index}"
            )
        mb_y, mb_x = divmod(mv_hdr.mb_index, self.params.mb_cols)
        fwd = self._refs.get(plan.forward_ref) if plan.forward_ref is not None else None
        bwd = self._refs.get(plan.backward_ref) if plan.backward_ref is not None else None
        pred = mb_prediction(mv_hdr.mode, fwd, bwd, mb_y, mb_x, mv_hdr.fwd_vec, mv_hdr.bwd_vec)
        resid = unpack_blocks(r_payload, np.int16)
        recon = [
            np.clip(p.astype(np.int16) + r, 0, 255).astype(np.uint8)
            for p, r in zip(pred, resid)
        ]
        n_fetches = {MbMode.INTRA: 0, MbMode.FWD: 1, MbMode.BWD: 1, MbMode.BI: 2}[mv_hdr.mode]
        yield ctx.compute(self.cost.mc_per_mb + self.cost.mc_add_cycles)
        for _ in range(n_fetches):
            yield ctx.external_access(self.cost.mc_fetch_bytes, is_write=False)
        out = mv_hdr.with_payload(self.OUT_PAYLOAD).pack() + pack_pixels(recon)
        ok = yield from reserve_all(ctx, [("out", len(out))])
        if not ok:
            return StepOutcome.ABORTED
        yield from emit(ctx, "out", out)
        # reference writeback for anchor frames goes through the write
        # buffer — it occupies the port but does not stall MC
        if plan.frame_type is not FrameType.B:
            yield ctx.external_access(self.cost.mb_pixel_bytes, is_write=True, posted=True)
        yield ctx.put_space("mv_in", HEADER_SIZE)
        yield ctx.put_space("resid_in", HEADER_SIZE + r_hdr.payload_len)
        # ---- commit state ----
        insert_mb(self._building, mb_y, mb_x, recon)
        self._mb_ptr += 1
        if self._mb_ptr == self.params.mbs_per_frame:
            if plan.frame_type is not FrameType.B:
                self._refs[plan.display_index] = self._building
                # keep at most the two live anchors
                live = {plan.display_index}
                nxt = self._plans[self._frame_ptr + 1 :]
                for p in nxt:
                    if p.forward_ref is not None:
                        live.add(p.forward_ref)
                    if p.backward_ref is not None:
                        live.add(p.backward_ref)
                self._refs = {k: v for k, v in self._refs.items() if k in live}
            self._building = _new_frame(self.params)
            self._mb_ptr = 0
            self._frame_ptr += 1
        return StepOutcome.COMPLETED


class DispKernel(Kernel):
    """Display sink: assembles decoded frames and reorders them to
    display order; writes pixels to (modelled) external memory."""

    PORTS = (PortSpec("in", Direction.IN),)
    STATE_FIELDS = ("_frame_ptr", "_mb_ptr", "_building", "frames")

    def __init__(self, params: CodecParams, num_frames: int, cost: Optional[CostModel] = None):
        super().__init__()
        self.cost = cost or CostModel()
        self.params = params
        self._plans = params.gop().coded_order(num_frames)
        self._frame_ptr = 0
        self._mb_ptr = 0
        self._building = _new_frame(params)
        #: decoded frames by display index (complete after the run)
        self.frames: Dict[int, Frame] = {}

    def display_frames(self) -> List[Frame]:
        return [self.frames[i] for i in sorted(self.frames)]

    def step(self, ctx: KernelContext):
        if self._frame_ptr >= len(self._plans):
            return StepOutcome.FINISHED
        status, hdr, payload = yield from read_packet(ctx, "in")
        if status == "eos":
            return StepOutcome.FINISHED
        if status == "abort":
            return StepOutcome.ABORTED
        yield ctx.compute(self.cost.disp_per_mb)
        yield ctx.external_access(self.cost.mb_pixel_bytes, is_write=True, posted=True)
        yield ctx.put_space("in", HEADER_SIZE + hdr.payload_len)
        # ---- commit state ----
        mb_y, mb_x = divmod(hdr.mb_index, self.params.mb_cols)
        insert_mb(self._building, mb_y, mb_x, unpack_pixels(payload))
        self._mb_ptr += 1
        if self._mb_ptr == self.params.mbs_per_frame:
            plan = self._plans[self._frame_ptr]
            self.frames[plan.display_index] = self._building
            self._building = _new_frame(self.params)
            self._mb_ptr = 0
            self._frame_ptr += 1
        return StepOutcome.COMPLETED


# ---------------------------------------------------------------------------
# encode-side kernels
# ---------------------------------------------------------------------------
class MeKernel(Kernel):
    """Motion estimation + mode decision: the encode-side source.

    Holds the raw video in (modelled) off-chip memory and the
    reconstructed reference frames fed back from RECON; emits per-MB
    residual packets (to FDCT) and, for anchor frames, the prediction
    (to RECON).  Finishing is by count — every encode kernel knows the
    exact packet totals from the GOP plan, which keeps the feedback
    cycle deadlock-free.
    """

    PORTS = (
        PortSpec("resid_out", Direction.OUT),
        PortSpec("pred_out", Direction.OUT),
        PortSpec("recon_in", Direction.IN),
    )

    RESID_PAYLOAD = 6 * 64 * 2
    PRED_PAYLOAD = 384
    STATE_FIELDS = (
        "_frame_ptr", "_mb_ptr", "_refs", "_recon_anchor_ptr",
        "_recon_mb_ptr", "_recon_building", "_recon_received",
    )

    def __init__(
        self,
        frames: Sequence[Frame],
        params: CodecParams,
        cost: Optional[CostModel] = None,
    ):
        super().__init__()
        self.cost = cost or CostModel()
        self.params = params
        self.frames = list(frames)
        self._plans = params.gop().coded_order(len(frames))
        self._anchor_plans = [p for p in self._plans if p.frame_type is not FrameType.B]
        self._frame_ptr = 0
        self._mb_ptr = 0
        # reconstructed reference state, fed by recon_in
        self._refs: Dict[int, Frame] = {}
        self._recon_anchor_ptr = 0
        self._recon_mb_ptr = 0
        self._recon_building = _new_frame(params)
        self._recon_total = len(self._anchor_plans) * params.mbs_per_frame
        self._recon_received = 0

    # -- feedback consumption ------------------------------------------------
    def _consume_recon(self, ctx: KernelContext):
        status, hdr, payload = yield from read_packet(ctx, "recon_in")
        if status != "ok":
            return status
        yield ctx.put_space("recon_in", HEADER_SIZE + hdr.payload_len)
        mb_y, mb_x = divmod(hdr.mb_index, self.params.mb_cols)
        insert_mb(self._recon_building, mb_y, mb_x, unpack_pixels(payload))
        self._recon_mb_ptr += 1
        self._recon_received += 1
        if self._recon_mb_ptr == self.params.mbs_per_frame:
            plan = self._anchor_plans[self._recon_anchor_ptr]
            self._refs[plan.display_index] = self._recon_building
            self._recon_building = _new_frame(self.params)
            self._recon_mb_ptr = 0
            self._recon_anchor_ptr += 1
        return "ok"

    def step(self, ctx: KernelContext):
        if self._frame_ptr >= len(self._plans):
            # drain the remaining feedback, then finish
            if self._recon_received >= self._recon_total:
                return StepOutcome.FINISHED
            status = yield from self._consume_recon(ctx)
            return StepOutcome.COMPLETED if status == "ok" else StepOutcome.ABORTED

        plan = self._plans[self._frame_ptr]
        needed = [r for r in (plan.forward_ref, plan.backward_ref) if r is not None]
        if any(r not in self._refs for r in needed):
            status = yield from self._consume_recon(ctx)
            return StepOutcome.COMPLETED if status == "ok" else StepOutcome.ABORTED

        current = self.frames[plan.display_index]
        mb_y, mb_x = divmod(self._mb_ptr, self.params.mb_cols)
        fwd = self._refs.get(plan.forward_ref) if plan.forward_ref is not None else None
        bwd = self._refs.get(plan.backward_ref) if plan.backward_ref is not None else None
        mode, fv, bv = mode_decision(
            current,
            plan.frame_type,
            fwd,
            bwd,
            mb_y,
            mb_x,
            self.params.search_range,
            self.params.half_pel,
        )
        pred = mb_prediction(mode, fwd, bwd, mb_y, mb_x, fv, bv)
        blocks = extract_mb(current, mb_y, mb_x)
        resid = [
            (b.astype(np.int16) - p.astype(np.int16)) for b, p in zip(blocks, pred)
        ]
        qscale = self.params.qscale(plan.frame_type)
        mb = MacroblockData(self._mb_ptr, mode, fv, bv, 0x3F, [])
        hdr = header_from_mb(mb, plan.frame_type, qscale, self.RESID_PAYLOAD)
        resid_pkt = hdr.pack() + pack_blocks(resid, np.int16)

        # ME cost: candidate SADs for inter search + MB fetch traffic
        # (half-pel refinement adds 8 interpolated candidates)
        window = (2 * self.params.search_range + 1) ** 2 + (
            8 if self.params.half_pel else 0
        )
        n_searches = {FrameType.I: 0, FrameType.P: 1, FrameType.B: 2}[plan.frame_type]
        yield ctx.compute(
            self.cost.me_per_mb + self.cost.me_per_candidate * window * n_searches
        )
        yield ctx.external_access(self.cost.mb_pixel_bytes * (1 + n_searches), is_write=False)

        is_anchor = plan.frame_type is not FrameType.B
        reqs = [("resid_out", len(resid_pkt))]
        pred_pkt = b""
        if is_anchor:
            pred_u8 = [p.astype(np.uint8) for p in pred]
            pred_pkt = hdr.with_payload(self.PRED_PAYLOAD).pack() + pack_pixels(pred_u8)
            reqs.append(("pred_out", len(pred_pkt)))
        ok = yield from reserve_all(ctx, reqs)
        if not ok:
            return StepOutcome.ABORTED
        yield from emit(ctx, "resid_out", resid_pkt)
        if is_anchor:
            yield from emit(ctx, "pred_out", pred_pkt)
        # ---- commit state ----
        self._mb_ptr += 1
        if self._mb_ptr == self.params.mbs_per_frame:
            self._mb_ptr = 0
            self._frame_ptr += 1
        return StepOutcome.COMPLETED


class FdctKernel(DctKernel):
    """Forward-configured DCT kernel (back-compat alias — pair it with
    ``task_info=DctKernel.FORWARD`` in the TaskNode)."""

    OUT_PAYLOAD = DctKernel.FWD_PAYLOAD


class QrleKernel(Kernel):
    """RLSQ coprocessor, encode direction: quantize + zigzag +
    run-level encode.  Emits the symbol packet (to VLE) and the dense
    quantized levels (to IQ for the reconstruction loop)."""

    PORTS = (
        PortSpec("in", Direction.IN),
        PortSpec("sym_out", Direction.OUT),
        PortSpec("lev_out", Direction.OUT),
    )

    LEV_PAYLOAD = 6 * 64 * 2

    def __init__(self, cost: Optional[CostModel] = None):
        super().__init__()
        self.cost = cost or CostModel()

    def step(self, ctx: KernelContext):
        status, hdr, payload = yield from read_packet(ctx, "in")
        if status == "eos":
            return StepOutcome.FINISHED
        if status == "abort":
            return StepOutcome.ABORTED
        coef = unpack_blocks(payload, np.float64)
        intra = hdr.mode is MbMode.INTRA
        cbp = 0
        all_pairs: List[List[Tuple[int, int]]] = []
        level_blocks: List[np.ndarray] = []
        n_pairs = 0
        for i in range(6):
            levels = quantize(coef[i], intra, hdr.qscale)
            pairs = run_level_encode(zigzag(levels))
            if pairs:
                cbp |= 1 << i
                all_pairs.append(pairs)
                n_pairs += len(pairs)
                level_blocks.append(levels)
            else:
                level_blocks.append(np.zeros((8, 8), dtype=np.int16))
        yield ctx.compute(
            self.cost.qrle_per_mb + self.cost.qrle_per_block * 6 + self.cost.qrle_per_pair * n_pairs
        )
        sym_payload = pack_coef_payload(all_pairs)
        sym_pkt = hdr.with_payload(len(sym_payload), cbp=cbp).pack() + sym_payload
        lev_pkt = hdr.with_payload(self.LEV_PAYLOAD, cbp=cbp).pack() + pack_blocks(
            level_blocks, np.int16
        )
        ok = yield from reserve_all(
            ctx, [("sym_out", len(sym_pkt)), ("lev_out", len(lev_pkt))]
        )
        if not ok:
            return StepOutcome.ABORTED
        yield from emit(ctx, "sym_out", sym_pkt)
        yield from emit(ctx, "lev_out", lev_pkt)
        yield ctx.put_space("in", HEADER_SIZE + hdr.payload_len)
        return StepOutcome.COMPLETED


class IqKernel(Kernel):
    """RLSQ coprocessor, inverse-quantization task of the encoder's
    reconstruction loop: dense levels -> dense int16 coefficients."""

    PORTS = (PortSpec("in", Direction.IN), PortSpec("out", Direction.OUT))

    OUT_PAYLOAD = 6 * 64 * 2

    def __init__(self, cost: Optional[CostModel] = None):
        super().__init__()
        self.cost = cost or CostModel()

    def step(self, ctx: KernelContext):
        status, hdr, payload = yield from read_packet(ctx, "in")
        if status == "eos":
            return StepOutcome.FINISHED
        if status == "abort":
            return StepOutcome.ABORTED
        levels = unpack_blocks(payload, np.int16)
        intra = hdr.mode is MbMode.INTRA
        blocks = [
            dequantize(levels[i], intra, hdr.qscale)
            if hdr.cbp & (1 << i)
            else np.zeros((8, 8), dtype=np.int16)
            for i in range(6)
        ]
        n_coded = bin(hdr.cbp).count("1")
        yield ctx.compute(self.cost.rlsq_per_mb + self.cost.rlsq_per_block * n_coded)
        out = hdr.with_payload(self.OUT_PAYLOAD).pack() + pack_blocks(blocks, np.int16)
        ok = yield from reserve_all(ctx, [("out", len(out))])
        if not ok:
            return StepOutcome.ABORTED
        yield from emit(ctx, "out", out)
        yield ctx.put_space("in", HEADER_SIZE + hdr.payload_len)
        return StepOutcome.COMPLETED


class ReconKernel(Kernel):
    """Reconstruction: decoded residual + the encoder's prediction ->
    reference macroblocks fed back to ME (anchor frames only).

    Demonstrates data-dependent consumption: the prediction input is
    read only for I/P macroblocks (paper §4.2's conditional input)."""

    PORTS = (
        PortSpec("resid_in", Direction.IN),
        PortSpec("pred_in", Direction.IN),
        PortSpec("recon_out", Direction.OUT),
    )

    OUT_PAYLOAD = 384

    def __init__(self, params: CodecParams, num_frames: int, cost: Optional[CostModel] = None):
        super().__init__()
        self.cost = cost or CostModel()
        self.params = params
        plans = params.gop().coded_order(num_frames)
        self._total_mbs = len(plans) * params.mbs_per_frame
        self._seen = 0

    def step(self, ctx: KernelContext):
        if self._seen >= self._total_mbs:
            return StepOutcome.FINISHED
        status, r_hdr, r_payload = yield from read_packet(ctx, "resid_in")
        if status == "eos":
            return StepOutcome.FINISHED
        if status == "abort":
            return StepOutcome.ABORTED
        if r_hdr.ftype is FrameType.B:
            # B frames are never references: consume and drop
            yield ctx.compute(self.cost.disp_per_mb)
            yield ctx.put_space("resid_in", HEADER_SIZE + r_hdr.payload_len)
            self._seen += 1
            return StepOutcome.COMPLETED
        # conditional second input (the paper's §4.2 pattern)
        status, p_hdr, p_payload = yield from read_packet(ctx, "pred_in")
        if status == "eos":
            raise BitstreamError("prediction stream ended early")
        if status == "abort":
            return StepOutcome.ABORTED
        if p_hdr.mb_index != r_hdr.mb_index:
            raise BitstreamError(
                f"pred/resid out of step: {p_hdr.mb_index} vs {r_hdr.mb_index}"
            )
        resid = unpack_blocks(r_payload, np.int16)
        pred = unpack_pixels(p_payload)
        recon = [
            np.clip(p.astype(np.int16) + r, 0, 255).astype(np.uint8)
            for p, r in zip(pred, resid)
        ]
        yield ctx.compute(self.cost.recon_per_mb)
        out = r_hdr.with_payload(self.OUT_PAYLOAD).pack() + pack_pixels(recon)
        ok = yield from reserve_all(ctx, [("recon_out", len(out))])
        if not ok:
            return StepOutcome.ABORTED
        yield from emit(ctx, "recon_out", out)
        yield ctx.put_space("resid_in", HEADER_SIZE + r_hdr.payload_len)
        yield ctx.put_space("pred_in", HEADER_SIZE + p_hdr.payload_len)
        self._seen += 1
        return StepOutcome.COMPLETED


class VleKernel(Kernel):
    """Variable-length encoder (software on the DSP-CPU, paper §6):
    symbol packets -> the EMV1 bitstream, kept as task state."""

    PORTS = (PortSpec("in", Direction.IN),)

    def __init__(self, params: CodecParams, num_frames: int, cost: Optional[CostModel] = None):
        super().__init__()
        self.cost = cost or CostModel()
        self.params = params
        self.num_frames = num_frames
        self._plans = params.gop().coded_order(num_frames)
        self._frame_ptr = 0
        self._mb_ptr = 0
        self._writer = BitWriter()
        self._write_sequence_header()
        self._done = False

    def _write_sequence_header(self) -> None:
        w = self._writer
        for b in MAGIC:
            w.write_bits(b, 8)
        p = self.params
        for v in (
            p.width // 16,
            p.height // 16,
            self.num_frames,
            p.gop_n,
            p.gop_m,
            p.q_i,
            p.q_p,
            p.q_b,
            1 if p.half_pel else 0,
        ):
            w.write_ue(v)

    def bitstream(self) -> bytes:
        if not self._done:
            raise RuntimeError("bitstream incomplete: encoder still running")
        return self._writer.getvalue()

    def step(self, ctx: KernelContext):
        if self._done:
            return StepOutcome.FINISHED
        status, hdr, payload = yield from read_packet(ctx, "in")
        if status == "eos":
            raise BitstreamError("symbol stream ended before all frames were coded")
        if status == "abort":
            return StepOutcome.ABORTED
        yield ctx.put_space("in", HEADER_SIZE + hdr.payload_len)
        # ---- commit state (input committed; a sink has no output race)
        from repro.media.codec import write_mb_syntax

        w = self._writer
        bits_before = w.bits_written
        plan = self._plans[self._frame_ptr]
        if self._mb_ptr == 0:
            w.align()
            w.write_bits(SYNC_MARKER, 8)
            w.write_ue(plan.display_index)
            w.write_ue("IPB".index(plan.frame_type.value))
        pairs = unpack_coef_payload(payload, hdr.cbp)
        mb = mb_from_header(hdr, pairs)
        write_mb_syntax(w, mb, plan.frame_type)
        bits = w.bits_written - bits_before
        yield ctx.compute(self.cost.vle_per_mb + self.cost.vle_per_8bits * (bits // 8))
        yield ctx.external_access((bits + 7) // 8, is_write=True)
        self._mb_ptr += 1
        if self._mb_ptr == self.params.mbs_per_frame:
            self._mb_ptr = 0
            self._frame_ptr += 1
            if self._frame_ptr == len(self._plans):
                self._writer.align()
                self._done = True
        return StepOutcome.COMPLETED
