"""Transport multiplexing: the §6 "de-multiplexing in software" path.

A minimal MPEG-TS-like container: fixed 188-byte packets, each with a
4-byte header (sync byte 0x47, PID, continuity counter, payload
length), interleaving elementary streams — here the EMV1 video
bitstream and the ADPCM audio stream.  The demultiplexer runs as a
*software* task on the media processor, exactly as the paper maps it.

Functional API: :func:`ts_mux` / :func:`ts_demux`.
Kernels: :class:`DemuxKernel` (source holding the TS, fetched from
off-chip) and :class:`VldStreamKernel` — a VLD variant that receives
its elementary stream over an on-chip stream from the demux instead of
holding it as state, buffering bits internally like a hardware VLD's
input FIFO.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.kahn.graph import Direction, PortSpec
from repro.kahn.kernel import Kernel, KernelContext, StepOutcome
from repro.media.bitstream import BitReader, BitstreamError
from repro.media.codec import CodecParams, SYNC_MARKER, read_mb_syntax
from repro.media.gop import FramePlan
from repro.media.packets import HEADER_SIZE, header_from_mb, pack_coef_payload
from repro.media.tasks import CostModel, VldKernel, emit, reserve_all

__all__ = [
    "TS_PACKET",
    "TS_HEADER",
    "VIDEO_PID",
    "AUDIO_PID",
    "ts_mux",
    "ts_demux",
    "DemuxKernel",
    "VldStreamKernel",
]

TS_PACKET = 188
TS_HEADER = 4
_SYNC = 0x47
VIDEO_PID = 0x20
AUDIO_PID = 0x21
_PAYLOAD_MAX = TS_PACKET - TS_HEADER


def ts_mux(streams: Dict[int, bytes], interleave: int = 1) -> bytes:
    """Interleave elementary streams into TS packets.

    ``interleave`` packets are taken from each PID in turn (round-robin
    by PID order) until all streams are exhausted.  Short payloads are
    zero-padded (the header's length field says how much is real).
    """
    if not streams:
        raise ValueError("need at least one stream")
    for pid in streams:
        if not 0 <= pid <= 0x1FFF:
            raise ValueError(f"PID {pid} out of range")
    positions = {pid: 0 for pid in streams}
    continuity = {pid: 0 for pid in streams}
    out = bytearray()
    while any(positions[p] < len(streams[p]) for p in streams):
        for pid in sorted(streams):
            for _ in range(interleave):
                data = streams[pid]
                pos = positions[pid]
                if pos >= len(data):
                    continue
                chunk = data[pos : pos + _PAYLOAD_MAX]
                positions[pid] = pos + len(chunk)
                out.extend(struct.pack("<BHB", _SYNC, pid, len(chunk)))
                out.extend(chunk)
                out.extend(b"\x00" * (_PAYLOAD_MAX - len(chunk)))
                continuity[pid] += 1
    return bytes(out)


def ts_demux(ts: bytes) -> Dict[int, bytes]:
    """Split a TS back into its elementary streams."""
    if len(ts) % TS_PACKET:
        raise ValueError(f"TS length {len(ts)} is not a whole number of packets")
    out: Dict[int, bytearray] = {}
    for off in range(0, len(ts), TS_PACKET):
        sync, pid, length = struct.unpack_from("<BHB", ts, off)
        if sync != _SYNC:
            raise ValueError(f"lost TS sync at offset {off}: {sync:#x}")
        if length > _PAYLOAD_MAX:
            raise ValueError(f"bad payload length {length} at offset {off}")
        out.setdefault(pid, bytearray()).extend(
            ts[off + TS_HEADER : off + TS_HEADER + length]
        )
    return {pid: bytes(data) for pid, data in out.items()}


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------
class DemuxKernel(Kernel):
    """Software demultiplexer (a DSP-CPU task, §6).

    Holds the transport stream as task state (fetched from off-chip)
    and routes each packet's payload to the matching output port.
    Output framing: raw elementary-stream bytes (the consumers do their
    own packet/bit parsing)."""

    PORTS = (
        PortSpec("video_out", Direction.OUT),
        PortSpec("audio_out", Direction.OUT),
    )

    def __init__(self, ts: bytes, cycles_per_packet: int = 60):
        super().__init__()
        if len(ts) % TS_PACKET:
            raise ValueError("TS length must be a whole number of packets")
        self.ts = ts
        self.cycles_per_packet = cycles_per_packet
        self._offset = 0

    def step(self, ctx: KernelContext):
        if self._offset >= len(self.ts):
            return StepOutcome.FINISHED
        off = self._offset
        sync, pid, length = struct.unpack_from("<BHB", self.ts, off)
        if sync != _SYNC:
            raise BitstreamError(f"lost TS sync at offset {off}")
        payload = self.ts[off + TS_HEADER : off + TS_HEADER + length]
        port = {VIDEO_PID: "video_out", AUDIO_PID: "audio_out"}.get(pid)
        yield ctx.compute(self.cycles_per_packet)
        yield ctx.external_access(TS_PACKET, is_write=False)
        if port is not None and payload:
            sp = yield ctx.get_space(port, len(payload))
            if not sp:
                return StepOutcome.ABORTED
            yield ctx.write(port, 0, payload)
            yield ctx.put_space(port, len(payload))
        self._offset = off + TS_PACKET
        return StepOutcome.COMPLETED


class LossyDemuxKernel(DemuxKernel):
    """Demultiplexer for a network-recovered transport stream.

    Behaves exactly like :class:`DemuxKernel` — the ingest already
    reconstructed erased slots as header + zero payload, so parsing
    never fails — but counts the erased slots it routes and reports the
    ingest statistics through ``degradation_stats()`` so the run result
    carries the full network story (see :mod:`repro.net`)."""

    def __init__(
        self,
        ts: bytes,
        lost_slots: Tuple[int, ...] = (),
        net_stats: Optional[Dict[str, int]] = None,
        report_always: bool = False,
        cycles_per_packet: int = 60,
    ):
        super().__init__(ts, cycles_per_packet)
        self._lost = frozenset(lost_slots)
        self._net_stats = dict(net_stats or {})
        self._report_always = report_always
        self.packets_erased = 0

    def step(self, ctx: KernelContext):
        slot = self._offset // TS_PACKET
        outcome = yield from super().step(ctx)
        if outcome is StepOutcome.COMPLETED and slot in self._lost:
            self.packets_erased += 1
        return outcome

    def degradation_stats(self) -> Optional[Dict]:
        if not self._report_always and not self._lost:
            return None
        out: Dict = {"kind": "transport", "packets_erased": self.packets_erased}
        if self._net_stats:
            out["net"] = {k: self._net_stats[k] for k in sorted(self._net_stats)}
        return out


class VldStreamKernel(Kernel):
    """VLD receiving its elementary stream over an on-chip stream.

    Unlike :class:`repro.media.tasks.VldKernel` (which owns the whole
    bitstream, Figure 8 style), this variant consumes ES bytes from the
    demultiplexer and buffers them in an internal bit FIFO — the
    fully-streaming decode front end.  Emits the same coefficient and
    motion-vector packets, so the downstream pipeline is unchanged.

    The sequence header must be parsed before the GOP plan is known, so
    construction takes the expected ``params``/``num_frames`` (the CPU
    knows them — it configured the whole application); the header is
    still parsed and *verified* from the stream.
    """

    PORTS = (
        PortSpec("es_in", Direction.IN),
        PortSpec("coef_out", Direction.OUT),
        PortSpec("mv_out", Direction.OUT),
    )

    #: ES bytes pulled per refill
    REFILL = 64

    def __init__(self, params: CodecParams, num_frames: int, cost: Optional[CostModel] = None):
        super().__init__()
        self.cost = cost or CostModel()
        self.params = params
        self.num_frames = num_frames
        self._plans: List[FramePlan] = params.gop().coded_order(num_frames)
        self._frame_ptr = 0
        self._mb_ptr = 0
        self._fifo = bytearray()
        self._bitpos = 0  # bit offset into _fifo
        self._header_checked = False
        self._es_exhausted = False

    # -- internal bit FIFO --------------------------------------------------
    def _compact(self) -> None:
        drop = self._bitpos // 8
        if drop:
            del self._fifo[:drop]
            self._bitpos -= drop * 8

    def _try_parse(self):
        """Attempt to parse the next unit from the FIFO; returns the
        parse result or None if more bytes are needed."""
        r = BitReader(bytes(self._fifo))
        r._pos = self._bitpos
        try:
            if not self._header_checked:
                magic = bytes(r.read_bits(8) for _ in range(4))
                from repro.media.codec import MAGIC

                if magic != MAGIC:
                    raise BitstreamError(f"bad magic {magic!r}")
                vals = [r.read_ue() for _ in range(9)]
                expect = [
                    self.params.width // 16,
                    self.params.height // 16,
                    self.num_frames,
                    self.params.gop_n,
                    self.params.gop_m,
                    self.params.q_i,
                    self.params.q_p,
                    self.params.q_b,
                    1 if self.params.half_pel else 0,
                ]
                if vals != expect:
                    raise BitstreamError(f"sequence header mismatch: {vals} != {expect}")
                return ("header", r._pos)
            plan = self._plans[self._frame_ptr]
            if self._mb_ptr == 0:
                r.align()
                if r.read_bits(8) != SYNC_MARKER:
                    raise BitstreamError("lost sync")
                disp = r.read_ue()
                ft = r.read_ue()
                if disp != plan.display_index or ft != "IPB".index(plan.frame_type.value):
                    raise BitstreamError("picture header mismatch")
            mb = read_mb_syntax(r, self._mb_ptr, plan.frame_type, self.params.half_pel)
            return ("mb", r._pos, mb, plan)
        except BitstreamError as exc:
            if "past end" in str(exc):
                return None  # need more ES bytes
            raise

    def step(self, ctx: KernelContext):
        if self._frame_ptr >= len(self._plans):
            return StepOutcome.FINISHED
        parsed = self._try_parse()
        if parsed is None:
            # refill the bit FIFO from the ES stream
            sp = yield ctx.get_space("es_in", self.REFILL)
            n = self.REFILL if sp else sp.available
            if not sp and not sp.eos:
                return StepOutcome.ABORTED
            if n == 0:
                raise BitstreamError("elementary stream ended mid-parse")
            yield ctx.get_space("es_in", n)
            data = yield ctx.read("es_in", 0, n)
            yield ctx.put_space("es_in", n)
            yield ctx.compute(4 + n // 8)
            self._fifo.extend(data)
            return StepOutcome.COMPLETED
        if parsed[0] == "header":
            self._bitpos = parsed[1]
            self._header_checked = True
            self._compact()
            return StepOutcome.COMPLETED
        _tag, new_pos, mb, plan = parsed
        bits = new_pos - self._bitpos
        qscale = self.params.qscale(plan.frame_type)
        payload = pack_coef_payload(mb.block_pairs)
        coef_hdr = header_from_mb(mb, plan.frame_type, qscale, len(payload))
        mv_hdr = header_from_mb(mb, plan.frame_type, qscale, 0)
        n_pairs = sum(len(p) for p in mb.block_pairs)
        yield ctx.compute(
            self.cost.vld_per_mb
            + self.cost.vld_per_pair * n_pairs
            + self.cost.vld_per_8bits * (bits // 8)
        )
        ok = yield from reserve_all(
            ctx,
            [("coef_out", HEADER_SIZE + len(payload)), ("mv_out", HEADER_SIZE)],
        )
        if not ok:
            return StepOutcome.ABORTED
        yield from emit(ctx, "coef_out", coef_hdr.pack() + payload)
        yield from emit(ctx, "mv_out", mv_hdr.pack())
        # commit parser state
        self._bitpos = new_pos
        self._compact()
        self._mb_ptr += 1
        if self._mb_ptr == self.params.mbs_per_frame:
            self._mb_ptr = 0
            self._frame_ptr += 1
        return StepOutcome.COMPLETED
