"""On-stream packet formats for the media pipelines.

Eclipse coprocessors operate on "logical units of data ... encapsulated
in a data packet" (paper §4.2) — here one packet per macroblock.  Every
packet starts with a fixed 16-byte header carrying the MB's identity,
mode, motion vectors and the payload length; kernels use the paper's
two-phase GetSpace pattern (inquire for the header, then for
header+payload) for the variable-size coefficient packets.

Payload kinds (all little-endian):

===============  =====================================================
kind             payload
===============  =====================================================
``coef``         per coded block: u16 n_pairs + n_pairs x (u8, i16)
``levels``       6 x 64 int16 quantized levels
``coef_f32``     6 x 64 float32 dequantized coefficients (exact — see
                 CodecParams' qscale bound)
``coef_f64``     6 x 64 float64 DCT coefficients (encode side)
``residual``     6 x 64 int16 spatial residual
``pixels``       384 x uint8 reconstructed/predicted macroblock
``mv``           empty (header only) — the VLD→MC side stream
===============  =====================================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.media.codec import MacroblockData, MbMode
from repro.media.gop import FrameType
from repro.media.motion import MotionVector

__all__ = [
    "MbHeader",
    "HEADER_SIZE",
    "pack_coef_payload",
    "unpack_coef_payload",
    "pack_blocks",
    "unpack_blocks",
    "pack_pixels",
    "unpack_pixels",
    "header_from_mb",
    "mb_from_header",
]

HEADER_SIZE = 16
_HEADER_FMT = "<HBBBBhhhhH"
assert struct.calcsize(_HEADER_FMT) == HEADER_SIZE

_FTYPE_CODE = {FrameType.I: 0, FrameType.P: 1, FrameType.B: 2}
_FTYPE_FROM = {v: k for k, v in _FTYPE_CODE.items()}


@dataclass(frozen=True)
class MbHeader:
    """The uniform 16-byte macroblock packet header."""

    mb_index: int
    ftype: FrameType
    mode: MbMode
    cbp: int
    qscale: int
    fwd_vec: Optional[MotionVector]
    bwd_vec: Optional[MotionVector]
    payload_len: int

    def pack(self) -> bytes:
        fv = self.fwd_vec or MotionVector(0, 0)
        bv = self.bwd_vec or MotionVector(0, 0)
        half_pel = bool((self.fwd_vec and self.fwd_vec.half_pel)
                        or (self.bwd_vec and self.bwd_vec.half_pel))
        return struct.pack(
            _HEADER_FMT,
            self.mb_index,
            _FTYPE_CODE[self.ftype] | (0x80 if half_pel else 0),
            int(self.mode),
            self.cbp,
            self.qscale,
            fv.dy,
            fv.dx,
            bv.dy,
            bv.dx,
            self.payload_len,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "MbHeader":
        if len(data) != HEADER_SIZE:
            raise ValueError(f"header must be {HEADER_SIZE} bytes, got {len(data)}")
        (mb, ft, mode, cbp, q, fdy, fdx, bdy, bdx, plen) = struct.unpack(_HEADER_FMT, data)
        half_pel = bool(ft & 0x80)
        ft &= 0x7F
        mode = MbMode(mode)
        fwd = MotionVector(fdy, fdx, half_pel) if mode in (MbMode.FWD, MbMode.BI) else None
        bwd = MotionVector(bdy, bdx, half_pel) if mode in (MbMode.BWD, MbMode.BI) else None
        return cls(mb, _FTYPE_FROM[ft], mode, cbp, q, fwd, bwd, plen)

    def with_payload(self, payload_len: int, cbp: Optional[int] = None) -> "MbHeader":
        return MbHeader(
            self.mb_index,
            self.ftype,
            self.mode,
            self.cbp if cbp is None else cbp,
            self.qscale,
            self.fwd_vec,
            self.bwd_vec,
            payload_len,
        )


def header_from_mb(mb: MacroblockData, ftype: FrameType, qscale: int, payload_len: int) -> MbHeader:
    return MbHeader(
        mb.mb_index, ftype, mb.mode, mb.cbp, qscale, mb.fwd_vec, mb.bwd_vec, payload_len
    )


def mb_from_header(hdr: MbHeader, block_pairs: List[List[Tuple[int, int]]]) -> MacroblockData:
    return MacroblockData(hdr.mb_index, hdr.mode, hdr.fwd_vec, hdr.bwd_vec, hdr.cbp, block_pairs)


# ---------------------------------------------------------------------------
# payloads
# ---------------------------------------------------------------------------
def pack_coef_payload(block_pairs: List[List[Tuple[int, int]]]) -> bytes:
    """Run-level pairs of the coded blocks -> variable-size payload."""
    out = bytearray()
    for pairs in block_pairs:
        out.extend(struct.pack("<H", len(pairs)))
        for run, level in pairs:
            out.extend(struct.pack("<Bh", run, level))
    return bytes(out)


def unpack_coef_payload(payload: bytes, cbp: int) -> List[List[Tuple[int, int]]]:
    n_blocks = bin(cbp).count("1")
    out: List[List[Tuple[int, int]]] = []
    pos = 0
    for _ in range(n_blocks):
        (n_pairs,) = struct.unpack_from("<H", payload, pos)
        pos += 2
        pairs = []
        for _ in range(n_pairs):
            run, level = struct.unpack_from("<Bh", payload, pos)
            pos += 3
            pairs.append((run, level))
        out.append(pairs)
    if pos != len(payload):
        raise ValueError(f"coef payload has {len(payload) - pos} trailing bytes")
    return out


def pack_blocks(blocks: List[np.ndarray], dtype: np.dtype) -> bytes:
    """Six 8x8 blocks -> fixed-size payload of the given dtype."""
    if len(blocks) != 6:
        raise ValueError(f"expected 6 blocks, got {len(blocks)}")
    arr = np.stack([np.asarray(b, dtype=dtype) for b in blocks])
    return arr.tobytes()


def unpack_blocks(payload: bytes, dtype: np.dtype) -> List[np.ndarray]:
    arr = np.frombuffer(payload, dtype=dtype)
    if arr.size != 6 * 64:
        raise ValueError(f"expected {6 * 64} elements, got {arr.size}")
    return [blk.copy() for blk in arr.reshape(6, 8, 8)]


def pack_pixels(blocks: List[np.ndarray]) -> bytes:
    return pack_blocks(blocks, np.uint8)


def unpack_pixels(payload: bytes) -> List[np.ndarray]:
    return unpack_blocks(payload, np.uint8)
