"""Media workload substrate (substrate S4): a simplified MPEG-2-like codec.

The Eclipse evaluation (paper §6-§7) runs MPEG-2 encode/decode.  This
package provides the equivalent workload as a *simplified but real*
video codec — actual DCT, quantization, zigzag/run-level coding,
canonical-Huffman VLC with escape codes, block motion estimation and
compensation, and I/P/B GOP structure — everything that creates the
data-dependent load the paper's architecture is designed for:

* VLC bit counts vary wildly per macroblock and per frame type;
* the number of coded blocks varies per frame (the paper's DCT
  example of a "less obvious" irregular task);
* motion compensation fetches one (P) or two (B) reference blocks from
  off-chip memory.

It is deliberately *not* bit-compatible with MPEG-2 (see DESIGN.md's
substitution table): conformance syntax would add bulk without changing
the workload shape the reproduction depends on.

Layers:

* signal primitives: :mod:`bitstream`, :mod:`dct`, :mod:`quant`,
  :mod:`scan`, :mod:`vlc`, :mod:`motion`;
* sequence structure: :mod:`gop`, :mod:`video`;
* a functional reference codec: :mod:`codec`;
* Eclipse task kernels speaking the five primitives: :mod:`tasks`;
* ready-made application graphs (Figure 2 etc.): :mod:`pipelines`.
"""

from repro.media.bitstream import BitReader, BitWriter
from repro.media.codec import CodecParams, decode_sequence, encode_sequence
from repro.media.gop import FrameType, GopStructure
from repro.media.video import synthetic_sequence

__all__ = [
    "BitReader",
    "BitWriter",
    "CodecParams",
    "FrameType",
    "GopStructure",
    "decode_sequence",
    "encode_sequence",
    "synthetic_sequence",
]
