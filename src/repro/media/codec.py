"""Functional reference codec (golden model) and shared MB helpers.

The encoder/decoder here are plain functions — no process network, no
timing — and define the *exact* arithmetic of the format ("EMV1", our
simplified MPEG-2-like syntax).  The Eclipse task kernels in
:mod:`repro.media.tasks` call the same macroblock helpers, so a KPN
execution must reproduce these bits and pixels exactly; any divergence
is a pipeline bug, not codec noise.

Key design points mirroring MPEG-2:

* 4:2:0 macroblocks: 4 luma + 2 chroma 8x8 blocks, 6-bit coded block
  pattern;
* I/P/B frames with closed-GOP reordering (:mod:`repro.media.gop`);
* mode decision per MB (intra / forward / backward / bidirectional)
  by SAD, with intra prediction = flat 128 (so intra and inter blocks
  share one residual path);
* frequency-weighted quantization with per-frame-type scales;
* zigzag + run-level + canonical-Huffman VLC with escape codes;
* bit-exact reconstruction: the encoder's reference frames equal the
  decoder's output frames, byte for byte.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.media.bitstream import BitReader, BitWriter, BitstreamError
from repro.media.dct import fdct8x8, idct8x8
from repro.media.gop import FramePlan, FrameType, GopStructure
from repro.media.motion import MB, MotionVector, estimate, predict_mb, sad
from repro.media.quant import dequantize, quantize
from repro.media.scan import inverse_zigzag, run_level_decode, run_level_encode, zigzag
from repro.media.video import Frame
from repro.media.vlc import decode_block_pairs, encode_block_pairs

__all__ = [
    "CodecParams",
    "MbMode",
    "MacroblockData",
    "EncodeStats",
    "encode_sequence",
    "decode_sequence",
    "encode_macroblock",
    "reconstruct_macroblock",
    "mode_decision",
    "mb_prediction",
    "extract_mb",
    "insert_mb",
    "write_mb_syntax",
    "is_skipped",
    "read_mb_syntax",
    "SYNC_MARKER",
    "MAGIC",
]

MAGIC = b"EMV1"
SYNC_MARKER = 0xA5

#: block geometry within a macroblock: (plane, y-offset, x-offset)
#: planes: 0=y, 1=cb, 2=cr; offsets in plane pixels relative to the MB.
BLOCK_LAYOUT = (
    (0, 0, 0),
    (0, 0, 8),
    (0, 8, 0),
    (0, 8, 8),
    (1, 0, 0),
    (2, 0, 0),
)


class MbMode(enum.IntEnum):
    """Macroblock prediction mode (syntax order matters: coded as ue)."""

    INTRA = 0
    FWD = 1
    BWD = 2
    BI = 3


@dataclass
class CodecParams:
    """Sequence-level coding parameters."""

    width: int = 64
    height: int = 48
    gop_n: int = 12
    gop_m: int = 3
    q_i: int = 8
    q_p: int = 10
    q_b: int = 12
    search_range: int = 4
    #: MPEG-2-style half-pel motion (two-stage search + bilinear
    #: interpolation with integer rounding); off by default
    half_pel: bool = False

    def __post_init__(self) -> None:
        if self.width % 16 or self.height % 16:
            raise ValueError("dimensions must be multiples of 16")
        for q in (self.q_i, self.q_p, self.q_b):
            # <= 31 keeps every dequantized coefficient exactly
            # representable in float32, so pipeline packets carrying f32
            # coefficients stay bit-exact with the float64 reference.
            if not 1 <= q <= 31:
                raise ValueError("quantizer scales must be in [1, 31]")
        if self.search_range < 1:
            raise ValueError("search_range must be >= 1")

    @property
    def mb_cols(self) -> int:
        return self.width // MB

    @property
    def mb_rows(self) -> int:
        return self.height // MB

    @property
    def mbs_per_frame(self) -> int:
        return self.mb_cols * self.mb_rows

    def gop(self) -> GopStructure:
        return GopStructure(self.gop_n, self.gop_m)

    def qscale(self, ftype: FrameType) -> int:
        return {FrameType.I: self.q_i, FrameType.P: self.q_p, FrameType.B: self.q_b}[ftype]


@dataclass
class MacroblockData:
    """Everything one coded macroblock carries through the pipeline."""

    mb_index: int
    mode: MbMode
    fwd_vec: Optional[MotionVector]
    bwd_vec: Optional[MotionVector]
    cbp: int
    #: run-level pairs per coded block (len == popcount(cbp)), in
    #: BLOCK_LAYOUT order
    block_pairs: List[List[Tuple[int, int]]]


@dataclass
class EncodeStats:
    """Per-frame / per-MB workload statistics (feeds EXP-A6)."""

    frame_types: List[FrameType] = field(default_factory=list)
    frame_bits: List[int] = field(default_factory=list)
    mb_pairs: List[int] = field(default_factory=list)
    mb_coded_blocks: List[int] = field(default_factory=list)
    mb_modes: List[MbMode] = field(default_factory=list)
    mb_skipped: List[bool] = field(default_factory=list)


# ---------------------------------------------------------------------------
# macroblock pixel access
# ---------------------------------------------------------------------------
def extract_mb(frame: Frame, mb_y: int, mb_x: int) -> List[np.ndarray]:
    """The six 8x8 blocks of the macroblock at MB coordinates."""
    planes = (frame.y, frame.cb, frame.cr)
    out = []
    for plane, oy, ox in BLOCK_LAYOUT:
        scale = 1 if plane == 0 else 2
        base_y = mb_y * MB // scale + oy
        base_x = mb_x * MB // scale + ox
        out.append(planes[plane][base_y : base_y + 8, base_x : base_x + 8])
    return out


def insert_mb(frame: Frame, mb_y: int, mb_x: int, blocks: Sequence[np.ndarray]) -> None:
    """Write six reconstructed 8x8 blocks back into a frame."""
    planes = (frame.y, frame.cb, frame.cr)
    for (plane, oy, ox), block in zip(BLOCK_LAYOUT, blocks):
        scale = 1 if plane == 0 else 2
        base_y = mb_y * MB // scale + oy
        base_x = mb_x * MB // scale + ox
        planes[plane][base_y : base_y + 8, base_x : base_x + 8] = block


def mb_prediction(
    mode: MbMode,
    fwd: Optional[Frame],
    bwd: Optional[Frame],
    mb_y: int,
    mb_x: int,
    fwd_vec: Optional[MotionVector],
    bwd_vec: Optional[MotionVector],
) -> List[np.ndarray]:
    """Prediction blocks for one MB (flat 128 for intra)."""
    if mode is MbMode.INTRA:
        return [np.full((8, 8), 128.0) for _ in BLOCK_LAYOUT]
    use_fwd = mode in (MbMode.FWD, MbMode.BI)
    use_bwd = mode in (MbMode.BWD, MbMode.BI)
    out = []
    for plane, oy, ox in BLOCK_LAYOUT:
        scale = 1 if plane == 0 else 2
        y = mb_y * MB // scale + oy
        x = mb_x * MB // scale + ox
        fv = fwd_vec if use_fwd else None
        bv = bwd_vec if use_bwd else None
        if scale == 2:
            fv = fv.halved() if fv else None
            bv = bv.halved() if bv else None
        fwd_plane = (fwd.y, fwd.cb, fwd.cr)[plane] if (use_fwd and fwd) else None
        bwd_plane = (bwd.y, bwd.cb, bwd.cr)[plane] if (use_bwd and bwd) else None
        out.append(
            predict_mb(
                fwd_plane,
                bwd_plane,
                y,
                x,
                8,
                fv if fwd_plane is not None else None,
                bv if bwd_plane is not None else None,
            )
        )
    return out


# ---------------------------------------------------------------------------
# mode decision
# ---------------------------------------------------------------------------
def mode_decision(
    current: Frame,
    ftype: FrameType,
    fwd: Optional[Frame],
    bwd: Optional[Frame],
    mb_y: int,
    mb_x: int,
    search_range: int,
    half_pel: bool = False,
) -> Tuple[MbMode, Optional[MotionVector], Optional[MotionVector]]:
    """Choose the MB mode and motion vectors by luma SAD.

    Intra cost is the MB's deviation from its own mean (texture
    activity) — the classic cheap intra/inter criterion.
    """
    if ftype is FrameType.I:
        return MbMode.INTRA, None, None
    y0, x0 = mb_y * MB, mb_x * MB
    target = current.y[y0 : y0 + MB, x0 : x0 + MB]
    mean = float(np.mean(target))
    intra_cost = int(np.abs(target.astype(np.float64) - mean).sum())
    candidates: List[Tuple[int, MbMode, Optional[MotionVector], Optional[MotionVector]]] = []
    fvec = bvec = None
    if fwd is not None:
        fvec, fcost = estimate(current.y, fwd.y, y0, x0, search_range, half_pel)
        candidates.append((fcost, MbMode.FWD, fvec, None))
    if ftype is FrameType.B and bwd is not None:
        bvec, bcost = estimate(current.y, bwd.y, y0, x0, search_range, half_pel)
        candidates.append((bcost, MbMode.BWD, None, bvec))
        if fwd is not None:
            from repro.media.motion import predict_block

            bi = np.floor(
                (
                    predict_block(fwd.y, y0, x0, MB, fvec)
                    + predict_block(bwd.y, y0, x0, MB, bvec)
                    + 1
                )
                / 2
            )
            bicost = sad(target, bi)
            candidates.append((bicost, MbMode.BI, fvec, bvec))
    candidates.append((intra_cost, MbMode.INTRA, None, None))
    # min by (cost, syntax order) — deterministic tie-breaking
    candidates.sort(key=lambda c: (c[0], int(c[1])))
    _cost, mode, fv, bv = candidates[0]
    return mode, fv, bv


# ---------------------------------------------------------------------------
# macroblock encode / reconstruct
# ---------------------------------------------------------------------------
def encode_macroblock(
    current: Frame,
    pred: List[np.ndarray],
    mode: MbMode,
    mb_y: int,
    mb_x: int,
    qscale: int,
) -> Tuple[int, List[List[Tuple[int, int]]], List[np.ndarray]]:
    """Transform+quantize one MB against its prediction.

    Returns (cbp, pairs per coded block, reconstructed blocks).
    """
    blocks = extract_mb(current, mb_y, mb_x)
    intra = mode is MbMode.INTRA
    cbp = 0
    all_pairs: List[List[Tuple[int, int]]] = []
    recon_blocks: List[np.ndarray] = []
    for i, (block, p) in enumerate(zip(blocks, pred)):
        # prediction values are integral (pixels, flat 128, or the
        # floor-averaged bi prediction), so the residual is an exact
        # small integer — int16 packets carry it losslessly.
        residual = block.astype(np.int16) - p.astype(np.int16)
        levels = quantize(fdct8x8(residual), intra, qscale)
        pairs = run_level_encode(zigzag(levels))
        if pairs:
            cbp |= 1 << i
            all_pairs.append(pairs)
            # the decoded residual is DEFINED as int16 (cf. IEEE 1180
            # fixing IDCT precision in real MPEG), so both the reference
            # codec and the pipeline reconstruct identically.
            rec_res = np.rint(idct8x8(dequantize(levels, intra, qscale))).astype(np.int16)
        else:
            rec_res = np.zeros((8, 8), dtype=np.int16)
        recon_blocks.append(
            np.clip(p.astype(np.int16) + rec_res, 0, 255).astype(np.uint8)
        )
    return cbp, all_pairs, recon_blocks


def reconstruct_macroblock(
    mb: MacroblockData,
    pred: List[np.ndarray],
    qscale: int,
) -> List[np.ndarray]:
    """Decoder-side MB reconstruction (must mirror encode_macroblock)."""
    intra = mb.mode is MbMode.INTRA
    out: List[np.ndarray] = []
    pair_iter = iter(mb.block_pairs)
    for i, p in enumerate(pred):
        if mb.cbp & (1 << i):
            pairs = next(pair_iter)
            levels = inverse_zigzag(run_level_decode(pairs))
            rec_res = np.rint(idct8x8(dequantize(levels, intra, qscale))).astype(np.int16)
        else:
            rec_res = np.zeros((8, 8), dtype=np.int16)
        out.append(np.clip(p.astype(np.int16) + rec_res, 0, 255).astype(np.uint8))
    return out


# ---------------------------------------------------------------------------
# macroblock syntax
# ---------------------------------------------------------------------------
def _zero(vec: Optional[MotionVector]) -> bool:
    return vec is not None and vec.dy == 0 and vec.dx == 0


def is_skipped(mb: MacroblockData, ftype: FrameType) -> bool:
    """MPEG-style skipped macroblock: no coded blocks and the frame
    type's implied prediction — zero-vector forward in P frames,
    zero-vector bidirectional in B frames — codes as a single bit."""
    if mb.cbp != 0:
        return False
    if ftype is FrameType.P:
        return mb.mode is MbMode.FWD and _zero(mb.fwd_vec)
    if ftype is FrameType.B:
        return mb.mode is MbMode.BI and _zero(mb.fwd_vec) and _zero(mb.bwd_vec)
    return False


def write_mb_syntax(w: BitWriter, mb: MacroblockData, ftype: FrameType) -> None:
    if ftype is not FrameType.I:
        if is_skipped(mb, ftype):
            w.write_bit(1)
            return
        w.write_bit(0)
    w.write_ue(int(mb.mode))
    if mb.mode in (MbMode.FWD, MbMode.BI):
        w.write_se(mb.fwd_vec.dy)
        w.write_se(mb.fwd_vec.dx)
    if mb.mode in (MbMode.BWD, MbMode.BI):
        w.write_se(mb.bwd_vec.dy)
        w.write_se(mb.bwd_vec.dx)
    w.write_bits(mb.cbp, 6)
    for pairs in mb.block_pairs:
        encode_block_pairs(w, pairs)


def read_mb_syntax(
    r: BitReader, mb_index: int, ftype: FrameType, half_pel: bool = False
) -> MacroblockData:
    if ftype is not FrameType.I and r.read_bit():
        zero = MotionVector(0, 0, half_pel)
        if ftype is FrameType.P:
            return MacroblockData(mb_index, MbMode.FWD, zero, None, 0, [])
        return MacroblockData(mb_index, MbMode.BI, zero, zero, 0, [])
    mode = MbMode(r.read_ue())
    if ftype is FrameType.I and mode is not MbMode.INTRA:
        raise BitstreamError(f"non-intra MB in I frame (mb {mb_index})")
    if ftype is FrameType.P and mode in (MbMode.BWD, MbMode.BI):
        raise BitstreamError(f"backward prediction in P frame (mb {mb_index})")
    fwd_vec = bwd_vec = None
    if mode in (MbMode.FWD, MbMode.BI):
        fwd_vec = MotionVector(r.read_se(), r.read_se(), half_pel)
    if mode in (MbMode.BWD, MbMode.BI):
        bwd_vec = MotionVector(r.read_se(), r.read_se(), half_pel)
    cbp = r.read_bits(6)
    block_pairs = [decode_block_pairs(r) for i in range(6) if cbp & (1 << i)]
    return MacroblockData(mb_index, mode, fwd_vec, bwd_vec, cbp, block_pairs)


# ---------------------------------------------------------------------------
# sequence encode
# ---------------------------------------------------------------------------
def encode_sequence(
    frames: Sequence[Frame], params: CodecParams
) -> Tuple[bytes, List[Frame], EncodeStats]:
    """Encode display-order ``frames``; returns (bitstream, the
    encoder's reconstructed frames in display order, stats).

    The reconstructed frames are what a correct decoder must output
    bit-exactly.
    """
    for f in frames:
        if f.shape != (params.height, params.width):
            raise ValueError(f"frame shape {f.shape} != params {params.height, params.width}")
    w = BitWriter()
    for b in MAGIC:
        w.write_bits(b, 8)
    for v in (
        params.width // 16,
        params.height // 16,
        len(frames),
        params.gop_n,
        params.gop_m,
        params.q_i,
        params.q_p,
        params.q_b,
        1 if params.half_pel else 0,
    ):
        w.write_ue(v)

    stats = EncodeStats()
    recon: Dict[int, Frame] = {}
    plans = params.gop().coded_order(len(frames))
    for plan in plans:
        bits_before = w.bits_written
        frame = frames[plan.display_index]
        fwd = recon.get(plan.forward_ref) if plan.forward_ref is not None else None
        bwd = recon.get(plan.backward_ref) if plan.backward_ref is not None else None
        qscale = params.qscale(plan.frame_type)
        w.align()
        w.write_bits(SYNC_MARKER, 8)
        w.write_ue(plan.display_index)
        w.write_ue(("IPB".index(plan.frame_type.value)))
        rec = Frame(
            np.zeros_like(frame.y),
            np.zeros_like(frame.cb),
            np.zeros_like(frame.cr),
        )
        for mb_y in range(params.mb_rows):
            for mb_x in range(params.mb_cols):
                mode, fv, bv = mode_decision(
                    frame,
                    plan.frame_type,
                    fwd,
                    bwd,
                    mb_y,
                    mb_x,
                    params.search_range,
                    params.half_pel,
                )
                pred = mb_prediction(mode, fwd, bwd, mb_y, mb_x, fv, bv)
                cbp, pairs, rec_blocks = encode_macroblock(
                    frame, pred, mode, mb_y, mb_x, qscale
                )
                mb = MacroblockData(
                    mb_y * params.mb_cols + mb_x, mode, fv, bv, cbp, pairs
                )
                write_mb_syntax(w, mb, plan.frame_type)
                insert_mb(rec, mb_y, mb_x, rec_blocks)
                stats.mb_pairs.append(sum(len(p) for p in pairs))
                stats.mb_coded_blocks.append(bin(cbp).count("1"))
                stats.mb_modes.append(mode)
                stats.mb_skipped.append(is_skipped(mb, plan.frame_type))
        recon[plan.display_index] = rec
        stats.frame_types.append(plan.frame_type)
        stats.frame_bits.append(w.bits_written - bits_before)
    w.align()
    display = [recon[i] for i in range(len(frames))]
    return w.getvalue(), display, stats


# ---------------------------------------------------------------------------
# sequence decode
# ---------------------------------------------------------------------------
def decode_sequence(bitstream: bytes) -> Tuple[List[Frame], CodecParams]:
    """Decode an EMV1 bitstream to display-order frames."""
    r = BitReader(bitstream)
    magic = bytes(r.read_bits(8) for _ in range(4))
    if magic != MAGIC:
        raise BitstreamError(f"bad magic {magic!r}")
    mb_cols = r.read_ue()
    mb_rows = r.read_ue()
    num_frames = r.read_ue()
    gop_n = r.read_ue()
    gop_m = r.read_ue()
    q_i, q_p, q_b = r.read_ue(), r.read_ue(), r.read_ue()
    half_pel = bool(r.read_ue())
    params = CodecParams(
        width=mb_cols * 16,
        height=mb_rows * 16,
        gop_n=gop_n,
        gop_m=gop_m,
        q_i=q_i,
        q_p=q_p,
        q_b=q_b,
        half_pel=half_pel,
    )
    recon: Dict[int, Frame] = {}
    plans = params.gop().coded_order(num_frames)
    for plan in plans:
        r.align()
        marker = r.read_bits(8)
        if marker != SYNC_MARKER:
            raise BitstreamError(f"lost sync at frame {plan.coded_index}: {marker:#x}")
        display_index = r.read_ue()
        ftype = (FrameType.I, FrameType.P, FrameType.B)[r.read_ue()]
        if display_index != plan.display_index or ftype is not plan.frame_type:
            raise BitstreamError(
                f"frame plan mismatch: stream says {ftype}@{display_index}, "
                f"GOP says {plan.frame_type}@{plan.display_index}"
            )
        fwd = recon.get(plan.forward_ref) if plan.forward_ref is not None else None
        bwd = recon.get(plan.backward_ref) if plan.backward_ref is not None else None
        qscale = params.qscale(ftype)
        frame = Frame(
            np.zeros((params.height, params.width), dtype=np.uint8),
            np.zeros((params.height // 2, params.width // 2), dtype=np.uint8),
            np.zeros((params.height // 2, params.width // 2), dtype=np.uint8),
        )
        for mb_y in range(params.mb_rows):
            for mb_x in range(params.mb_cols):
                mb = read_mb_syntax(
                    r, mb_y * params.mb_cols + mb_x, ftype, params.half_pel
                )
                pred = mb_prediction(mb.mode, fwd, bwd, mb_y, mb_x, mb.fwd_vec, mb.bwd_vec)
                blocks = reconstruct_macroblock(mb, pred, qscale)
                insert_mb(frame, mb_y, mb_x, blocks)
        recon[plan.display_index] = frame
    return [recon[i] for i in range(num_frames)], params
