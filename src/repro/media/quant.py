"""Quantization with intra/non-intra matrices and a quantizer scale.

Modelled on MPEG-2: a frequency-weighted quantization matrix (coarser
for high frequencies) multiplied by a per-picture quantizer scale.
Quantized levels are clamped to the VLC's representable range.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "INTRA_MATRIX",
    "NONINTRA_MATRIX",
    "quantize",
    "dequantize",
    "LEVEL_MAX",
    "COEF_MAX",
]

#: Largest |level| the escape code can carry (12-bit signed magnitude).
LEVEL_MAX = 2047

#: MPEG-2 default intra quantization matrix.
INTRA_MATRIX = np.array(
    [
        [8, 16, 19, 22, 26, 27, 29, 34],
        [16, 16, 22, 24, 27, 29, 34, 37],
        [19, 22, 26, 27, 29, 34, 34, 38],
        [22, 22, 26, 27, 29, 34, 37, 40],
        [22, 26, 27, 29, 32, 35, 40, 48],
        [26, 27, 29, 32, 35, 40, 48, 58],
        [26, 27, 29, 34, 38, 46, 56, 69],
        [27, 29, 35, 38, 46, 56, 69, 83],
    ],
    dtype=np.float64,
)

#: MPEG-2 default non-intra matrix is flat 16.
NONINTRA_MATRIX = np.full((8, 8), 16.0, dtype=np.float64)


def _step(intra: bool, qscale: int) -> np.ndarray:
    if qscale < 1:
        raise ValueError(f"qscale must be >= 1, got {qscale}")
    matrix = INTRA_MATRIX if intra else NONINTRA_MATRIX
    return matrix * qscale / 8.0


def quantize(coef: np.ndarray, intra: bool, qscale: int) -> np.ndarray:
    """Quantize float coefficients -> int16 levels (round-to-nearest)."""
    levels = np.rint(coef / _step(intra, qscale))
    return np.clip(levels, -LEVEL_MAX, LEVEL_MAX).astype(np.int16)


#: dequantized coefficients saturate to this range (MPEG-2's [-2048,
#: 2047] clamp), so they travel as int16 — the paper's "mostly 16 bits
#: data items".
COEF_MAX = 2047


def dequantize(levels: np.ndarray, intra: bool, qscale: int) -> np.ndarray:
    """Reconstruct integer coefficients from int levels.

    MPEG-2 style: the inverse quantizer rounds to integer and saturates
    to 12 bits, fixing the reconstruction arithmetic so any transport
    or engine (reference codec, pipeline kernels) is bit-exact.
    """
    coef = np.rint(levels.astype(np.float64) * _step(intra, qscale))
    return np.clip(coef, -COEF_MAX - 1, COEF_MAX).astype(np.int16)
