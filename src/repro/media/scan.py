"""Zigzag scan and run-level coding.

The RLSQ coprocessor of the first Eclipse instance performs run-length
(de)coding, (inverse) scan and (inverse) quantization (paper §6); this
module is its scan/run-length functional model.  Run-level pairs are
``(run-of-zeros, nonzero level)`` in zigzag order, terminated by EOB.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["ZIGZAG", "ZIGZAG_INV", "zigzag", "inverse_zigzag", "run_level_encode", "run_level_decode"]


def _zigzag_order() -> np.ndarray:
    order = []
    for s in range(15):  # anti-diagonals of an 8x8 block
        rng = range(max(0, s - 7), min(s, 7) + 1)
        diag = [(s - j, j) for j in rng]
        if s % 2 == 1:
            diag.reverse()
        order.extend(diag)
    idx = np.array([r * 8 + c for r, c in order], dtype=np.int64)
    return idx


#: Flat indices of the zigzag scan (position k of the scan reads
#: flattened block element ZIGZAG[k]).
ZIGZAG = _zigzag_order()
#: Inverse permutation: scan position of each flat block element.
ZIGZAG_INV = np.argsort(ZIGZAG)


def zigzag(block: np.ndarray) -> np.ndarray:
    """8x8 block -> 64-vector in zigzag order."""
    if block.shape != (8, 8):
        raise ValueError(f"expected 8x8 block, got {block.shape}")
    return block.reshape(64)[ZIGZAG]


def inverse_zigzag(vec: np.ndarray) -> np.ndarray:
    """64-vector in zigzag order -> 8x8 block."""
    if vec.shape != (64,):
        raise ValueError(f"expected 64-vector, got {vec.shape}")
    return vec[ZIGZAG_INV].reshape(8, 8)


def run_level_encode(levels: np.ndarray) -> List[Tuple[int, int]]:
    """Zigzagged levels -> [(run, level), ...] (EOB implicit).

    ``run`` is the number of zeros preceding the nonzero ``level``.
    An all-zero block encodes to an empty list.
    """
    if levels.shape != (64,):
        raise ValueError(f"expected 64-vector, got {levels.shape}")
    pairs: List[Tuple[int, int]] = []
    run = 0
    for v in levels:
        v = int(v)
        if v == 0:
            run += 1
        else:
            pairs.append((run, v))
            run = 0
    return pairs


def run_level_decode(pairs: List[Tuple[int, int]]) -> np.ndarray:
    """[(run, level), ...] -> zigzagged 64-vector of int16."""
    out = np.zeros(64, dtype=np.int16)
    pos = 0
    for run, level in pairs:
        if run < 0 or level == 0:
            raise ValueError(f"bad run-level pair ({run}, {level})")
        pos += run
        if pos >= 64:
            raise ValueError(f"run-level data overflows the block (pos {pos})")
        out[pos] = level
        pos += 1
    return out
