"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    package/version/instance summary.
``quickstart``
    the Kahn-equivalence demo on a 2-coprocessor instance.
``decode``
    encode a synthetic sequence, decode it on the Figure 8 instance,
    print the Figure 9 views, the Figure 10 traces and the bottleneck
    attribution.
``estimate``
    the Section 6 area/power/Gops table.
``explore``
    the §7 design-space sweeps (cache, prefetch, bus, buffers).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Eclipse heterogeneous multiprocessor architecture — "
        "IPPS 2002 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and instance summary")
    sub.add_parser("quickstart", help="Kahn-equivalence demo")
    sub.add_parser("estimate", help="Section 6 area/power/Gops estimates")

    dec = sub.add_parser("decode", help="decode on the Figure 8 instance")
    dec.add_argument("--width", type=int, default=96)
    dec.add_argument("--height", type=int, default=64)
    dec.add_argument("--frames", type=int, default=12)
    dec.add_argument("--gop-n", type=int, default=12)
    dec.add_argument("--gop-m", type=int, default=3)
    dec.add_argument("--interval", type=int, default=250, help="sampling interval (cycles)")
    dec.add_argument("--half-pel", action="store_true")
    dec.add_argument("--json", metavar="PATH", help="write the machine-readable result to PATH")

    exp = sub.add_parser("explore", help="design-space sweeps (paper §7)")
    exp.add_argument("--frames", type=int, default=6)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return {
        "info": _cmd_info,
        "quickstart": _cmd_quickstart,
        "decode": _cmd_decode,
        "estimate": _cmd_estimate,
        "explore": _cmd_explore,
    }[args.command](args)


# ---------------------------------------------------------------------------
def _cmd_info(args) -> int:
    import repro
    from repro.instance.eclipse_mpeg import COPROCESSORS, DECODE_MAPPING, ENCODE_MAPPING

    print(f"repro {repro.__version__} — Eclipse (Rutten et al., IPPS 2002)")
    print(f"instance units: {', '.join(COPROCESSORS)}")
    print(f"decode mapping: {DECODE_MAPPING}")
    print(f"encode mapping: {ENCODE_MAPPING}")
    print("see README.md / DESIGN.md / EXPERIMENTS.md for the full story")
    return 0


def _cmd_quickstart(args) -> int:
    from repro import ApplicationGraph, CoprocessorSpec, EclipseSystem, FunctionalExecutor, TaskNode
    from repro.kahn.library import ConsumerKernel, ProducerKernel

    payload = bytes((11 * i) % 256 for i in range(4096))

    def graph():
        g = ApplicationGraph("cli-demo")
        g.add_task(TaskNode("src", lambda: ProducerKernel(payload, chunk=32), ProducerKernel.PORTS))
        g.add_task(TaskNode("dst", lambda: ConsumerKernel(chunk=32), ConsumerKernel.PORTS))
        g.connect("src.out", "dst.in", buffer_size=128)
        return g

    golden = FunctionalExecutor(graph()).run()
    system = EclipseSystem([CoprocessorSpec("cp0"), CoprocessorSpec("cp1")])
    system.configure(graph())
    result = system.run()
    ok = result.histories["s_src_out"] == golden.histories["s_src_out"]
    print(f"cycle-level run: {result.cycles} cycles; history matches reference: {ok}")
    return 0 if ok else 1


def _cmd_decode(args) -> int:
    from repro import (
        CodecParams,
        DECODE_MAPPING,
        Sampler,
        build_mpeg_instance,
        decode_graph,
        encode_sequence,
        synthetic_sequence,
    )
    from repro.trace.analysis import bottleneck_by_frame_type, per_frame_type_service
    from repro.trace.viewer import render_application_view, render_architecture_view, render_fill_traces

    params = CodecParams(
        width=args.width,
        height=args.height,
        gop_n=args.gop_n,
        gop_m=args.gop_m,
        half_pel=args.half_pel,
    )
    frames = synthetic_sequence(params.width, params.height, args.frames, noise=1.0)
    bitstream, _golden, _stats = encode_sequence(frames, params)
    print(f"encoded {args.frames} frames -> {len(bitstream)} bytes")
    system = build_mpeg_instance()
    system.configure(decode_graph(bitstream, mapping=DECODE_MAPPING))
    sampler = Sampler(system, interval=args.interval)
    result = system.run()
    print(f"decoded in {result.cycles} cycles\n")
    print(render_architecture_view(result))
    print()
    print(render_application_view(result))
    plans = params.gop().coded_order(args.frames)
    marks = sampler.frame_boundaries("vld", params.mbs_per_frame)
    print("\nFigure 10 traces:")
    print(
        render_fill_traces(
            {k: sampler.stream_fill[k] for k in (("coef", "rlsq"), ("dequant", "idct"), ("resid", "mc"))},
            buffer_sizes={n: s.buffer_size for n, s in result.streams.items()},
            frame_marks=marks,
            frame_types=[p.frame_type.value for p in plans],
        )
    )
    service = per_frame_type_service(
        sampler, plans, params.mbs_per_frame, {"rlsq": "rlsq", "idct": "dct", "mc": "mcme"}
    )
    print(f"\nbottleneck per frame type: {bottleneck_by_frame_type(service)}")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_estimate(args) -> int:
    from repro import AreaPowerModel

    model = AreaPowerModel()
    est = model.estimate()
    print("Section 6 instance estimates (paper -> model):")
    print(f"  Gops/s (2x HD decode): ~36 -> {est.gops:.1f}")
    print(f"  area: <7 mm^2 -> {est.area_mm2:.2f} mm^2")
    for block, mm2 in sorted(est.area_breakdown.items()):
        print(f"    {block:>8}: {mm2:5.2f} mm^2")
    print(f"  power: <240 mW -> {est.power_mw:.1f} mW")
    checks = model.paper_claims_hold()
    print(f"  all paper bounds hold: {all(checks.values())}")
    return 0 if all(checks.values()) else 1


def _cmd_explore(args) -> int:
    from repro import (
        CodecParams,
        DECODE_MAPPING,
        ShellParams,
        build_mpeg_instance,
        decode_graph,
        encode_sequence,
        synthetic_sequence,
    )

    params = CodecParams(width=48, height=32, gop_n=6, gop_m=3)
    frames = synthetic_sequence(params.width, params.height, args.frames)
    bitstream, _, _ = encode_sequence(frames, params)

    def run(shell=None, buffer_packets=3):
        system = build_mpeg_instance(shell=shell)
        system.configure(
            decode_graph(bitstream, mapping=DECODE_MAPPING, buffer_packets=buffer_packets)
        )
        return system.run().cycles

    base = run()
    print(f"baseline decode: {base} cycles")
    print("prefetch sweep:")
    for pf in (0, 2, 8):
        print(f"  {pf} lines ahead: {run(shell=ShellParams(prefetch_lines=pf))} cycles")
    print("buffer sweep:")
    for pkts in (1, 3, 8):
        print(f"  {pkts} packets/buffer: {run(buffer_packets=pkts)} cycles")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
