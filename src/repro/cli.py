"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    package/version/instance summary.
``quickstart``
    the Kahn-equivalence demo on a 2-coprocessor instance.
``decode``
    encode a synthetic sequence, decode it on the Figure 8 instance,
    print the Figure 9 views, the Figure 10 traces and the bottleneck
    attribution.
``estimate``
    the Section 6 area/power/Gops table.
``explore``
    the §7 design-space sweeps (cache, prefetch, bus, buffers).
``conformance``
    the differential conformance harness: run application graphs
    through the functional Kahn executor and the fault-injected
    cycle-level system across a seed sweep, asserting byte-identical
    stream histories (Kahn determinism as the oracle).
``verify``
    static analysis before any simulation: KPN/SDF graph lints and
    abstract-interpretation protocol checks over the named workloads
    (``--workload``), the seeded mutation corpus (``--corpus``), or the
    rule catalogue (``--list-rules``).  Exits non-zero iff an
    error-severity diagnostic is present.  See docs/static-analysis.md.
``trace``
    run a workload under the span tracer and export a Chrome-trace/
    Perfetto JSON timeline (``--out``); ``--check`` lints the exported
    file against the trace schema (rules O301-O303).  See
    docs/observability.md.
``serve``
    the sweep service: a long-running asyncio server with a priority
    queue, a bounded worker pool and a content-addressed result cache,
    speaking newline-delimited JSON on a unix socket (``--socket``) or
    stdio (``--stdio``).  Identical requests are served from the cache
    byte-for-byte; concurrent identical requests cost one execution.
    See docs/sweep-service.md.
``submit``
    one-shot client for a running ``serve``: submit a named workload
    (``--workload``, with ``--arg key=value`` parameters) or any
    ``module:function`` factory (``--factory``), print the verified
    result, optionally save the canonical payload bytes (``--out``).
    ``--stats`` and ``--shutdown`` poke the server instead.

The run commands accept ``--obs-level {off,counters,series,full}`` to
pick how much the simulation records (default ``full``, today's
byte-identical behaviour; ``off`` is the fastest) and
``--sample-interval CYCLES`` to attach the periodic time-series
sampler.  Levels below ``full`` skip the golden history comparisons —
the histories are simply not recorded.

``quickstart``, ``decode`` and ``conformance`` accept ``--fault-plan``
(a preset name or ``key=value`` list, see
:meth:`repro.sim.faults.FaultPlan.parse`) and ``--watchdog-timeout``
to exercise the robustness machinery.

``conformance`` and ``explore`` fan their independent simulation runs
out over the :mod:`repro.runner` process pool: ``--jobs N`` picks the
parallelism (default: all cores), ``--report PATH`` writes the
machine-readable JSON report.  The report's deterministic sections are
byte-identical at any ``--jobs`` count; ``--report-timing`` opts into
embedding the wall-clock block (which naturally varies run to run).
See docs/parallel-runs.md.

``--checkpoint-dir DIR`` runs the same sweeps under the crash-tolerant
supervisor (checkpointed workers, heartbeat crash/hang detection,
bounded restarts); ``--resume DIR`` continues an interrupted sweep
from its checkpoint directory.  See docs/resilience.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--fault-plan",
        metavar="SPEC",
        help="inject transport faults: a preset (chaos, drop, dup, delay, "
        "stall, corrupt, blackout) or a key=value list, e.g. "
        "'drop=0.2,delay=0.3,seed=7'",
    )
    p.add_argument(
        "--fault-seed", type=int, default=None, help="override the fault plan's seed"
    )
    p.add_argument(
        "--watchdog-timeout",
        type=int,
        default=None,
        metavar="CYCLES",
        help="enable the shell watchdog: re-send space credits after CYCLES "
        "without progress (exponential backoff)",
    )


def _add_loss_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--loss-plan",
        metavar="SPEC",
        help="feed the stream through the lossy network ingest first: a "
        "preset (none, mild, moderate, heavy, jitter) or a key=value "
        "list, e.g. 'drop=0.1,fec_group=4,max_rtx=3,seed=7'",
    )
    p.add_argument(
        "--loss-seed", type=int, default=None,
        help="override the loss plan's seed",
    )


def _add_engine_arg(p: argparse.ArgumentParser) -> None:
    from repro.sim.fastengine import ENGINES

    p.add_argument(
        "--engine",
        choices=ENGINES,
        default="reference",
        help="execution core: 'reference' (readable baseline) or 'fast' "
        "(flattened hot paths + idle-window compression; byte-identical "
        "results, see docs/fast-engine.md)",
    )


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    from repro.obs.level import LEVELS

    p.add_argument(
        "--obs-level",
        choices=LEVELS,
        default="full",
        help="observability level: how much the run records (default: "
        "'full' — byte-identical histories + op log; 'off' is the "
        "fastest, structural counters only; see docs/observability.md)",
    )
    p.add_argument(
        "--sample-interval",
        type=int,
        default=None,
        metavar="CYCLES",
        help="attach the periodic time-series sampler (occupancy/"
        "utilization every CYCLES cycles; needs --obs-level series "
        "or full)",
    )


def _add_runner_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel simulation processes (default: all cores; 1 = serial)",
    )
    p.add_argument(
        "--report",
        metavar="PATH",
        help="write the machine-readable JSON run report to PATH "
        "(deterministic: byte-identical at any --jobs count)",
    )
    p.add_argument(
        "--report-timing",
        action="store_true",
        help="embed the wall-clock timing block in --report (breaks "
        "byte-identity across runs)",
    )
    p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="run the sweep under the crash-tolerant supervisor, writing "
        "checkpoints and per-run results to DIR (see docs/resilience.md)",
    )
    p.add_argument(
        "--resume",
        metavar="DIR",
        help="resume an interrupted supervised sweep from its checkpoint "
        "directory: completed runs are skipped, interrupted ones continue "
        "from their last checkpoint",
    )
    p.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="CYCLES",
        help="simulated cycles between checkpoints (default: 4096)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Eclipse heterogeneous multiprocessor architecture — "
        "IPPS 2002 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and instance summary")
    qs = sub.add_parser("quickstart", help="Kahn-equivalence demo")
    _add_fault_args(qs)
    _add_engine_arg(qs)
    _add_obs_args(qs)
    sub.add_parser("estimate", help="Section 6 area/power/Gops estimates")

    dec = sub.add_parser("decode", help="decode on the Figure 8 instance")
    dec.add_argument("--width", type=int, default=96)
    dec.add_argument("--height", type=int, default=64)
    dec.add_argument("--frames", type=int, default=12)
    dec.add_argument("--gop-n", type=int, default=12)
    dec.add_argument("--gop-m", type=int, default=3)
    dec.add_argument("--interval", type=int, default=250, help="sampling interval (cycles)")
    dec.add_argument("--half-pel", action="store_true")
    dec.add_argument("--json", metavar="PATH", help="write the machine-readable result to PATH")
    _add_fault_args(dec)
    _add_loss_args(dec)
    _add_engine_arg(dec)
    _add_obs_args(dec)

    exp = sub.add_parser("explore", help="design-space sweeps (paper §7)")
    exp.add_argument("--frames", type=int, default=6)
    _add_runner_args(exp)
    _add_engine_arg(exp)
    _add_obs_args(exp)

    conf = sub.add_parser(
        "conformance",
        help="differential conformance harness: faulted cycle-level runs vs "
        "the functional Kahn executor over a seed sweep",
    )
    conf.add_argument("--seeds", type=int, default=10, help="number of fault seeds to sweep")
    conf.add_argument(
        "--graph",
        choices=["pipeline", "diamond", "all"],
        default="all",
        help="which application graphs to run",
    )
    conf.add_argument("--payload", type=int, default=2048, help="payload bytes per graph")
    _add_fault_args(conf)
    _add_loss_args(conf)
    _add_runner_args(conf)
    _add_engine_arg(conf)
    _add_obs_args(conf)

    tr = sub.add_parser(
        "trace",
        help="span-traced run exported as Chrome-trace/Perfetto JSON",
    )
    tr.add_argument(
        "--workload",
        choices=["quickstart", "decode"],
        default="decode",
        help="which canonical workload to trace (default: decode)",
    )
    tr.add_argument(
        "--out",
        metavar="PATH",
        default="trace.json",
        help="trace JSON output path (default: trace.json; load it in "
        "https://ui.perfetto.dev or chrome://tracing)",
    )
    tr.add_argument(
        "--capacity",
        type=int,
        default=100_000,
        metavar="N",
        help="ring-buffer capacity in events (oldest dropped beyond N)",
    )
    tr.add_argument(
        "--ascii",
        action="store_true",
        help="also print the ASCII architecture/application views",
    )
    tr.add_argument(
        "--check",
        action="store_true",
        help="lint the exported trace against the schema (rules "
        "O301-O303) and exit non-zero on errors",
    )
    _add_engine_arg(tr)
    tr.add_argument(
        "--obs-level",
        choices=["series", "full"],
        default="full",
        help="observability level for the traced run (spans need time "
        "series: 'series' or 'full'; default: full)",
    )

    srv = sub.add_parser(
        "serve",
        help="run the sweep service: async job queue + content-addressed "
        "result cache over newline-delimited JSON (docs/sweep-service.md)",
    )
    srv.add_argument(
        "--socket",
        metavar="PATH",
        default="sweep.sock",
        help="unix socket path to listen on (default: sweep.sock)",
    )
    srv.add_argument(
        "--stdio",
        action="store_true",
        help="serve one client on stdin/stdout instead of a socket "
        "(useful under a process supervisor or in tests)",
    )
    srv.add_argument(
        "--store",
        metavar="DIR",
        default="sweep-store",
        help="result-store root: cached payloads under objects/, per-"
        "request checkpoints under ckpt/ (default: sweep-store)",
    )
    srv.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="concurrent executions / process-pool size (default: 2)",
    )
    srv.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="CYCLES",
        help="run every request under the crash-tolerant supervisor, "
        "checkpointing every CYCLES cycles into the store (enables "
        "restart-from-snapshot and warm-start recomputation)",
    )
    srv.add_argument(
        "--threads",
        action="store_true",
        help="execute in threads instead of a process pool (slower; "
        "mainly for constrained environments)",
    )

    sbm = sub.add_parser(
        "submit",
        help="submit one run to a running sweep service and print the "
        "verified result",
    )
    sbm.add_argument(
        "--socket",
        metavar="PATH",
        default="sweep.sock",
        help="unix socket of the running service (default: sweep.sock)",
    )
    what = sbm.add_mutually_exclusive_group()
    what.add_argument(
        "--workload",
        metavar="NAME",
        help="a named workload factory (see repro.workloads.RUN_FACTORIES: "
        "quickstart, decode, conformance)",
    )
    what.add_argument(
        "--factory",
        metavar="MOD:FN",
        help="any module-level factory as a 'module:function' reference",
    )
    sbm.add_argument(
        "--arg",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="factory keyword argument (repeatable); VALUE is parsed as "
        "JSON when possible, else kept as a string",
    )
    sbm.add_argument(
        "--budget",
        type=int,
        metavar="BYTES",
        help="submit an SRAM budget instead of a full spec: the server "
        "solves --workload (a solve-model name; default "
        "conformance-pipeline) for minimal buffers under BYTES and runs "
        "the derived configuration",
    )
    sbm.add_argument("--label", default="", help="run label (part of the result)")
    sbm.add_argument(
        "--priority",
        type=int,
        default=0,
        metavar="N",
        help="queue priority: lower runs earlier (default: 0)",
    )
    sbm.add_argument(
        "--stream",
        action="store_true",
        help="print queue/execution progress events as they happen",
    )
    sbm.add_argument(
        "--out",
        metavar="PATH",
        help="write the canonical result payload bytes to PATH "
        "(byte-identical for cache hit and cold run — cmp-able)",
    )
    sbm.add_argument(
        "--stats",
        action="store_true",
        help="print the server's health snapshot instead of submitting",
    )
    sbm.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the server to shut down instead of submitting",
    )

    ver = sub.add_parser(
        "verify",
        help="static analysis: KPN graph lints + kernel shell-protocol checks",
    )
    ver.add_argument(
        "--workload",
        metavar="NAME",
        default="all",
        help="verify one named workload factory (default: all)",
    )
    ver.add_argument(
        "--corpus",
        action="store_true",
        help="run the seeded mutation corpus instead of the workloads "
        "(every known-bad case must be flagged)",
    )
    ver.add_argument(
        "--format", choices=["text", "json"], default="text", help="report format"
    )
    ver.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULE",
        help="suppress a rule by ID (repeatable), e.g. --ignore G009",
    )
    ver.add_argument(
        "--max-steps",
        type=int,
        default=12,
        metavar="N",
        help="abstract-interpretation steps per kernel session",
    )
    ver.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    ver.add_argument(
        "--verbose", action="store_true", help="also print checker notes (skipped kernels etc.)"
    )

    slv = sub.add_parser(
        "solve",
        help="derive a configuration (buffer sizes, grain, mapping) "
        "from an SRAM budget instead of checking one",
    )
    slv.add_argument(
        "--workload",
        metavar="NAME",
        default="conformance-pipeline",
        help="solve model to configure (see repro.verify.SOLVE_MODELS; "
        "default: conformance-pipeline)",
    )
    slv.add_argument(
        "--sram",
        type=int,
        metavar="BYTES",
        help="SRAM budget in bytes (default: the instance's own SRAM)",
    )
    slv.add_argument(
        "--elasticity",
        type=int,
        default=1,
        metavar="K",
        help="grow buffers toward K x their minimum while the budget "
        "allows (default: 1 = strictly minimal)",
    )
    slv.add_argument(
        "--grain",
        type=int,
        metavar="BYTES",
        help="pin the sync grain instead of searching the candidates",
    )
    slv.add_argument(
        "--no-refine",
        action="store_true",
        help="skip the simulation-guided refinement layer (static "
        "bounds only; may under-size reconvergent workloads)",
    )
    slv.add_argument(
        "--max-refine",
        type=int,
        default=64,
        metavar="N",
        help="refinement-round bound before giving up with S405",
    )
    slv.add_argument(
        "--check",
        action="store_true",
        help="round-trip the solution through `repro verify` and both "
        "engines before printing it",
    )
    slv.add_argument(
        "--format", choices=["text", "json"], default="text", help="output format"
    )
    slv.add_argument(
        "--out",
        metavar="PATH",
        help="also write the solution JSON to PATH",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return {
        "info": _cmd_info,
        "quickstart": _cmd_quickstart,
        "decode": _cmd_decode,
        "estimate": _cmd_estimate,
        "explore": _cmd_explore,
        "conformance": _cmd_conformance,
        "verify": _cmd_verify,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "solve": _cmd_solve,
    }[args.command](args)


# ---------------------------------------------------------------------------
def _fault_setup(args, params):
    """(FaultPlan or None, params with watchdog applied) from CLI args."""
    from repro import FaultPlan

    plan = None
    if getattr(args, "fault_plan", None):
        try:
            plan = FaultPlan.parse(args.fault_plan, seed=getattr(args, "fault_seed", None))
        except ValueError as e:
            print(f"error: invalid --fault-plan: {e}", file=sys.stderr)
            raise SystemExit(2)
        if not plan.any_faults():
            plan = None
    if getattr(args, "watchdog_timeout", None) is not None:
        try:
            params = params.with_(watchdog_timeout=args.watchdog_timeout)
        except ValueError as e:
            print(f"error: invalid --watchdog-timeout: {e}", file=sys.stderr)
            raise SystemExit(2)
    return plan, params


def _obs_setup(args):
    """Validated (obs_level, sample_interval) from CLI args; the
    level/interval compatibility error exits cleanly instead of
    surfacing SystemParams' ValueError traceback."""
    from repro.obs.level import ObservabilityLevel

    level = getattr(args, "obs_level", "full")
    interval = getattr(args, "sample_interval", None)
    if interval is not None:
        if interval < 1:
            print(f"error: --sample-interval must be >= 1, got {interval}",
                  file=sys.stderr)
            raise SystemExit(2)
        if not ObservabilityLevel.parse(level).series:
            print(f"error: --sample-interval needs time series, but "
                  f"--obs-level {level} disables them (use 'series' or "
                  "'full')", file=sys.stderr)
            raise SystemExit(2)
    return level, interval


def _runner_jobs(args) -> int:
    """Validated --jobs value (None = all cores)."""
    import os

    jobs = getattr(args, "jobs", None)
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        print(f"error: --jobs must be >= 1, got {jobs}", file=sys.stderr)
        raise SystemExit(2)
    return jobs


def _run_sweep(specs, args, jobs):
    """Run a spec list through the plain pool, or — when
    --checkpoint-dir / --resume is given — through the crash-tolerant
    :class:`repro.resilience.Supervisor`.  Either way the deterministic
    report payload is identical (docs/resilience.md)."""
    from repro.runner import ParallelRunner

    ckpt_dir = getattr(args, "checkpoint_dir", None)
    resume_dir = getattr(args, "resume", None)
    if ckpt_dir and resume_dir and ckpt_dir != resume_dir:
        print("error: --checkpoint-dir and --resume name different "
              "directories; pass just --resume to continue a sweep",
              file=sys.stderr)
        raise SystemExit(2)
    directory = resume_dir or ckpt_dir
    if directory is None:
        if getattr(args, "checkpoint_interval", None) is not None:
            print("error: --checkpoint-interval requires --checkpoint-dir "
                  "or --resume", file=sys.stderr)
            raise SystemExit(2)
        return ParallelRunner(jobs=jobs).run(specs)

    from repro.resilience import Supervisor, SupervisorError
    from repro.resilience.supervisor import DEFAULT_INTERVAL

    interval = args.checkpoint_interval or DEFAULT_INTERVAL
    try:
        supervisor = Supervisor(checkpoint_dir=directory, interval=interval,
                                jobs=jobs)
        report = supervisor.run(specs, resume=resume_dir is not None)
    except (SupervisorError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        raise SystemExit(2)
    for note in report.notes:
        print(f"note: {note}")
    return report


def _write_report(report, args) -> None:
    """Write the JSON run report if --report was given; unwritable
    paths exit cleanly instead of dumping a traceback."""
    path = getattr(args, "report", None)
    if not path:
        return
    try:
        report.write(path, include_timing=getattr(args, "report_timing", False))
    except OSError as e:
        print(f"error: cannot write --report {path!r}: {e}", file=sys.stderr)
        raise SystemExit(2)
    print(f"wrote {path}")


def _run_or_diagnose(system, **run_kw):
    """system.run(), but a stall/deadlock prints its diagnosis (which
    tasks are blocked on which access points) instead of a traceback.
    Returns None on deadlock."""
    from repro import StalledError

    try:
        return system.run(**run_kw)
    except StalledError as e:
        print(f"error: {e}", file=sys.stderr)
        return None


def _print_degradation(result) -> None:
    deg = getattr(result, "degradation", None)
    if not deg:
        return
    for tname, stats in deg["tasks"].items():
        kind = stats.get("kind")
        if kind == "video":
            print(
                f"degradation[{tname}]: "
                f"{stats['frames_decoded']}/{stats['frames_total']} frames decoded, "
                f"{stats['frames_concealed']} concealed "
                f"({stats['mbs_concealed']} MBs)"
                + (", header reconstructed" if stats.get("header_concealed") else "")
            )
        elif kind == "audio":
            print(
                f"degradation[{tname}]: "
                f"{stats['blocks_decoded']}/{stats['blocks_total']} audio blocks "
                f"decoded, {stats['blocks_silenced']} silenced"
            )
        elif kind == "transport":
            net = stats.get("net", {})
            print(
                f"degradation[{tname}]: {stats['packets_erased']} slots erased "
                f"(link dropped {net.get('packets_dropped', 0)}, "
                f"FEC recovered {net.get('fec_recovered', 0)}, "
                f"RTX recovered {net.get('rtx_recovered', 0)}, "
                f"{net.get('nacks_sent', 0)} NACKs)"
            )
    for d in deg.get("diagnoses", []):
        from repro.verify.diagnostics import rule

        r = rule(d["rule"])
        print(f"  {d['rule']} {r.severity} [{d['task']}]: {d['message']}")


def _print_robustness(result) -> None:
    rob = result.robustness
    if not rob:
        return
    inj = rob.get("injected", {})
    print(
        "faults injected: "
        f"{rob['messages_dropped']} dropped, "
        f"{inj.get('messages_duplicated', 0)} duplicated, "
        f"{inj.get('messages_delayed', 0)} delayed, "
        f"{inj.get('messages_reordered', 0)} reordered, "
        f"{inj.get('stalls_injected', 0)} stalls "
        f"({inj.get('stall_cycles', 0)} cycles), "
        f"{inj.get('corruptions_injected', 0)} corruptions"
    )
    print(
        "recovery: "
        f"{rob['watchdog_fires']} watchdog fires, "
        f"{rob['retries_sent']} retries, "
        f"{rob['recoveries']} recoveries, "
        f"{rob['corruptions_detected']} corruptions caught by parity"
    )


# ---------------------------------------------------------------------------
def _cmd_info(args) -> int:
    import repro
    from repro.instance.eclipse_mpeg import COPROCESSORS, DECODE_MAPPING, ENCODE_MAPPING

    print(f"repro {repro.__version__} — Eclipse (Rutten et al., IPPS 2002)")
    print(f"instance units: {', '.join(COPROCESSORS)}")
    print(f"decode mapping: {DECODE_MAPPING}")
    print(f"encode mapping: {ENCODE_MAPPING}")
    print("see README.md / DESIGN.md / EXPERIMENTS.md for the full story")
    return 0


def _cmd_quickstart(args) -> int:
    from repro import CoprocessorSpec, EclipseSystem, FunctionalExecutor, SystemParams
    from repro.workloads import quickstart_graph

    payload = bytes((11 * i) % 256 for i in range(4096))

    def graph():
        return quickstart_graph(payload)

    level, interval = _obs_setup(args)
    plan, params = _fault_setup(
        args, SystemParams(engine=args.engine, obs_level=level, sample_interval=interval)
    )
    if plan is not None:
        print(f"fault plan: {plan.describe()}")
    system = EclipseSystem([CoprocessorSpec("cp0"), CoprocessorSpec("cp1")], params, faults=plan)
    system.configure(graph())
    result = _run_or_diagnose(system)
    if result is None:
        return 1
    if system.obs.histories:
        golden = FunctionalExecutor(graph()).run()
        ok = result.histories["s_src_out"] == golden.histories["s_src_out"]
        print(f"cycle-level run: {result.cycles} cycles; history matches reference: {ok}")
    else:
        ok = True
        print(f"cycle-level run: {result.cycles} cycles; history comparison "
              f"skipped at obs_level={level} (histories need 'full')")
    if system.sampler is not None:
        util = system.sampler.utilization
        samples = max((len(s) for s in util.values()), default=0)
        print(f"sampler: {samples} sample(s) at interval={system.sampler.interval}")
    _print_robustness(result)
    return 0 if ok else 1


def _cmd_decode_lossy(args) -> int:
    """``decode --loss-plan``: the full A/V decode behind the seeded
    lossy network ingest, with per-frame degradation accounting."""
    from repro import CodecParams, build_mpeg_instance, synthetic_sequence
    from repro.media import encode_sequence
    from repro.media.audio import BLOCK_SAMPLES, adpcm_encode, synthetic_pcm
    from repro.media.av_pipeline import AV_DECODE_MAPPING, lossy_av_decode_graph
    from repro.media.transport import AUDIO_PID, VIDEO_PID, ts_mux
    from repro.net import ingest
    from repro.sim.faults import LossPlan
    from repro.trace.viewer import render_application_view, render_architecture_view

    try:
        plan = LossPlan.parse(args.loss_plan, seed=args.loss_seed)
    except ValueError as e:
        print(f"error: invalid --loss-plan: {e}", file=sys.stderr)
        raise SystemExit(2)
    params = CodecParams(
        width=args.width, height=args.height, gop_n=args.gop_n,
        gop_m=args.gop_m, half_pel=args.half_pel,
    )
    frames = synthetic_sequence(params.width, params.height, args.frames, noise=1.0)
    video_es, _golden, _stats = encode_sequence(frames, params)
    audio_es = adpcm_encode(synthetic_pcm(BLOCK_SAMPLES * max(2, args.frames)))
    ts = ts_mux({VIDEO_PID: video_es, AUDIO_PID: audio_es})
    print(f"encoded {args.frames} frames + audio -> {len(ts)} TS bytes")
    print(f"loss plan: {plan.describe()}")
    res = ingest(ts, plan)
    s = res.stats
    print(
        f"ingest: {s.data_packets} data + {s.parity_packets} parity + "
        f"{s.rtx_packets} rtx packets; dropped={s.packets_dropped} "
        f"fec_recovered={s.fec_recovered} rtx_recovered={s.rtx_recovered} "
        f"lost={s.slots_lost} ({s.ticks} ticks)"
    )
    from repro import SystemParams

    level, interval = _obs_setup(args)
    system = build_mpeg_instance(
        SystemParams(dram_latency=60, engine=args.engine, obs_level=level,
                     sample_interval=interval)
    )
    system.configure(
        lossy_av_decode_graph(res, params, args.frames, mapping=AV_DECODE_MAPPING)
    )
    result = _run_or_diagnose(system)
    if result is None:
        return 1
    print(f"decoded in {result.cycles} cycles")
    _print_degradation(result)
    print()
    print(render_architecture_view(result))
    print()
    print(render_application_view(result))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_decode(args) -> int:
    if getattr(args, "loss_plan", None):
        return _cmd_decode_lossy(args)
    from repro import (
        CodecParams,
        DECODE_MAPPING,
        build_mpeg_instance,
        decode_graph,
        encode_sequence,
        synthetic_sequence,
    )
    from repro.obs.level import ObservabilityLevel
    from repro.trace.analysis import bottleneck_by_frame_type, per_frame_type_service
    from repro.trace.viewer import render_application_view, render_architecture_view, render_fill_traces

    params = CodecParams(
        width=args.width,
        height=args.height,
        gop_n=args.gop_n,
        gop_m=args.gop_m,
        half_pel=args.half_pel,
    )
    frames = synthetic_sequence(params.width, params.height, args.frames, noise=1.0)
    bitstream, _golden, _stats = encode_sequence(frames, params)
    print(f"encoded {args.frames} frames -> {len(bitstream)} bytes")
    from repro import SystemParams

    level, interval = _obs_setup(args)
    # --sample-interval overrides the legacy --interval; either way the
    # sampler is attached through the engine registry (configure()), so
    # it works identically on the reference and fast engines
    sample_every = interval if interval is not None else args.interval
    if not ObservabilityLevel.parse(level).series:
        sample_every = None
    plan, sys_params = _fault_setup(
        args,
        SystemParams(dram_latency=60, engine=args.engine,
                     obs_level=level, sample_interval=sample_every),
    )
    if plan is not None:
        print(f"fault plan: {plan.describe()}")
    system = build_mpeg_instance(sys_params, faults=plan)
    system.configure(decode_graph(bitstream, mapping=DECODE_MAPPING))
    sampler = system.sampler
    result = _run_or_diagnose(system)
    if result is None:
        return 1
    print(f"decoded in {result.cycles} cycles")
    _print_robustness(result)
    print()
    print(render_architecture_view(result))
    print()
    print(render_application_view(result))
    if sampler is None:
        print(f"\nFigure 10 traces skipped at obs_level={level} "
              "(time series need 'series' or 'full')")
    else:
        plans = params.gop().coded_order(args.frames)
        marks = sampler.frame_boundaries("vld", params.mbs_per_frame)
        print("\nFigure 10 traces:")
        print(
            render_fill_traces(
                {k: sampler.stream_fill[k] for k in (("coef", "rlsq"), ("dequant", "idct"), ("resid", "mc"))},
                buffer_sizes={n: s.buffer_size for n, s in result.streams.items()},
                frame_marks=marks,
                frame_types=[p.frame_type.value for p in plans],
            )
        )
        service = per_frame_type_service(
            sampler, plans, params.mbs_per_frame, {"rlsq": "rlsq", "idct": "dct", "mc": "mcme"}
        )
        print(f"\nbottleneck per frame type: {bottleneck_by_frame_type(service)}")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_estimate(args) -> int:
    from repro import AreaPowerModel

    model = AreaPowerModel()
    est = model.estimate()
    print("Section 6 instance estimates (paper -> model):")
    print(f"  Gops/s (2x HD decode): ~36 -> {est.gops:.1f}")
    print(f"  area: <7 mm^2 -> {est.area_mm2:.2f} mm^2")
    for block, mm2 in sorted(est.area_breakdown.items()):
        print(f"    {block:>8}: {mm2:5.2f} mm^2")
    print(f"  power: <240 mW -> {est.power_mw:.1f} mW")
    checks = model.paper_claims_hold()
    print(f"  all paper bounds hold: {all(checks.values())}")
    return 0 if all(checks.values()) else 1


def _cmd_explore(args) -> int:
    from repro import CodecParams, encode_sequence, synthetic_sequence
    from repro.runner import RunSpec
    from repro.workloads import explore_decode_run

    jobs = _runner_jobs(args)
    params = CodecParams(width=48, height=32, gop_n=6, gop_m=3)
    frames = synthetic_sequence(params.width, params.height, args.frames)
    bitstream, _, _ = encode_sequence(frames, params)

    prefetch_levels = (0, 2, 8)
    buffer_levels = (1, 3, 8)
    level, interval = _obs_setup(args)
    base = {"bitstream": bitstream, "engine": args.engine,
            "obs_level": level, "sample_interval": interval}
    specs = [RunSpec(explore_decode_run, dict(base), label="baseline")]
    specs += [
        RunSpec(explore_decode_run, {**base, "prefetch_lines": pf},
                label=f"prefetch={pf}")
        for pf in prefetch_levels
    ]
    specs += [
        RunSpec(explore_decode_run, {**base, "buffer_packets": pkts},
                label=f"buffer_packets={pkts}")
        for pkts in buffer_levels
    ]
    report = _run_sweep(specs, args, jobs)
    for res in report.failures:
        print(f"error: {res.label} failed: {res.error}", file=sys.stderr)
    if report.failures:
        return 1

    by_label = {r.label: r for r in report.results}
    print(f"baseline decode: {by_label['baseline'].cycles} cycles")
    print("prefetch sweep:")
    for pf in prefetch_levels:
        print(f"  {pf} lines ahead: {by_label[f'prefetch={pf}'].cycles} cycles")
    print("buffer sweep:")
    for pkts in buffer_levels:
        print(f"  {pkts} packets/buffer: {by_label[f'buffer_packets={pkts}'].cycles} cycles")
    print(
        f"\n{len(specs)} runs on {report.jobs} jobs: {report.wall_time:.2f}s wall, "
        f"~{report.serial_time_estimate:.2f}s serial, {report.speedup:.2f}x"
    )
    _write_report(report, args)
    return 0


def _cmd_conformance_loss(args) -> int:
    """``conformance --loss-plan``: the lossy-ingest differential.  For
    every seed the conferencing workload is rebuilt (the ingest is a
    pure function of the seed), the functional Kahn executor produces
    the golden stream histories for *that* degraded graph, and the
    cycle-level engine run must reproduce them byte-for-byte."""
    from repro import FunctionalExecutor
    from repro.obs.level import ObservabilityLevel
    from repro.runner import RunSpec, _histories_digest
    from repro.sim.faults import LossPlan
    from repro.workloads import conferencing_run

    jobs = _runner_jobs(args)
    try:
        base = LossPlan.parse(args.loss_plan, seed=args.loss_seed)
    except ValueError as e:
        print(f"error: invalid --loss-plan: {e}", file=sys.stderr)
        raise SystemExit(2)
    seed_base = base.seed
    level, interval = _obs_setup(args)
    compare_histories = ObservabilityLevel.parse(level).histories
    if not compare_histories:
        print(f"note: obs_level={level} records no histories — checking "
              "completion only, not byte-identity against the Kahn oracle")

    def kwargs_for(seed):
        return {
            "loss_spec": args.loss_plan,
            "loss_seed": seed,
            "engine": args.engine,
            "obs_level": level,
            "sample_interval": interval,
        }

    golden = {}
    if compare_histories:
        for i in range(args.seeds):
            seed = seed_base + i
            _system, graph = conferencing_run(**kwargs_for(seed))
            golden[seed] = _histories_digest(
                FunctionalExecutor(graph).run().histories
            )
    specs = [
        RunSpec(
            factory=conferencing_run,
            kwargs=kwargs_for(seed_base + i),
            label=f"conferencing:seed={seed_base + i}",
        )
        for i in range(args.seeds)
    ]
    report = _run_sweep(specs, args, jobs)

    failures = 0
    for res in report.results:
        seed = seed_base + res.index
        ok = res.ok and res.completed and (
            not compare_histories or res.histories_sha256 == golden[seed]
        )
        failures += 0 if ok else 1
        if not res.ok:
            print(f"conferencing seed={seed:<4} FAIL  ({res.error})")
            continue
        deg = res.metrics.get("degradation") or {}
        vld = deg.get("tasks", {}).get("vld", {})
        net = deg.get("tasks", {}).get("demux", {}).get("net", {})
        print(
            f"conferencing seed={seed:<4} "
            f"{'PASS' if ok else 'FAIL'}  "
            f"cycles={res.cycles:<7} "
            f"dropped={net.get('packets_dropped', 0):<3} "
            f"fec={net.get('fec_recovered', 0):<3} "
            f"rtx={net.get('rtx_recovered', 0):<3} "
            f"concealed={vld.get('frames_concealed', 0)}/"
            f"{vld.get('frames_total', 0)}"
        )
    total = len(specs)
    verdict = ("byte-identical to the Kahn oracle" if compare_histories
               else "completed (histories not recorded)")
    print(f"\nloss conformance: {total - failures}/{total} runs {verdict}")
    print(
        f"{total} runs on {report.jobs} jobs: {report.wall_time:.2f}s wall, "
        f"~{report.serial_time_estimate:.2f}s serial, {report.speedup:.2f}x"
    )
    _write_report(report, args)
    return 0 if failures == 0 else 1


def _cmd_conformance(args) -> int:
    """Differential conformance: faulted cycle-level runs must reproduce
    the functional executor's stream histories byte-for-byte.  The seed
    sweep fans out over the repro.runner process pool (--jobs)."""
    if getattr(args, "loss_plan", None):
        return _cmd_conformance_loss(args)
    from repro import FaultPlan, FunctionalExecutor
    from repro.runner import RunSpec, _histories_digest
    from repro.workloads import GRAPH_BUILDERS, conformance_run, payload_of

    jobs = _runner_jobs(args)
    names = list(GRAPH_BUILDERS) if args.graph == "all" else [args.graph]
    spec_str = args.fault_plan or "chaos"
    try:  # validate the plan up front, once, with a clean message
        base_plan = FaultPlan.parse(spec_str)
    except ValueError as e:
        print(f"error: invalid --fault-plan: {e}", file=sys.stderr)
        raise SystemExit(2)
    watchdog = args.watchdog_timeout if args.watchdog_timeout is not None else 2000
    # an explicit --fault-seed (including 0) overrides the plan's
    # inline seed; absent means "sweep from the plan's own seed"
    seed_base = args.fault_seed if args.fault_seed is not None else base_plan.seed

    level, interval = _obs_setup(args)
    from repro.obs.level import ObservabilityLevel

    compare_histories = ObservabilityLevel.parse(level).histories
    if not compare_histories:
        print(f"note: obs_level={level} records no histories — checking "
              "completion only, not byte-identity against the Kahn oracle")
    golden = {
        gname: _histories_digest(
            FunctionalExecutor(GRAPH_BUILDERS[gname](payload_of(args.payload))).run().histories
        )
        for gname in names
    } if compare_histories else {}
    specs = [
        RunSpec(
            factory=conformance_run,
            kwargs={
                "graph": gname,
                "payload_len": args.payload,
                "fault_spec": spec_str,
                "fault_seed": seed_base + i,
                "watchdog_timeout": watchdog,
                "engine": args.engine,
                "obs_level": level,
                "sample_interval": interval,
            },
            label=f"{gname}:seed={seed_base + i}",
        )
        for gname in names
        for i in range(args.seeds)
    ]
    report = _run_sweep(specs, args, jobs)

    failures = 0
    for res in report.results:
        gname = res.label.split(":", 1)[0]
        seed = seed_base + res.index % args.seeds
        ok = res.ok and res.completed and (
            not compare_histories or res.histories_sha256 == golden[gname]
        )
        failures += 0 if ok else 1
        if not res.ok:
            print(f"{gname:>8} seed={seed:<4} FAIL  ({res.error})")
            continue
        rob = res.metrics.get("robustness") or {}
        print(
            f"{gname:>8} seed={seed:<4} "
            f"{'PASS' if ok else 'FAIL'}  "
            f"cycles={res.cycles:<7} "
            f"dropped={rob.get('messages_dropped', 0):<3} "
            f"retries={rob.get('retries_sent', 0):<4} "
            f"recoveries={rob.get('recoveries', 0)}"
        )
    total = len(specs)
    verdict = ("byte-identical to the Kahn oracle" if compare_histories
               else "completed (histories not recorded)")
    print(f"\nconformance: {total - failures}/{total} runs {verdict}")
    print(
        f"{total} runs on {report.jobs} jobs: {report.wall_time:.2f}s wall, "
        f"~{report.serial_time_estimate:.2f}s serial, {report.speedup:.2f}x"
    )
    _write_report(report, args)
    return 0 if failures == 0 else 1


def _cmd_trace(args) -> int:
    """Run a workload under the span tracer and export the timeline as
    Chrome-trace JSON (Perfetto-loadable).  --check lints the exported
    file (O301-O303); its exit code follows the Report contract."""
    from repro.workloads import decode_run, quickstart_run

    if args.capacity < 1:
        print(f"error: --capacity must be >= 1, got {args.capacity}", file=sys.stderr)
        raise SystemExit(2)
    factory = {"quickstart": quickstart_run, "decode": decode_run}[args.workload]
    system, graph = factory(engine=args.engine, obs_level=args.obs_level)
    system.configure(graph)
    tracer = system.attach_tracer(capacity=args.capacity)
    result = _run_or_diagnose(system)
    if result is None:
        return 1
    s = tracer.summary()
    print(
        f"{args.workload} on the {args.engine} engine: {result.cycles} cycles, "
        f"{s['events']} trace event(s) recorded "
        f"({s['dropped']} dropped, {s['open_spans']} left open)"
    )
    for cat, n in s["by_category"].items():
        print(f"  {cat:>10}: {n}")
    if args.ascii:
        from repro.trace.viewer import render_application_view, render_architecture_view

        print()
        print(render_architecture_view(result))
        print()
        print(render_application_view(result))
    try:
        tracer.write(args.out)
    except OSError as e:
        print(f"error: cannot write --out {args.out!r}: {e}", file=sys.stderr)
        raise SystemExit(2)
    print(f"wrote {args.out} — load it in https://ui.perfetto.dev or chrome://tracing")
    if args.check:
        from repro.verify import lint_trace_file

        report = lint_trace_file(args.out)
        for d in report:
            print(d.render())
        c = report.counts()
        print(f"trace check: {c['error']} error(s), {c['warning']} warning(s)")
        return report.exit_code
    return 0


def _cmd_serve(args) -> int:
    """Run the sweep service until a client sends ``shutdown`` (or
    Ctrl-C).  Socket mode accepts many concurrent clients; ``--stdio``
    serves exactly one on the process's own pipes."""
    import asyncio
    import os

    from repro.service import ResultStore, SweepService, serve_stdio, serve_unix

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        raise SystemExit(2)
    if args.checkpoint_interval is not None and args.checkpoint_interval < 1:
        print(f"error: --checkpoint-interval must be >= 1, got "
              f"{args.checkpoint_interval}", file=sys.stderr)
        raise SystemExit(2)

    async def _main() -> None:
        store = ResultStore(args.store)
        service = SweepService(
            store,
            jobs=args.jobs,
            checkpoint_interval=args.checkpoint_interval,
            use_process_pool=not args.threads,
        )
        async with service:
            if args.stdio:
                # stdout belongs to the protocol; the banner goes to stderr
                print(f"sweep service on stdio (store: {args.store}, "
                      f"jobs: {args.jobs})", file=sys.stderr, flush=True)
                await serve_stdio(service)
                return
            if os.path.exists(args.socket):
                os.remove(args.socket)  # stale socket from a previous run
            server = await serve_unix(service, args.socket)
            print(f"sweep service on {args.socket} (store: {args.store}, "
                  f"jobs: {args.jobs}"
                  + (f", checkpoint every {args.checkpoint_interval} cycles"
                     if args.checkpoint_interval else "")
                  + ")", flush=True)
            try:
                await service.shutdown_requested.wait()
            finally:
                server.close()
                await server.wait_closed()
                try:
                    os.remove(args.socket)
                except OSError:
                    pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("interrupted — cache and checkpoints are on disk, restart to "
              "continue serving", file=sys.stderr)
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    return 0


def _parse_submit_args(pairs):
    """``--arg key=value`` pairs into kwargs: values parse as JSON when
    they can (numbers, booleans, null, quoted strings, lists) and stay
    strings otherwise, so ``--arg payload_len=512 --arg graph=diamond``
    both do what they look like."""
    import json

    kwargs = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            print(f"error: --arg wants KEY=VALUE, got {pair!r}", file=sys.stderr)
            raise SystemExit(2)
        try:
            kwargs[key] = json.loads(value)
        except json.JSONDecodeError:
            kwargs[key] = value
    return kwargs


def _cmd_submit(args) -> int:
    """One-shot client: submit a run (or poke the server with --stats/
    --shutdown), verify the byte-identity contract on the response,
    print the outcome."""
    import asyncio

    from repro.service.client import ClientError, SweepClient, submit_once

    if args.stats or args.shutdown:
        async def _poke() -> int:
            async with SweepClient(args.socket) as client:
                if args.stats:
                    import json

                    print(json.dumps(await client.stats(), indent=2,
                                     sort_keys=True))
                if args.shutdown:
                    await client.shutdown()
                    print("server shutting down")
            return 0

        try:
            return asyncio.run(_poke())
        except (ClientError, ConnectionError, OSError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 1

    kwargs = _parse_submit_args(args.arg)
    if args.budget is not None and args.factory:
        print("error: --budget solves a named workload; it cannot be "
              "combined with --factory", file=sys.stderr)
        raise SystemExit(2)
    if args.budget is not None:
        # budget mode: the server derives the configuration itself
        from repro.verify.solve_run import SOLVE_MODELS

        name = args.workload or "conformance-pipeline"
        if name not in SOLVE_MODELS:
            print(f"error: unknown solve model {name!r} "
                  f"(want one of {sorted(SOLVE_MODELS)})", file=sys.stderr)
            raise SystemExit(2)
        factory = "repro.workloads:solved_run"
        kwargs = {"workload": name, "sram_size": args.budget, **kwargs}
    elif args.factory:
        factory = args.factory
    else:
        from repro.workloads import RUN_FACTORIES

        name = args.workload or "quickstart"
        if name not in RUN_FACTORIES:
            print(f"error: unknown workload {name!r} "
                  f"(want one of {sorted(RUN_FACTORIES)} or --factory)",
                  file=sys.stderr)
            raise SystemExit(2)
        factory = f"repro.workloads:{RUN_FACTORIES[name].__name__}"

    from repro.runner import RunSpec

    spec = RunSpec(factory=factory, kwargs=kwargs, label=args.label)
    on_event = None
    if args.stream:
        def on_event(ev: dict) -> None:
            print(f"  [{ev.get('event')}] {ev.get('key', '')[:12]}")

    try:
        res = submit_once(args.socket, spec, priority=args.priority,
                          stream=args.stream, on_event=on_event)
    except (ClientError, ConnectionError, OSError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    result = res.result
    print(f"{result.label or spec.describe()}: "
          f"{'ok' if res.ok else 'FAILED'} ({res.cache}) "
          f"cycles={result.cycles} key={res.key[:12]} "
          f"payload_sha256={res.payload_sha256[:12]}")
    if not res.ok and result.error:
        print(f"error: {result.error}", file=sys.stderr)
    if args.out:
        try:
            with open(args.out, "wb") as fh:
                fh.write(res.payload)
        except OSError as e:
            print(f"error: cannot write --out {args.out!r}: {e}",
                  file=sys.stderr)
            return 1
        print(f"wrote {args.out}")
    return 0 if res.ok else 1


def _cmd_verify(args) -> int:
    """Static analysis: exits 0 when clean (warnings/infos allowed),
    1 on any error-severity diagnostic, 2 on usage errors."""
    import json

    from repro.verify import RULES, run_corpus, verify_kernel_sources, verify_workload
    from repro.verify.run import WORKLOADS

    if args.list_rules:
        for rid in sorted(RULES):
            r = RULES[rid]
            print(f"{r.id}  {str(r.severity):>7}  {r.title:<26} {r.summary}")
        return 0

    if args.corpus:
        report, rows = run_corpus()
        if args.format == "json":
            print(json.dumps({"cases": rows, "counts": report.counts()},
                             indent=2, sort_keys=True))
        else:
            for row in rows:
                status = "PASS" if row["passed"] else "FAIL"
                print(f"{status}  {row['case']:<28} expected {','.join(row['expected'])}"
                      f" found {','.join(row['found']) or '-'}")
            n_ok = sum(1 for r in rows if r["passed"])
            print(f"\ncorpus: {n_ok}/{len(rows)} seeded violations flagged")
            for d in report:
                print(d.render())
        return report.exit_code

    names = sorted(WORKLOADS) if args.workload == "all" else [args.workload]
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        print(f"error: unknown workload {unknown[0]!r} "
              f"(want one of {sorted(WORKLOADS)} or 'all')", file=sys.stderr)
        return 2
    if args.max_steps < 1:
        print(f"error: --max-steps must be >= 1, got {args.max_steps}", file=sys.stderr)
        return 2

    reports = {}
    try:
        for name in names:
            reports[name] = verify_workload(name, max_steps=args.max_steps).ignoring(args.ignore)
        reports["kernel-sources"] = verify_kernel_sources().ignoring(args.ignore)
    except KeyError as e:  # a typo'd --ignore rule ID
        print(f"error: {e.args[0]}", file=sys.stderr)
        return 2

    exit_code = max(r.exit_code for r in reports.values())
    if args.format == "json":
        print(json.dumps({name: r.to_dict() for name, r in reports.items()},
                         indent=2, sort_keys=True))
        return exit_code
    for name, rep in reports.items():
        c = rep.counts()
        verdict = "FAIL" if rep.has_errors else "ok"
        print(f"== {name}: {verdict} ({c['error']} error(s), "
              f"{c['warning']} warning(s), {c['info']} info(s))")
        for d in rep:
            print(f"   {d.render()}")
        if args.verbose:
            for n in rep.notes:
                print(f"   note: {n}")
    total = sum(len(r) for r in reports.values())
    print(f"\nverify: {len(names)} workload(s) + kernel sources, "
          f"{total} diagnostic(s), exit {exit_code}")
    return exit_code


def _cmd_solve(args) -> int:
    """The inverse of ``verify``: derive a configuration from a budget.

    Exits 0 with the solution, 1 with the structured S-rule diagnosis
    when no configuration exists, 2 on usage errors.  Never a
    traceback: an infeasible budget is an *answer* ("no solution
    because <binding constraint>"), not a crash.
    """
    import json

    from repro.verify.solve import SolveError
    from repro.verify.solve_run import SOLVE_MODELS, check_solution, solve_workload

    if args.workload not in SOLVE_MODELS:
        print(f"error: unknown workload {args.workload!r} "
              f"(want one of {sorted(SOLVE_MODELS)})", file=sys.stderr)
        return 2
    if args.sram is not None and args.sram < 1:
        print(f"error: --sram must be >= 1, got {args.sram}", file=sys.stderr)
        return 2
    if args.elasticity < 1:
        print(f"error: --elasticity must be >= 1, got {args.elasticity}",
              file=sys.stderr)
        return 2
    if args.max_refine < 1:
        print(f"error: --max-refine must be >= 1, got {args.max_refine}",
              file=sys.stderr)
        return 2

    try:
        solution = solve_workload(
            args.workload,
            sram_size=args.sram,
            elasticity=args.elasticity,
            refine=not args.no_refine,
            max_refine=args.max_refine,
            grain=args.grain,
        )
    except SolveError as e:
        if args.format == "json":
            print(json.dumps({"solved": False,
                              "report": e.report.to_dict()},
                             indent=2, sort_keys=True))
        else:
            print(f"no solution for {args.workload!r}:")
            for d in e.report:
                print(f"   {d.render()}")
        return 1

    checked = None
    if args.check:
        from repro.verify.solve_run import simulate_solution

        report = check_solution(args.workload, solution)
        if report.diagnostics:
            print(f"error: solver/linter disagreement — the derived "
                  f"configuration produced findings:", file=sys.stderr)
            for d in report:
                print(f"   {d.render()}", file=sys.stderr)
            return 1
        ref = simulate_solution(args.workload, solution, "reference")
        fast = simulate_solution(args.workload, solution, "fast")
        if ref != fast:
            print("error: derived configuration is not byte-identical "
                  "across engines", file=sys.stderr)
            return 1
        checked = {"verify": "clean", "engines": "byte-identical",
                   "cycles": ref["cycles"]}

    if args.format == "json":
        payload = solution.to_dict()
        payload["solved"] = True
        if checked:
            payload["checked"] = checked
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"== {args.workload}: solved")
        print(solution.render())
        if checked:
            print(f"check: verify clean, engines byte-identical "
                  f"({checked['cycles']} cycles)")
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(solution.to_json() + "\n")
        except OSError as e:
            print(f"error: cannot write --out {args.out!r}: {e}",
                  file=sys.stderr)
            return 1
        if args.format != "json":
            print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
