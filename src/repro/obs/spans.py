"""System-independent span recording for the service layers.

:class:`repro.obs.tracer.SpanTracer` instruments a *configured
simulation*: it wraps coprocessor and bus methods, and its timestamps
are simulated cycles.  The layers above the simulator — the parallel
runner, the resilience supervisor, and the sweep service — also want
structured timelines (queue-wait windows, execution spans, cache
events), but they have no system to wrap and their natural clock is
the wall clock.  :class:`SpanRecorder` is the tracer's free-standing
sibling: the same :class:`~repro.obs.tracer.SpanEvent` records, the
same bounded ring buffer, the same Chrome-trace/Perfetto export — but
driven explicitly by the caller, with an injectable clock.

Because these spans carry wall-clock timestamps they are observability
only: they must never leak into a cached result payload or any other
byte-compared artifact (the same rule the runner's ``include_timing``
switch enforces for its report).

Thread model: the caller names its threads (``recorder.thread("queue")``,
``recorder.thread("worker-0")``); tids are handed out in first-use
order with tid 0 reserved for "system", and the metadata events in the
export carry the names, so Perfetto shows labelled lanes.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, List, Optional

from repro.obs.tracer import SpanEvent

__all__ = ["SpanRecorder"]


class SpanRecorder:
    """Bounded-memory span/instant recorder with Chrome-trace export.

    ``clock`` returns integer microseconds; the default is monotonic
    wall time since the recorder was created.  Tests inject a
    deterministic clock to make exports comparable.
    """

    def __init__(
        self,
        capacity: int = 100_000,
        clock: Optional[Callable[[], int]] = None,
        process_name: str = "repro.service",
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.process_name = process_name
        if clock is None:
            t0 = time.monotonic()
            clock = lambda: int((time.monotonic() - t0) * 1_000_000)  # noqa: E731
        self._clock = clock
        self.events: Deque[SpanEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.total = 0
        self.open_spans: List[SpanEvent] = []
        self.tids: Dict[str, int] = {"system": 0}

    # ------------------------------------------------------------------
    def now(self) -> int:
        return self._clock()

    def thread(self, name: str) -> int:
        """The tid for ``name``, allocating one on first use."""
        tid = self.tids.get(name)
        if tid is None:
            tid = len(self.tids)
            self.tids[name] = tid
        return tid

    # ------------------------------------------------------------------
    def _record(self, event: SpanEvent) -> None:
        self.total += 1
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    def instant(self, name: str, cat: str, thread: str = "system", **args) -> None:
        self._record(
            SpanEvent(name, cat, "i", self.now(), self.thread(thread), args=args)
        )

    def begin(self, name: str, cat: str, thread: str = "system", **args) -> SpanEvent:
        span = SpanEvent(name, cat, "B", self.now(), self.thread(thread), args=args)
        self.open_spans.append(span)
        return span

    def end(self, span: SpanEvent, **args) -> None:
        self.open_spans.remove(span)
        span.ph = "X"
        span.dur = max(0, self.now() - span.ts)
        span.args.update(args)
        self._record(span)

    def complete(self, name: str, cat: str, thread: str, ts: int, dur: int, **args) -> None:
        """Record a span whose window the caller already measured
        (e.g. queue wait: enqueue timestamp to dequeue timestamp)."""
        self._record(
            SpanEvent(name, cat, "X", ts, self.thread(thread),
                      dur=max(0, dur), args=args)
        )

    @contextmanager
    def span(self, name: str, cat: str, thread: str = "system", **args):
        s = self.begin(name, cat, thread, **args)
        try:
            yield s
        finally:
            self.end(s)

    # ------------------------------------------------------------------
    # export (same shape as SpanTracer: summary + Chrome trace JSON)
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        by_cat: Dict[str, int] = {}
        for ev in self.events:
            by_cat[ev.cat] = by_cat.get(ev.cat, 0) + 1
        return {
            "events": len(self.events),
            "total": self.total,
            "dropped": self.dropped,
            "open_spans": len(self.open_spans),
            "by_category": dict(sorted(by_cat.items())),
        }

    def to_chrome_trace(self) -> dict:
        pid = 1
        events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": self.process_name},
            }
        ]
        for tname, tid in sorted(self.tids.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": tname},
                }
            )
        events.extend(ev.to_chrome(pid) for ev in self.events)
        events.extend(ev.to_chrome(pid) for ev in self.open_spans)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "process": self.process_name,
                "dropped": self.dropped,
                "total": self.total,
            },
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def __len__(self) -> int:
        return len(self.events)
