"""Span-based structured tracing with Chrome-trace/Perfetto export.

The §7 simulator was the design tool the Eclipse team used to *look
at* runs; :mod:`repro.trace` reproduces its counter views (Figures
9-10) and op listing.  :class:`SpanTracer` adds the third modern view:
a structured timeline of *spans* — task processing steps, shell
synchronization primitives, bus occupancy windows — plus *instant
events* for cache misses, checkpoints and injected faults, exported in
the Chrome trace-event JSON format that ``ui.perfetto.dev`` (or
``chrome://tracing``) loads directly.

Like :class:`repro.trace.oplog.OpLog`, the tracer attaches to a
*configured* system and wraps methods per instance: pure observation,
zero simulated cost, bounded memory (a ring buffer that drops the
oldest events and counts the drops).  At ``obs_level="full"`` the
recorded event stream is byte-identical across engines — the same
contract the histories obey — which CI checks by diffing exported
traces from the reference and fast engines.

Span/thread model (deterministic, so exports byte-compare):

* one trace *thread* per coprocessor (sorted names → tids 1..N), where
  its step spans and shell-primitive spans nest;
* one thread per data bus (``read_bus``/``write_bus``) carrying
  occupancy spans from grant to release — never overlapping, because
  the bus is exclusive;
* thread 0 ("system") for instant events that belong to no
  coprocessor: checkpoints (``export_state``) and fault injections.

Timestamps are simulation cycles written into the microsecond field
(``ts``), so 1 cycle renders as 1 µs — Perfetto's timeline is then a
cycle-accurate ruler.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import EclipseSystem

__all__ = ["SpanEvent", "SpanTracer", "CHROME_TRACE_SCHEMA"]

#: The subset of the Chrome trace-event format the exporter emits and
#: the ``repro verify`` trace lint checks.  ``ph`` phases: "X" complete
#: span (has ``dur``), "i" instant, "B" span opened but never closed
#: (surfaced for the O301 lint), "M" metadata (process/thread names).
CHROME_TRACE_SCHEMA = {
    "container_key": "traceEvents",
    "phases": ("X", "i", "B", "M"),
    "required": {
        "X": ("name", "cat", "ph", "ts", "dur", "pid", "tid"),
        "i": ("name", "cat", "ph", "ts", "pid", "tid", "s"),
        "B": ("name", "cat", "ph", "ts", "pid", "tid"),
        "M": ("name", "ph", "pid", "args"),
    },
}


@dataclass
class SpanEvent:
    """One recorded trace event (a span or an instant)."""

    name: str
    cat: str
    ph: str  # "X" complete span, "i" instant, "B" unclosed open
    ts: int  # start, in simulation cycles
    tid: int
    dur: Optional[int] = None  # spans only
    args: Dict[str, object] = field(default_factory=dict)

    def to_chrome(self, pid: int = 1) -> dict:
        ev = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "pid": pid,
            "tid": self.tid,
        }
        if self.ph == "X":
            ev["dur"] = self.dur if self.dur is not None else 0
        if self.ph == "i":
            ev["s"] = "t"  # thread-scoped instant
        if self.args:
            ev["args"] = dict(sorted(self.args.items()))
        return ev


class SpanTracer:
    """Bounded-memory structured tracer for one configured system."""

    def __init__(self, system: "EclipseSystem", capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not system.coprocessors:
            raise RuntimeError(
                "attach the SpanTracer after EclipseSystem.configure() — "
                "it wraps the running coprocessors, which do not exist yet"
            )
        if not system.obs.spans:
            raise RuntimeError(
                f"span tracing is disabled at obs_level={system.obs!s} — "
                "build the system with obs_level='series' or 'full' "
                "(SystemParams.obs_level, or --obs-level on the CLI)"
            )
        self.system = system
        self.capacity = capacity
        self.events: Deque[SpanEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.total = 0
        #: spans begun but not yet (or never) ended, newest last
        self.open_spans: List[SpanEvent] = []
        # deterministic thread ids: coprocessors first (sorted), then
        # the two data buses, with tid 0 reserved for system instants
        self.tids: Dict[str, int] = {"system": 0}
        for i, cname in enumerate(sorted(system.coprocessors), start=1):
            self.tids[cname] = i
        self.tids["read_bus"] = len(self.tids)
        self.tids["write_bus"] = len(self.tids)
        self._install()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _record(self, event: SpanEvent) -> None:
        self.total += 1
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    def _instant(self, name: str, cat: str, tid: int, **args) -> None:
        self._record(SpanEvent(name, cat, "i", self.system.sim.now, tid, args=args))

    def _begin(self, name: str, cat: str, tid: int, **args) -> SpanEvent:
        span = SpanEvent(name, cat, "B", self.system.sim.now, tid, args=args)
        self.open_spans.append(span)
        return span

    def _end(self, span: SpanEvent, **args) -> None:
        self.open_spans.remove(span)
        span.ph = "X"
        span.dur = self.system.sim.now - span.ts
        span.args.update(args)
        self._record(span)

    # ------------------------------------------------------------------
    # instrumentation (per-instance wrappers, OpLog-style)
    # ------------------------------------------------------------------
    def _install(self) -> None:
        system = self.system
        for cname, coproc in system.coprocessors.items():
            self._wrap_coprocessor(cname, coproc)
        for bus_name in ("read_bus", "write_bus"):
            self._wrap_bus(bus_name, getattr(system, bus_name))
        self._wrap_system(system)

    def _wrap_coprocessor(self, cname: str, coproc) -> None:
        tid = self.tids[cname]
        original_step = coproc._run_step

        def run_step(row, _orig=original_step):
            span = self._begin(f"step:{row.name}", "step", tid, task=row.name)
            outcome = yield from _orig(row)
            self._end(span, outcome=outcome.value)
            return outcome

        coproc._run_step = run_step  # type: ignore[method-assign]

        shell = coproc.shell
        for prim, label in (("get_space", "GetSpace"), ("put_space", "PutSpace")):
            original_prim = getattr(shell, prim)

            def wrapped(task, port, n, _orig=original_prim, _label=label):
                span = self._begin(_label, "shell", tid, port=port, bytes=n)
                result = yield from _orig(task, port, n)
                extra = {}
                if _label == "GetSpace":
                    extra["granted"] = bool(result)
                    if getattr(result, "eos", False):
                        extra["eos"] = True
                self._end(span, task=task.name, **extra)
                return result

            setattr(shell, prim, wrapped)

        original_fetch = shell._fetch_line

        def fetch_line(line_addr, prefetch, _orig=original_fetch):
            self._instant(
                "prefetch" if prefetch else "cache_miss",
                "cache",
                tid,
                line=line_addr,
                shell=cname,
            )
            yield from _orig(line_addr, prefetch)

        shell._fetch_line = fetch_line  # type: ignore[method-assign]

    def _wrap_bus(self, bus_name: str, bus) -> None:
        tid = self.tids[bus_name]
        original = bus.transfer

        def transfer(n_bytes, master="", priority=0, _orig=original):
            result = yield from _orig(n_bytes, master=master, priority=priority)
            # reconstruct the grant->release occupancy window: the bus
            # is exclusive, so these spans never overlap on their tid
            dur = bus.occupancy_cycles(n_bytes)
            now = self.system.sim.now
            self._record(
                SpanEvent(
                    f"xfer:{master or 'anon'}",
                    "bus",
                    "X",
                    now - dur,
                    tid,
                    dur=dur,
                    args={"bytes": n_bytes, "master": master, "priority": priority},
                )
            )
            return result

        bus.transfer = transfer  # type: ignore[method-assign]

    def _wrap_system(self, system) -> None:
        tid = self.tids["system"]
        original_export = system.export_state

        def export_state(_orig=original_export):
            state = _orig()
            self._instant("checkpoint", "resilience", tid, cycle=state["now"])
            return state

        system.export_state = export_state  # type: ignore[method-assign]

        original_stall = system.fault_coproc_stall

        def fault_coproc_stall(name, _orig=original_stall):
            stall = _orig(name)
            if stall:
                self._instant("fault:coproc_stall", "fault", tid,
                              coprocessor=name, cycles=stall)
            return stall

        system.fault_coproc_stall = fault_coproc_stall  # type: ignore[method-assign]

        original_corrupt = system.fault_corrupt_line

        def fault_corrupt_line(data, _orig=original_corrupt):
            corrupted = _orig(data)
            if corrupted is not None:
                self._instant("fault:corrupt_line", "fault", tid, bytes=len(data))
            return corrupted

        system.fault_corrupt_line = fault_corrupt_line  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Deterministic counts: per-category events, drops, opens."""
        by_cat: Dict[str, int] = {}
        for ev in self.events:
            by_cat[ev.cat] = by_cat.get(ev.cat, 0) + 1
        return {
            "events": len(self.events),
            "total": self.total,
            "dropped": self.dropped,
            "open_spans": len(self.open_spans),
            "by_category": dict(sorted(by_cat.items())),
        }

    def to_chrome_trace(self) -> dict:
        """The full trace as a Chrome trace-event JSON object.

        Open (never-closed) spans are exported as "B" events so they
        are visible in Perfetto *and* flaggable by the O301 lint.
        """
        pid = 1
        events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": f"eclipse:{self.system.engine}"},
            }
        ]
        for tname, tid in sorted(self.tids.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": tname},
                }
            )
        events.extend(ev.to_chrome(pid) for ev in self.events)
        events.extend(ev.to_chrome(pid) for ev in self.open_spans)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "engine": self.system.engine,
                "obs_level": str(self.system.obs),
                "cycles": self.system.sim.now,
                "dropped": self.dropped,
                "total": self.total,
            },
        }

    def write(self, path: str) -> None:
        """Write the Chrome-trace JSON to ``path`` (canonical form:
        sorted keys, 1-space separators — byte-stable across runs)."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def __len__(self) -> int:
        return len(self.events)
