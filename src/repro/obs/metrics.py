"""Typed metrics with stable names and a canonical JSON form.

The sweep/service layers (``repro.runner``, the resilience
``Supervisor``, and eventually the sweep-as-a-service from ROADMAP
item 2) need a progress/health feed that is *deterministic* wherever
the existing byte-compare CI checks look: a ``RunReport`` must stay
byte-identical across ``--jobs`` counts and supervised-vs-plain runs.
So this registry is strict about two things:

* **Stable names.**  A metric's identity is its dotted name
  (``runs.crashed``, ``run.wall_time``); :meth:`MetricsRegistry.to_dict`
  emits them sorted, so the canonical JSON never depends on
  registration order.
* **No wall-clock inside.**  Nothing here reads a clock.  Values are
  recorded by the caller; timing-derived metrics belong behind the
  same ``include_timing`` switch the runner already has.

Three instrument types, mirroring the usual OpenMetrics trio:

:class:`Counter`   monotone event count (``inc``).
:class:`Gauge`     last-written value (``set``), e.g. a queue depth.
:class:`Histogram` full distribution summary (``observe``) — count,
                   sum, min, max, mean — without storing samples, so a
                   million-run sweep costs O(1) memory per metric.

The module has zero repro imports so every layer can use it freely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing event count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that goes up and down; reads back the last ``set``."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """A distribution summary: count/sum/min/max/mean, O(1) memory.

    ``round_to`` rounds the exported sum/min/max/mean (used for
    wall-time metrics so the canonical JSON does not carry 17
    significant digits of noise).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", round_to: Optional[int] = None) -> None:
        self.name = name
        self.help = help
        self.round_to = round_to
        self.count: int = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def _round(self, value: Optional[float]) -> Optional[float]:
        if value is None or self.round_to is None:
            return value
        return round(value, self.round_to)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self._round(self.sum) or 0.0 if self.count else 0.0,
            "min": self._round(self.min),
            "max": self._round(self.max),
            "mean": self._round(self.mean),
        }


class MetricsRegistry:
    """A named set of instruments with a canonical, sorted dict form.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call defines the instrument, later calls return the same object
    (and reject a kind change — a name means one thing, forever).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get_or_create(self, cls, name: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"not {cls.kind}"
                )
            return existing
        metric = cls(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help)

    def histogram(self, name: str, help: str = "",
                  round_to: Optional[int] = None) -> Histogram:
        return self._get_or_create(Histogram, name, help=help, round_to=round_to)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def to_dict(self) -> dict:
        """Canonical form: ``{name: {kind, ...values}}``, names sorted."""
        return {name: self._metrics[name].to_dict() for name in self.names()}
