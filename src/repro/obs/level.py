"""The tiered observability contract: how much a run records.

The paper's measurement support (§5.4) is hardware counters read over
the control bus plus a periodic sampling process — always on, because
it is cheap silicon.  The reproduction's equivalents (byte histories
for golden-equivalence, time-weighted fill statistics, samplers, op
logs, span tracers) are *software* and dominate the hot path long
before the event loop does.  :class:`ObservabilityLevel` makes that
trade explicit and machine-checkable:

``off``
    Structural counters only (cycles, steps, utilization, cache/bus
    totals — plain integer increments the model needs anyway).  No
    byte histories, no fill statistics, no sampler, no op log, no span
    tracer.  The fastest a run can go.
``counters``
    ``off`` plus the §5.4 time-weighted statistics (stream fill
    mean/max), so :func:`repro.trace.counters.collect_counters` and
    the Figure 9 views are fully populated.  Still no per-commit byte
    recording and no periodic processes.
``series``
    ``counters`` plus periodic processes and structured tracing: the
    :class:`repro.trace.sampler.Sampler` records its bounded time
    series and the :class:`repro.obs.tracer.SpanTracer` may attach.
    Byte histories stay off.
``full``
    Everything — including the per-stream byte histories that back the
    golden traces, the conformance differential and the equivalence
    harness.  **The byte-identity contract lives here**: a run at
    ``full`` is bit-for-bit today's behaviour, on either engine.

The level is carried in :class:`repro.core.config.SystemParams` (field
``obs_level``) and therefore in every canonical RunSpec serialization
and sweep digest: two runs at different levels are different runs, by
construction, and can never be confused in a result cache.

Levels are totally ordered (``OFF < COUNTERS < SERIES < FULL``); the
capability properties (:attr:`fill_stats`, :attr:`series`,
:attr:`spans`, :attr:`histories`, :attr:`oplog`) are what the engine
and the observers actually consult — new call sites should test a
capability, not compare enum members.

This module is deliberately dependency-free so that
:mod:`repro.core.config` can import it without cycles.
"""

from __future__ import annotations

import enum
from typing import Union

__all__ = ["ObservabilityLevel", "LEVELS", "resolve_level"]

#: Every name ``SystemParams.obs_level`` accepts, in increasing order
#: of cost and detail.
LEVELS = ("off", "counters", "series", "full")


class ObservabilityLevel(enum.IntEnum):
    """One tier of the observability contract (ordered, comparable)."""

    OFF = 0
    COUNTERS = 1
    SERIES = 2
    FULL = 3

    def __str__(self) -> str:  # "full", not "ObservabilityLevel.FULL"
        return self.name.lower()

    # -- parsing --------------------------------------------------------
    @classmethod
    def parse(cls, value: Union[str, "ObservabilityLevel"]) -> "ObservabilityLevel":
        """A level from its canonical name (or an existing level)."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str) and value.lower() in LEVELS:
            return cls[value.upper()]
        raise ValueError(
            f"unknown observability level {value!r} "
            f"(known levels: {', '.join(LEVELS)})"
        )

    # -- capabilities (what the engines and observers consult) ---------
    @property
    def fill_stats(self) -> bool:
        """Record time-weighted stream-fill statistics (§5.4)."""
        return self >= ObservabilityLevel.COUNTERS

    @property
    def series(self) -> bool:
        """Allow the periodic Sampler process to schedule itself."""
        return self >= ObservabilityLevel.SERIES

    @property
    def spans(self) -> bool:
        """Allow the span tracer to record structured trace events."""
        return self >= ObservabilityLevel.SERIES

    @property
    def histories(self) -> bool:
        """Accumulate per-stream byte histories (the golden-equivalence
        evidence; the single most expensive observation)."""
        return self >= ObservabilityLevel.FULL

    @property
    def oplog(self) -> bool:
        """Allow the OpLog to wrap the primitives and record ops."""
        return self >= ObservabilityLevel.FULL


def resolve_level(name: Union[str, ObservabilityLevel]) -> str:
    """Validate a level name, returning its canonical string form.

    Every layer that accepts a level (``SystemParams``, the CLI
    ``--obs-level`` flag, the workload factories) funnels through here,
    so a typo fails with the same clean message everywhere.
    """
    return str(ObservabilityLevel.parse(name))
