"""repro.obs — the tiered observability contract.

Three pieces, one contract:

* :mod:`repro.obs.level` — how much a run records
  (``off``/``counters``/``series``/``full``), carried in
  :class:`repro.core.config.SystemParams` and consulted by both
  engines; ``full`` is byte-identical to the pre-contract behaviour.
* :mod:`repro.obs.tracer` — span-based structured tracing with
  Chrome-trace/Perfetto export (``repro trace`` on the CLI).
* :mod:`repro.obs.metrics` — typed counters/gauges/histograms with
  stable names, aggregated by the runner and the resilience
  supervisor into canonical JSON metrics blocks.
* :mod:`repro.obs.spans` — the tracer's free-standing sibling for the
  layers above the simulator (runner/supervisor/sweep service):
  caller-driven spans on an injectable clock, same export format.

See ``docs/observability.md`` for the full contract.
"""

from repro.obs.level import LEVELS, ObservabilityLevel, resolve_level
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.obs.tracer import CHROME_TRACE_SCHEMA, SpanEvent, SpanTracer

__all__ = [
    "ObservabilityLevel",
    "LEVELS",
    "resolve_level",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanEvent",
    "SpanRecorder",
    "SpanTracer",
    "CHROME_TRACE_SCHEMA",
]
