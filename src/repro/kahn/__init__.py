"""Kahn Process Network substrate (substrate S2).

The Eclipse model of computation (paper Section 2.1): applications are
sets of concurrent tasks exchanging data solely through unidirectional
FIFO streams.  Kahn (1974) proved the observable stream history of such
a network is independent of execution order — this package provides

* the application-graph model (:mod:`repro.kahn.graph`),
* the task-kernel protocol (:mod:`repro.kahn.kernel`) — Eclipse's
  task-level interface (GetSpace/Read/Write/PutSpace, paper Section 3.2)
  expressed as generator ops so the *same kernel code* runs on both the
  reference executor and the cycle-level Eclipse system,
* unbounded FIFO channels (:mod:`repro.kahn.fifo`),
* a reference functional executor (:mod:`repro.kahn.executor`) — the
  obviously-correct golden implementation every cycle-level run is
  checked against byte-for-byte,
* determinism-checking utilities (:mod:`repro.kahn.determinism`).
"""

from repro.kahn.fifo import EndOfStream, FifoChannel
from repro.kahn.graph import (
    ApplicationGraph,
    Direction,
    GraphError,
    PortRef,
    PortSpec,
    StreamEdge,
    TaskNode,
)
from repro.kahn.kernel import (
    ComputeOp,
    GetSpaceOp,
    Kernel,
    KernelContext,
    PutSpaceOp,
    ReadOp,
    SpaceDenied,
    StepOutcome,
    WriteOp,
)
from repro.kahn.executor import DeadlockError, ExecutionResult, FunctionalExecutor
from repro.kahn.determinism import check_determinism, stream_histories

__all__ = [
    "ApplicationGraph",
    "ComputeOp",
    "DeadlockError",
    "Direction",
    "EndOfStream",
    "ExecutionResult",
    "FifoChannel",
    "FunctionalExecutor",
    "GetSpaceOp",
    "GraphError",
    "Kernel",
    "KernelContext",
    "PortRef",
    "PortSpec",
    "PutSpaceOp",
    "ReadOp",
    "SpaceDenied",
    "StepOutcome",
    "StreamEdge",
    "TaskNode",
    "WriteOp",
    "check_determinism",
    "stream_histories",
]
