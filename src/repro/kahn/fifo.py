"""Unbounded FIFO byte channels for the reference executor.

A :class:`FifoChannel` carries a byte stream from one writer to one or
more readers.  Each reader has an independent position (paper §3:
"one producer and one or more consumers").  Data is retained until the
slowest reader has consumed it, then compacted away.

This is the *functional* channel: unbounded, zero-time.  Bounded cyclic
buffers with access windows — the hardware variant — live in
:mod:`repro.core.buffer`.
"""

from __future__ import annotations

from typing import List

__all__ = ["FifoChannel", "EndOfStream"]

#: Compact the backing store when the dead prefix exceeds this.
_COMPACT_THRESHOLD = 1 << 16


class EndOfStream(Exception):
    """Raised on reading past end of a closed stream."""


class FifoChannel:
    """Unbounded multi-reader FIFO of bytes.

    Writer API: :meth:`append`, :meth:`close`.
    Reader API (per reader index): :meth:`available`, :meth:`peek`,
    :meth:`advance`.

    Reads are split into non-destructive :meth:`peek` (the Read
    primitive — random access within available data) and
    :meth:`advance` (the PutSpace commit), mirroring Eclipse's
    transport/synchronization separation.
    """

    def __init__(self, name: str = "", n_readers: int = 1):
        if n_readers < 1:
            raise ValueError("need at least one reader")
        self.name = name
        self._data = bytearray()
        #: absolute stream offset of _data[0]
        self._base = 0
        #: absolute read positions, one per reader
        self._read_pos: List[int] = [0] * n_readers
        self._closed = False
        #: total bytes ever written (absolute write position)
        self.total_written = 0

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    def append(self, data: bytes) -> None:
        if self._closed:
            raise EndOfStream(f"write to closed stream {self.name!r}")
        self._data.extend(data)
        self.total_written += len(data)

    def close(self) -> None:
        """Mark end of stream; further appends are errors."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    def available(self, reader: int = 0) -> int:
        """Bytes readable by *reader* right now."""
        return self.total_written - self._read_pos[reader]

    def at_eos(self, reader: int = 0) -> bool:
        """True when closed and *reader* has consumed everything."""
        return self._closed and self.available(reader) == 0

    def peek(self, offset: int, n_bytes: int, reader: int = 0) -> bytes:
        """Non-destructive read of ``n_bytes`` at ``offset`` past the
        reader position.  The window must be available."""
        pos = self._read_pos[reader] + offset
        end = pos + n_bytes
        if end > self.total_written:
            raise EndOfStream(
                f"stream {self.name!r}: read past write position "
                f"(want [{pos}:{end}), written {self.total_written})"
            )
        lo = pos - self._base
        return bytes(self._data[lo : lo + n_bytes])

    def advance(self, n_bytes: int, reader: int = 0) -> None:
        """Commit ``n_bytes`` as consumed by *reader* (PutSpace)."""
        if n_bytes > self.available(reader):
            raise EndOfStream(
                f"stream {self.name!r}: advance {n_bytes} past available "
                f"{self.available(reader)}"
            )
        self._read_pos[reader] += n_bytes
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        dead = min(self._read_pos) - self._base
        if dead >= _COMPACT_THRESHOLD:
            del self._data[:dead]
            self._base += dead

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def history_length(self) -> int:
        """Total bytes ever pushed through (stream history size)."""
        return self.total_written

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"<FifoChannel {self.name!r} {state} written={self.total_written} "
            f"readers_at={self._read_pos}>"
        )
