"""Application graphs: tasks, ports, and streams (paper Figures 2-3).

An :class:`ApplicationGraph` is the Kahn network the user configures at
run time: task nodes with named, directed ports; stream edges with
exactly one producer port and one or more consumer ports.  The graph is
pure structure plus mapping hints (buffer size, which coprocessor runs
which task) — execution semantics live in the executors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

__all__ = [
    "Direction",
    "PortSpec",
    "PortRef",
    "TaskNode",
    "StreamEdge",
    "ApplicationGraph",
    "GraphError",
]


class GraphError(ValueError):
    """Raised for structurally invalid application graphs."""


class Direction(enum.Enum):
    """Port direction, from the task's point of view."""

    IN = "in"
    OUT = "out"


@dataclass(frozen=True)
class PortSpec:
    """Declared port of a task kernel.

    ``granularity`` is the port's natural synchronization grain in
    bytes (e.g. one macroblock packet); the default buffer sizing
    heuristics use it.
    """

    name: str
    direction: Direction
    granularity: int = 1

    def __post_init__(self) -> None:
        if self.granularity < 1:
            raise GraphError(f"port {self.name!r}: granularity must be >= 1")


@dataclass(frozen=True)
class PortRef:
    """A (task, port) endpoint of a stream."""

    task: str
    port: str

    def __str__(self) -> str:
        return f"{self.task}.{self.port}"


@dataclass
class TaskNode:
    """A Kahn task: a kernel factory plus port declarations.

    ``kernel_factory`` is a zero-argument callable returning a fresh
    :class:`repro.kahn.kernel.Kernel`; each executor instantiates its
    own kernel so task state is never shared between runs.
    ``task_info`` is the parameter word passed through GetTask (paper
    Section 3.2), e.g. forward-vs-inverse selection for a DCT task.
    ``mapping`` optionally names the coprocessor this task runs on.
    ``budget`` is the scheduler budget in cycles (paper Section 5.3).
    """

    name: str
    kernel_factory: Callable[[], Any]
    ports: Tuple[PortSpec, ...] = ()
    task_info: int = 0
    mapping: Optional[str] = None
    budget: int = 2000

    def __post_init__(self) -> None:
        seen = set()
        for p in self.ports:
            if p.name in seen:
                raise GraphError(f"task {self.name!r}: duplicate port {p.name!r}")
            seen.add(p.name)
        if self.budget < 1:
            raise GraphError(f"task {self.name!r}: budget must be >= 1")

    def port(self, name: str) -> PortSpec:
        for p in self.ports:
            if p.name == name:
                return p
        raise GraphError(f"task {self.name!r} has no port {name!r}")

    def input_ports(self) -> List[PortSpec]:
        return [p for p in self.ports if p.direction is Direction.IN]

    def output_ports(self) -> List[PortSpec]:
        return [p for p in self.ports if p.direction is Direction.OUT]


@dataclass
class StreamEdge:
    """A stream: one producer port, one or more consumer ports.

    ``buffer_size`` is the FIFO capacity in bytes when the graph is
    mapped onto an Eclipse instance (ignored by the unbounded reference
    executor).  ``name`` identifies the stream in traces and tables.
    """

    name: str
    producer: PortRef
    consumers: Tuple[PortRef, ...]
    buffer_size: int = 4096

    def __post_init__(self) -> None:
        if not self.consumers:
            raise GraphError(f"stream {self.name!r}: needs at least one consumer")
        if self.buffer_size < 1:
            raise GraphError(f"stream {self.name!r}: buffer_size must be >= 1")

    @property
    def is_multicast(self) -> bool:
        return len(self.consumers) > 1


class ApplicationGraph:
    """A validated Kahn application graph.

    Build with :meth:`add_task` and :meth:`connect`, then
    :meth:`validate` (also called by executors).  The structural rules
    (paper Section 3): every stream has exactly one producing output
    port; every port is bound to exactly one stream; directions match.
    """

    def __init__(self, name: str = "app"):
        self.name = name
        self.tasks: Dict[str, TaskNode] = {}
        self.streams: Dict[str, StreamEdge] = {}
        #: declared number of weakly-connected components; the graph
        #: linter (G009) flags any graph with more islands than this,
        #: so deliberate ∥ composition raises it instead of ignoring
        #: the rule wholesale
        self.expected_components: int = 1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: TaskNode) -> TaskNode:
        if task.name in self.tasks:
            raise GraphError(f"duplicate task {task.name!r}")
        self.tasks[task.name] = task
        return task

    def connect(
        self,
        producer: str | PortRef,
        *consumers: str | PortRef,
        name: Optional[str] = None,
        buffer_size: int = 4096,
    ) -> StreamEdge:
        """Connect ``"task.port"`` endpoints with a new stream."""
        prod = self._parse_ref(producer)
        cons = tuple(self._parse_ref(c) for c in consumers)
        stream_name = name or f"s_{prod.task}_{prod.port}"
        if stream_name in self.streams:
            raise GraphError(f"duplicate stream {stream_name!r}")
        edge = StreamEdge(stream_name, prod, cons, buffer_size=buffer_size)
        self.streams[stream_name] = edge
        return edge

    @staticmethod
    def _parse_ref(ref: str | PortRef) -> PortRef:
        if isinstance(ref, PortRef):
            return ref
        task, sep, port = ref.partition(".")
        if not sep or not task or not port:
            raise GraphError(f"bad port reference {ref!r}; expected 'task.port'")
        return PortRef(task, port)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        bound: Dict[Tuple[str, str], str] = {}
        for edge in self.streams.values():
            self._check_endpoint(edge, edge.producer, Direction.OUT, bound)
            for c in edge.consumers:
                self._check_endpoint(edge, c, Direction.IN, bound)
        # every port must be connected
        for task in self.tasks.values():
            for p in task.ports:
                if (task.name, p.name) not in bound:
                    raise GraphError(f"port {task.name}.{p.name} is not connected")

    def _check_endpoint(
        self,
        edge: StreamEdge,
        ref: PortRef,
        expected: Direction,
        bound: Dict[Tuple[str, str], str],
    ) -> None:
        if ref.task not in self.tasks:
            raise GraphError(f"stream {edge.name!r}: unknown task {ref.task!r}")
        spec = self.tasks[ref.task].port(ref.port)
        if spec.direction is not expected:
            raise GraphError(
                f"stream {edge.name!r}: port {ref} is {spec.direction.value}, "
                f"expected {expected.value}"
            )
        key = (ref.task, ref.port)
        if key in bound:
            raise GraphError(f"port {ref} bound to both {bound[key]!r} and {edge.name!r}")
        bound[key] = edge.name

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stream_of(self, ref: str | PortRef) -> StreamEdge:
        """The stream bound to a port endpoint."""
        r = self._parse_ref(ref)
        for edge in self.streams.values():
            if edge.producer == r or r in edge.consumers:
                return edge
        raise GraphError(f"port {r} is not connected")

    def input_streams(self, task: str) -> List[StreamEdge]:
        return [e for e in self.streams.values() if any(c.task == task for c in e.consumers)]

    def output_streams(self, task: str) -> List[StreamEdge]:
        return [e for e in self.streams.values() if e.producer.task == task]

    def source_tasks(self) -> List[str]:
        """Tasks with no input ports (pure producers)."""
        return [t.name for t in self.tasks.values() if not t.input_ports()]

    def sink_tasks(self) -> List[str]:
        """Tasks with no output ports (pure consumers)."""
        return [t.name for t in self.tasks.values() if not t.output_ports()]

    def to_networkx(self) -> nx.MultiDiGraph:
        """Structure as a networkx graph (node per task, edge per
        producer→consumer pair, keyed by stream name)."""
        g = nx.MultiDiGraph(name=self.name)
        for t in self.tasks.values():
            g.add_node(t.name, mapping=t.mapping, budget=t.budget)
        for e in self.streams.values():
            for c in e.consumers:
                g.add_edge(e.producer.task, c.task, key=e.name, stream=e.name)
        return g

    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self.to_networkx())

    def merge(self, other: "ApplicationGraph", prefix: str = "") -> "ApplicationGraph":
        """Union of two graphs (e.g. encode ∥ decode for time-shift).

        Task and stream names from ``other`` get ``prefix`` prepended;
        returns ``self`` for chaining.
        """
        for t in other.tasks.values():
            self.add_task(
                TaskNode(
                    name=prefix + t.name,
                    kernel_factory=t.kernel_factory,
                    ports=t.ports,
                    task_info=t.task_info,
                    mapping=t.mapping,
                    budget=t.budget,
                )
            )
        for e in other.streams.values():
            name = prefix + e.name
            if name in self.streams:
                raise GraphError(f"duplicate stream {name!r} while merging")
            self.streams[name] = StreamEdge(
                name,
                PortRef(prefix + e.producer.task, e.producer.port),
                tuple(PortRef(prefix + c.task, c.port) for c in e.consumers),
                buffer_size=e.buffer_size,
            )
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ApplicationGraph {self.name!r}: {len(self.tasks)} tasks, {len(self.streams)} streams>"
