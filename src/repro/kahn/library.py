"""Reusable generic task kernels.

Small building-block kernels in the spirit of paper §2.1 ("once a set
of basic functions has been defined as tasks, a multitude of
applications can be configured").  They are used by the test suite, the
quickstart example, and the baseline benchmarks; the media kernels live
in :mod:`repro.media.tasks`.

All kernels here follow the paper's coprocessor patterns:

* test space for the whole step up front, abort (deny-and-redo) if the
  shell cannot grant it;
* read, compute, write inside the granted windows;
* commit with PutSpace only when the step is sure to complete.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.kahn.graph import Direction, PortSpec
from repro.kahn.kernel import Kernel, KernelContext, StepOutcome

__all__ = [
    "ProducerKernel",
    "ConsumerKernel",
    "MapKernel",
    "ForkKernel",
    "RoundRobinMergeKernel",
    "ConditionalConsumerKernel",
    "HeaderPayloadProducerKernel",
    "HeaderPayloadRelayKernel",
    "RouterKernel",
    "GatherKernel",
]


class ProducerKernel(Kernel):
    """Emit a fixed payload in ``chunk`` byte pieces, then finish."""

    def __init__(self, payload: bytes, chunk: int = 64, compute_cycles: int = 10):
        super().__init__()
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.payload = bytes(payload)
        self.chunk = chunk
        self.compute_cycles = compute_cycles
        self._pos = 0

    PORTS = (PortSpec("out", Direction.OUT),)

    def step(self, ctx: KernelContext):
        if self._pos >= len(self.payload):
            return StepOutcome.FINISHED
        piece = self.payload[self._pos : self._pos + self.chunk]
        space = yield ctx.get_space("out", len(piece))
        if not space:
            return StepOutcome.ABORTED
        yield ctx.compute(self.compute_cycles)
        yield ctx.write("out", 0, piece)
        yield ctx.put_space("out", len(piece))
        self._pos += len(piece)
        return StepOutcome.COMPLETED


class ConsumerKernel(Kernel):
    """Sink: consume ``chunk`` bytes per step into :attr:`collected`."""

    def __init__(self, chunk: int = 64, compute_cycles: int = 5):
        super().__init__()
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.chunk = chunk
        self.compute_cycles = compute_cycles
        self.collected = bytearray()

    PORTS = (PortSpec("in", Direction.IN),)
    STATE_FIELDS = ("chunk", "compute_cycles", "collected")

    def step(self, ctx: KernelContext):
        space = yield ctx.get_space("in", self.chunk)
        if not space:
            if space.eos:
                n = space.available
                if n:  # drain the final partial chunk (granted window first)
                    yield ctx.get_space("in", n)
                    data = yield ctx.read("in", 0, n)
                    yield ctx.put_space("in", n)
                    self.collected.extend(data)
                return StepOutcome.FINISHED
            return StepOutcome.ABORTED
        data = yield ctx.read("in", 0, self.chunk)
        yield ctx.compute(self.compute_cycles)
        yield ctx.put_space("in", self.chunk)
        self.collected.extend(data)
        return StepOutcome.COMPLETED


class MapKernel(Kernel):
    """Apply ``fn`` to each ``chunk``-byte block: classic filter task."""

    def __init__(
        self,
        fn: Callable[[bytes], bytes],
        chunk: int = 64,
        compute_cycles: int = 20,
    ):
        super().__init__()
        self.fn = fn
        self.chunk = chunk
        self.compute_cycles = compute_cycles

    PORTS = (PortSpec("in", Direction.IN), PortSpec("out", Direction.OUT))

    def step(self, ctx: KernelContext):
        space_in = yield ctx.get_space("in", self.chunk)
        if not space_in:
            if space_in.eos:
                n = space_in.available
                if n:
                    yield ctx.get_space("in", n)
                    data = yield ctx.read("in", 0, n)
                    out = self.fn(data)
                    sp = yield ctx.get_space("out", len(out))
                    if not sp:
                        return StepOutcome.ABORTED
                    yield ctx.write("out", 0, out)
                    yield ctx.put_space("out", len(out))
                    yield ctx.put_space("in", n)
                return StepOutcome.FINISHED
            return StepOutcome.ABORTED
        out_est = self.chunk  # fn is length-preserving for fixed chunks
        space_out = yield ctx.get_space("out", out_est)
        if not space_out:
            return StepOutcome.ABORTED
        data = yield ctx.read("in", 0, self.chunk)
        yield ctx.compute(self.compute_cycles)
        out = self.fn(data)
        yield ctx.write("out", 0, out)
        # Commit input only once the full step is guaranteed (paper §4.2)
        yield ctx.put_space("in", self.chunk)
        yield ctx.put_space("out", len(out))
        return StepOutcome.COMPLETED


class ForkKernel(Kernel):
    """Duplicate the input onto two outputs, packet by packet."""

    def __init__(self, chunk: int = 64, compute_cycles: int = 5):
        super().__init__()
        self.chunk = chunk
        self.compute_cycles = compute_cycles

    PORTS = (
        PortSpec("in", Direction.IN),
        PortSpec("out_a", Direction.OUT),
        PortSpec("out_b", Direction.OUT),
    )

    def step(self, ctx: KernelContext):
        space = yield ctx.get_space("in", self.chunk)
        if not space:
            if space.eos:
                n = space.available
                if n:
                    # reserve BOTH outputs before committing either —
                    # a partial commit would duplicate data on redo
                    for port in ("out_a", "out_b"):
                        sp = yield ctx.get_space(port, n)
                        if not sp:
                            return StepOutcome.ABORTED
                    yield ctx.get_space("in", n)
                    data = yield ctx.read("in", 0, n)
                    for port in ("out_a", "out_b"):
                        yield ctx.write(port, 0, data)
                        yield ctx.put_space(port, n)
                    yield ctx.put_space("in", n)
                return StepOutcome.FINISHED
            return StepOutcome.ABORTED
        for port in ("out_a", "out_b"):
            sp = yield ctx.get_space(port, self.chunk)
            if not sp:
                return StepOutcome.ABORTED
        data = yield ctx.read("in", 0, self.chunk)
        yield ctx.compute(self.compute_cycles)
        for port in ("out_a", "out_b"):
            yield ctx.write(port, 0, data)
        yield ctx.put_space("in", self.chunk)
        yield ctx.put_space("out_a", self.chunk)
        yield ctx.put_space("out_b", self.chunk)
        return StepOutcome.COMPLETED


class RoundRobinMergeKernel(Kernel):
    """Deterministically interleave two inputs, ``chunk`` bytes each.

    Strict alternation keeps the merge a Kahn process (a data-driven
    merge would be non-deterministic and outside the model).
    """

    def __init__(self, chunk: int = 64, compute_cycles: int = 5):
        super().__init__()
        self.chunk = chunk
        self.compute_cycles = compute_cycles
        self._turn = 0
        self._done = [False, False]

    PORTS = (
        PortSpec("in_a", Direction.IN),
        PortSpec("in_b", Direction.IN),
        PortSpec("out", Direction.OUT),
    )
    STATE_FIELDS = ("chunk", "compute_cycles", "_turn", "_done")

    def step(self, ctx: KernelContext):
        if all(self._done):
            return StepOutcome.FINISHED
        port = ("in_a", "in_b")[self._turn]
        if self._done[self._turn]:
            self._turn ^= 1
            return StepOutcome.COMPLETED
        space = yield ctx.get_space(port, self.chunk)
        if not space:
            if space.eos:
                n = space.available
                if n:
                    sp = yield ctx.get_space("out", n)
                    if not sp:
                        return StepOutcome.ABORTED
                    yield ctx.get_space(port, n)
                    data = yield ctx.read(port, 0, n)
                    yield ctx.write("out", 0, data)
                    yield ctx.put_space(port, n)
                    yield ctx.put_space("out", n)
                self._done[self._turn] = True
                self._turn ^= 1
                return StepOutcome.COMPLETED
            return StepOutcome.ABORTED
        sp = yield ctx.get_space("out", self.chunk)
        if not sp:
            return StepOutcome.ABORTED
        data = yield ctx.read(port, 0, self.chunk)
        yield ctx.compute(self.compute_cycles)
        yield ctx.write("out", 0, data)
        yield ctx.put_space(port, self.chunk)
        yield ctx.put_space("out", self.chunk)
        self._turn ^= 1
        return StepOutcome.COMPLETED


class ConditionalConsumerKernel(Kernel):
    """The paper's §4.2 conditional-input pattern, verbatim.

    Reads a control byte from ``in``; when odd, must additionally read
    ``extra`` bytes from ``in2`` before committing.  Exercises the
    second exit point / redo-from-single-entry discipline: the input
    commit is postponed until the conditional GetSpace has been granted.
    """

    def __init__(self, extra: int = 4):
        super().__init__()
        self.extra = extra
        self.collected: List[bytes] = []
        self.redo_count = 0

    PORTS = (PortSpec("in", Direction.IN), PortSpec("in2", Direction.IN))
    STATE_FIELDS = ("extra", "collected", "redo_count")

    def step(self, ctx: KernelContext):
        space = yield ctx.get_space("in", 1)
        if not space:
            return StepOutcome.FINISHED if space.eos else StepOutcome.ABORTED
        flag = yield ctx.read("in", 0, 1)
        record = flag
        if flag[0] % 2 == 1:  # conditional second input
            sp2 = yield ctx.get_space("in2", self.extra)
            if not sp2:
                if sp2.eos:
                    return StepOutcome.FINISHED
                self.redo_count += 1
                return StepOutcome.ABORTED  # redo the whole step later
            extra = yield ctx.read("in2", 0, self.extra)
            yield ctx.put_space("in2", self.extra)
            record = flag + extra
        yield ctx.put_space("in", 1)
        self.collected.append(bytes(record))
        return StepOutcome.COMPLETED


class HeaderPayloadProducerKernel(Kernel):
    """Emit variable-length packets: 2-byte big-endian length + payload.

    Variable packet sizes are one of the irregular-I/O cases the shell
    interface is designed for (paper §3.2).
    """

    def __init__(self, payloads: List[bytes], compute_cycles: int = 10):
        super().__init__()
        self.payloads = [bytes(p) for p in payloads]
        self.compute_cycles = compute_cycles
        self._idx = 0

    PORTS = (PortSpec("out", Direction.OUT),)
    STATE_FIELDS = ("payloads", "compute_cycles", "_idx")

    def step(self, ctx: KernelContext):
        if self._idx >= len(self.payloads):
            return StepOutcome.FINISHED
        payload = self.payloads[self._idx]
        if len(payload) > 0xFFFF:
            raise ValueError("payload too large for 2-byte header")
        packet = len(payload).to_bytes(2, "big") + payload
        space = yield ctx.get_space("out", len(packet))
        if not space:
            return StepOutcome.ABORTED
        yield ctx.compute(self.compute_cycles)
        yield ctx.write("out", 0, packet)
        yield ctx.put_space("out", len(packet))
        self._idx += 1
        return StepOutcome.COMPLETED


class HeaderPayloadRelayKernel(Kernel):
    """Relay variable-length packets: two-phase GetSpace (header, then
    header+payload) — the canonical data-dependent-I/O kernel."""

    def __init__(self, compute_cycles_per_byte: int = 1):
        super().__init__()
        self.compute_cycles_per_byte = compute_cycles_per_byte
        self.packets_relayed = 0

    PORTS = (PortSpec("in", Direction.IN), PortSpec("out", Direction.OUT))

    def step(self, ctx: KernelContext):
        sp_hdr = yield ctx.get_space("in", 2)
        if not sp_hdr:
            return StepOutcome.FINISHED if sp_hdr.eos else StepOutcome.ABORTED
        header = yield ctx.read("in", 0, 2)
        length = int.from_bytes(header, "big")
        # data-dependent second inquiry: the full packet
        sp_all = yield ctx.get_space("in", 2 + length)
        if not sp_all:
            return StepOutcome.FINISHED if sp_all.eos else StepOutcome.ABORTED
        sp_out = yield ctx.get_space("out", 2 + length)
        if not sp_out:
            return StepOutcome.ABORTED
        payload = yield ctx.read("in", 2, length)
        yield ctx.compute(self.compute_cycles_per_byte * max(1, length))
        yield ctx.write("out", 0, header + payload)
        yield ctx.put_space("in", 2 + length)
        yield ctx.put_space("out", 2 + length)
        self.packets_relayed += 1
        return StepOutcome.COMPLETED


class RouterKernel(Kernel):
    """Tag-routed 1:2 splitter: generic demultiplexer building block.

    Packets are length-prefixed (2-byte big-endian) with a 1-byte tag;
    tag 0 routes to ``out_a``, anything else to ``out_b``.  The
    data-dependent *output* side of the variable-packet pattern (the
    relay kernel exercises the input side)."""

    def __init__(self, compute_cycles: int = 10):
        super().__init__()
        self.compute_cycles = compute_cycles
        self.routed = [0, 0]

    PORTS = (
        PortSpec("in", Direction.IN),
        PortSpec("out_a", Direction.OUT),
        PortSpec("out_b", Direction.OUT),
    )
    STATE_FIELDS = ("compute_cycles", "routed")

    def step(self, ctx: KernelContext):
        sp = yield ctx.get_space("in", 3)
        if not sp:
            return StepOutcome.FINISHED if sp.eos else StepOutcome.ABORTED
        header = yield ctx.read("in", 0, 3)
        length = int.from_bytes(header[:2], "big")
        tag = header[2]
        total = 3 + length
        sp = yield ctx.get_space("in", total)
        if not sp:
            return StepOutcome.FINISHED if sp.eos else StepOutcome.ABORTED
        port = "out_a" if tag == 0 else "out_b"
        sp_out = yield ctx.get_space(port, total)
        if not sp_out:
            return StepOutcome.ABORTED
        payload = yield ctx.read("in", 3, length)
        yield ctx.compute(self.compute_cycles)
        yield ctx.write(port, 0, header + payload)
        yield ctx.put_space(port, total)
        yield ctx.put_space("in", total)
        self.routed[0 if tag == 0 else 1] += 1
        return StepOutcome.COMPLETED


class GatherKernel(Kernel):
    """Tag-ordered 2:1 joiner: the deterministic inverse of
    :class:`RouterKernel`.

    Reads a schedule stream of tags (one byte per packet, as emitted by
    the original source) and pulls the next packet from the matching
    input — a Kahn-legal merge because the order comes from data, not
    from arrival timing."""

    def __init__(self, compute_cycles: int = 10):
        super().__init__()
        self.compute_cycles = compute_cycles

    PORTS = (
        PortSpec("sched", Direction.IN),
        PortSpec("in_a", Direction.IN),
        PortSpec("in_b", Direction.IN),
        PortSpec("out", Direction.OUT),
    )

    def step(self, ctx: KernelContext):
        sp = yield ctx.get_space("sched", 1)
        if not sp:
            return StepOutcome.FINISHED if sp.eos else StepOutcome.ABORTED
        tag = (yield ctx.read("sched", 0, 1))[0]
        port = "in_a" if tag == 0 else "in_b"
        sp = yield ctx.get_space(port, 3)
        if not sp:
            return StepOutcome.ABORTED
        header = yield ctx.read(port, 0, 3)
        length = int.from_bytes(header[:2], "big")
        total = 3 + length
        sp = yield ctx.get_space(port, total)
        if not sp:
            return StepOutcome.ABORTED
        sp_out = yield ctx.get_space("out", total)
        if not sp_out:
            return StepOutcome.ABORTED
        payload = yield ctx.read(port, 3, length)
        yield ctx.compute(self.compute_cycles)
        yield ctx.write("out", 0, header + payload)
        yield ctx.put_space("out", total)
        yield ctx.put_space(port, total)
        yield ctx.put_space("sched", 1)
        return StepOutcome.COMPLETED
