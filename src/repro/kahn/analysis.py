"""Static dataflow analysis: SDF balance equations on Kahn graphs.

Regular tasks (constant tokens per firing — §2.2's video filters) form
a synchronous-dataflow subclass of the Kahn model, where consistency
and relative firing rates are decidable at configuration time.  The
*repetition vector* q solves the balance equations

    q[producer] * produced_per_firing == q[consumer] * consumed_per_firing

for every stream; the application architect uses it to check that a
graph is rate-consistent (an inconsistent graph needs unbounded
buffering or starves) and to derive buffer sizes and throughput
budgets before any simulation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Mapping, Tuple

from repro.kahn.graph import ApplicationGraph, GraphError

__all__ = ["repetition_vector", "RateInconsistencyError", "stream_rates_per_iteration"]


class RateInconsistencyError(ValueError):
    """The balance equations have no non-trivial solution — the graph
    is not a consistent SDF graph at the declared rates."""


def repetition_vector(
    graph: ApplicationGraph,
    rates: Mapping[Tuple[str, str], int],
) -> Dict[str, int]:
    """Solve the SDF balance equations.

    ``rates`` maps (task, port) -> tokens (bytes) per firing, for every
    connected port.  Returns the minimal positive integer repetition
    vector.  Raises :class:`RateInconsistencyError` on inconsistent
    cycles/reconvergences and :class:`GraphError` on missing rates.
    """
    graph.validate()
    for name, edge in graph.streams.items():
        endpoints = [(edge.producer.task, edge.producer.port)] + [
            (c.task, c.port) for c in edge.consumers
        ]
        for key in endpoints:
            if key not in rates:
                raise GraphError(f"missing rate for port {key[0]}.{key[1]}")
            if rates[key] < 1:
                raise GraphError(f"rate for {key[0]}.{key[1]} must be >= 1")

    # propagate relative rates over the undirected constraint graph
    ratio: Dict[str, Fraction] = {}
    for start in graph.tasks:
        if start in ratio:
            continue
        ratio[start] = Fraction(1)
        stack = [start]
        while stack:
            task = stack.pop()
            for edge in graph.streams.values():
                pairs = []
                prod = (edge.producer.task, edge.producer.port)
                for cons in edge.consumers:
                    pairs.append((prod, (cons.task, cons.port)))
                for (pt, pp), (ct, cp) in pairs:
                    if task not in (pt, ct):
                        continue
                    # q[pt] * rate_p == q[ct] * rate_c
                    rate_p, rate_c = Fraction(rates[(pt, pp)]), Fraction(rates[(ct, cp)])
                    if pt in ratio and ct in ratio:
                        if ratio[pt] * rate_p != ratio[ct] * rate_c:
                            raise RateInconsistencyError(
                                f"stream {edge.name!r}: {pt} x {rate_p} != {ct} x {rate_c} "
                                f"given q[{pt}]={ratio[pt]}, q[{ct}]={ratio[ct]}"
                            )
                    elif pt in ratio:
                        ratio[ct] = ratio[pt] * rate_p / rate_c
                        stack.append(ct)
                    elif ct in ratio:
                        ratio[pt] = ratio[ct] * rate_c / rate_p
                        stack.append(pt)

    # scale to the minimal positive integer vector (per connected set,
    # jointly: use the lcm of all denominators, then divide by the gcd)
    from math import gcd, lcm

    denom = lcm(*[f.denominator for f in ratio.values()])
    ints = {t: int(f * denom) for t, f in ratio.items()}
    g = gcd(*ints.values())
    return {t: v // g for t, v in ints.items()}


def stream_rates_per_iteration(
    graph: ApplicationGraph,
    rates: Mapping[Tuple[str, str], int],
) -> Dict[str, int]:
    """Bytes crossing each stream per graph iteration (one execution of
    the repetition vector) — the throughput-budgeting number."""
    q = repetition_vector(graph, rates)
    out = {}
    for name, edge in graph.streams.items():
        prod = (edge.producer.task, edge.producer.port)
        out[name] = q[edge.producer.task] * rates[prod]
    return out
