"""Reference functional executor for Kahn application graphs.

This is the *obviously correct* implementation of the model of
computation: unbounded FIFO channels, zero-time ops, blocking reads.
Kahn's theorem says the stream histories it produces are THE histories
— any correct mapped execution (in particular the cycle-level Eclipse
system of :mod:`repro.core`) must reproduce them byte-for-byte.  The
integration suite uses exactly that comparison.

Design notes
------------
* GetSpace on an output port is always granted (unbounded buffer).
* GetSpace on an input port *blocks* the task until enough data exists;
  it returns ungranted only at end-of-stream.  Blocking here instead of
  returning False is Kahn-equivalent to Eclipse's deny-and-redo: the
  kernel re-reads the same uncommitted data either way.
* Writes are staged in a per-port window and appended to the channel
  when PutSpace commits — exactly the visibility rule of the hardware
  (the granted window is private until committed, paper §5.2).
* The ready queue is FIFO by default; a seed makes it random — running
  the same graph under many seeds and comparing histories is the
  determinism check of :mod:`repro.kahn.determinism`.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.kahn.fifo import FifoChannel
from repro.kahn.graph import ApplicationGraph, Direction, GraphError, PortRef
from repro.kahn.kernel import (
    ComputeOp,
    ExternalAccessOp,
    GetSpaceOp,
    Kernel,
    KernelContext,
    PutSpaceOp,
    ReadOp,
    Space,
    StepOutcome,
    WriteOp,
)

__all__ = ["FunctionalExecutor", "ExecutionResult", "DeadlockError"]


class DeadlockError(RuntimeError):
    """All live tasks are blocked on input — the graph deadlocked."""


@dataclass
class TaskStats:
    """Per-task execution statistics."""

    steps_completed: int = 0
    steps_aborted: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    compute_cycles: int = 0


@dataclass
class ExecutionResult:
    """Outcome of a functional run.

    ``histories`` maps stream name → the complete byte history that
    traversed the stream (Kahn's observable behaviour).
    """

    histories: Dict[str, bytes]
    task_stats: Dict[str, TaskStats]
    total_steps: int

    def history(self, stream: str) -> bytes:
        return self.histories[stream]


class _OutPort:
    """Producer-side endpoint: staged window + the channel."""

    def __init__(self, channel: FifoChannel, record: Optional[bytearray]):
        self.channel = channel
        self.pending = bytearray()
        self.record = record

    def write(self, offset: int, data: bytes) -> None:
        end = offset + len(data)
        if end > len(self.pending):
            self.pending.extend(b"\x00" * (end - len(self.pending)))
        self.pending[offset:end] = data

    def commit(self, n_bytes: int) -> None:
        if n_bytes > len(self.pending):
            # committing bytes never written: hardware would expose
            # garbage; we expose deterministic zeros.
            self.pending.extend(b"\x00" * (n_bytes - len(self.pending)))
        chunk = bytes(self.pending[:n_bytes])
        del self.pending[:n_bytes]
        self.channel.append(chunk)
        if self.record is not None:
            self.record.extend(chunk)


class _InPort:
    """Consumer-side endpoint: channel + this consumer's reader index."""

    def __init__(self, channel: FifoChannel, reader: int):
        self.channel = channel
        self.reader = reader

    def available(self) -> int:
        return self.channel.available(self.reader)


class _Task:
    """Runtime state of one task."""

    def __init__(self, name: str, kernel: Kernel, ctx: KernelContext):
        self.name = name
        self.kernel = kernel
        self.ctx = ctx
        self.inputs: Dict[str, _InPort] = {}
        self.outputs: Dict[str, _OutPort] = {}
        self.alive = True
        self.step_gen: Optional[Generator] = None
        #: set while blocked: (port_name, n_bytes) of the pending GetSpace
        self.blocked_on: Optional[Tuple[str, int]] = None
        self.stats = TaskStats()


class FunctionalExecutor:
    """Run an :class:`ApplicationGraph` to completion, functionally.

    Parameters
    ----------
    graph:
        validated application graph (``validate()`` is called here).
    max_steps:
        safety bound on total processing steps (default 10 million).
    seed:
        if given, ready-task selection is randomized with this seed —
        used by the determinism checker.
    record_streams:
        keep full per-stream byte histories in the result (default on).
    """

    def __init__(
        self,
        graph: ApplicationGraph,
        max_steps: int = 10_000_000,
        seed: Optional[int] = None,
        record_streams: bool = True,
    ):
        graph.validate()
        self.graph = graph
        self.max_steps = max_steps
        self._rng = random.Random(seed) if seed is not None else None
        self._record = record_streams

        self._tasks: Dict[str, _Task] = {}
        self._channels: Dict[str, FifoChannel] = {}
        self._records: Dict[str, bytearray] = {}
        #: channel name -> set of task names blocked waiting for its data
        self._waiters: Dict[str, Set[str]] = {}
        #: task -> channel feeding each input port (for waking)
        self._in_channel_of: Dict[Tuple[str, str], str] = {}
        self._ready: deque = deque()
        self._in_ready: Set[str] = set()
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for name, edge in self.graph.streams.items():
            ch = FifoChannel(name, n_readers=len(edge.consumers))
            self._channels[name] = ch
            self._waiters[name] = set()
            if self._record:
                self._records[name] = bytearray()

        for tname, node in self.graph.tasks.items():
            kernel = node.kernel_factory()
            if not isinstance(kernel, Kernel):
                raise GraphError(f"task {tname!r}: factory returned {type(kernel).__name__}")
            ctx = KernelContext(kernel.ports(), task_info=node.task_info, task=node.name)
            task = _Task(tname, kernel, ctx)
            self._tasks[tname] = task

        for name, edge in self.graph.streams.items():
            ch = self._channels[name]
            prod = self._tasks[edge.producer.task]
            rec = self._records.get(name)
            prod.outputs[edge.producer.port] = _OutPort(ch, rec)
            for idx, cons in enumerate(edge.consumers):
                t = self._tasks[cons.task]
                t.inputs[cons.port] = _InPort(ch, idx)
                self._in_channel_of[(cons.task, cons.port)] = name

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        ready = self._ready = deque(self._tasks)  # every task: first chance
        self._in_ready = set(self._tasks)
        total_steps = 0
        while True:
            if not ready:
                live = [t for t in self._tasks.values() if t.alive]
                if not live:
                    break
                blocked = {
                    t.name: t.blocked_on for t in live if t.blocked_on is not None
                }
                if len(blocked) == len(live):
                    raise DeadlockError(
                        f"deadlock: all live tasks blocked on input: {blocked}"
                    )
                # Live, unblocked, but not ready: cannot happen — every
                # unblocked live task is queued.  Guard anyway.
                raise DeadlockError(f"scheduler stuck; live={[t.name for t in live]}")

            name = self._pick(ready)
            self._in_ready.discard(name)
            task = self._tasks[name]
            if not task.alive:
                continue
            total_steps += 1
            if total_steps > self.max_steps:
                raise RuntimeError(f"exceeded max_steps={self.max_steps}; livelock?")
            progressed = self._run_one_step(task)
            if task.alive and progressed:
                self._enqueue(name)
            # blocked tasks are re-queued by _wake when data arrives

        return ExecutionResult(
            histories={k: bytes(v) for k, v in self._records.items()},
            task_stats={k: t.stats for k, t in self._tasks.items()},
            total_steps=total_steps,
        )

    def _pick(self, ready: deque) -> str:
        if self._rng is None:
            return ready.popleft()
        idx = self._rng.randrange(len(ready))
        ready.rotate(-idx)
        name = ready.popleft()
        ready.rotate(idx)
        return name

    # ------------------------------------------------------------------
    # step execution
    # ------------------------------------------------------------------
    def _run_one_step(self, task: _Task) -> bool:
        """Drive one processing step (or resume a blocked one).

        Returns True if the task should be re-queued immediately.
        """
        gen = task.step_gen
        if gen is None:
            gen = task.kernel.step(task.ctx)
            task.step_gen = gen
            to_send: Any = None
        else:
            # resuming after block: re-answer the pending GetSpace
            port, n = task.blocked_on  # type: ignore[misc]
            task.blocked_on = None
            space = self._answer_get_space(task, port, n)
            if space is None:  # still not enough; re-block
                self._block(task, port, n)
                return False
            to_send = space

        while True:
            try:
                op = gen.send(to_send)
            except StopIteration as stop:
                outcome = stop.value
                task.step_gen = None
                return self._finish_step(task, outcome)

            if isinstance(op, GetSpaceOp):
                result = self._handle_get_space(task, op)
                if result is None:
                    return False  # blocked; generator kept in step_gen
                to_send = result
            elif isinstance(op, ReadOp):
                to_send = self._handle_read(task, op)
            elif isinstance(op, WriteOp):
                task.outputs[op.port].write(op.offset, op.data)
                task.stats.bytes_written += len(op.data)
                to_send = None
            elif isinstance(op, PutSpaceOp):
                self._handle_put_space(task, op)
                to_send = None
            elif isinstance(op, ComputeOp):
                task.stats.compute_cycles += op.cycles
                to_send = None
            elif isinstance(op, ExternalAccessOp):
                to_send = None  # timing-only; content lives in task state
            else:
                raise TypeError(
                    f"task {task.name!r} yielded {type(op).__name__}; expected an op"
                )

    def _finish_step(self, task: _Task, outcome: Any) -> bool:
        if outcome is None:
            outcome = StepOutcome.COMPLETED
        if not isinstance(outcome, StepOutcome):
            raise TypeError(
                f"task {task.name!r} step returned {outcome!r}, expected StepOutcome"
            )
        if outcome is StepOutcome.COMPLETED:
            task.stats.steps_completed += 1
            return True
        if outcome is StepOutcome.ABORTED:
            # Functionally an abort only happens if the kernel chose to
            # abort on an EOS-denied space without finishing; re-running
            # would loop forever, so treat like completed-without-work
            # and let EOS handling finish it next round.
            task.stats.steps_aborted += 1
            return True
        # FINISHED
        task.alive = False
        task.step_gen = None
        for port in task.outputs.values():
            port.channel.close()
        for edge in self.graph.output_streams(task.name):
            self._wake(edge.name)
        return False

    # ------------------------------------------------------------------
    # op handlers
    # ------------------------------------------------------------------
    def _handle_get_space(self, task: _Task, op: GetSpaceOp) -> Optional[Space]:
        if op.port in task.outputs:
            return Space(granted=True, available=op.n_bytes)
        space = self._answer_get_space(task, op.port, op.n_bytes)
        if space is None:
            self._block(task, op.port, op.n_bytes)
        return space

    def _answer_get_space(self, task: _Task, port: str, n: int) -> Optional[Space]:
        """Space if answerable now, else None (caller blocks)."""
        inp = task.inputs[port]
        avail = inp.available()
        if avail >= n:
            return Space(granted=True, available=avail)
        if inp.channel.closed:
            return Space(granted=False, eos=True, available=avail)
        return None

    def _block(self, task: _Task, port: str, n: int) -> None:
        task.blocked_on = (port, n)
        ch_name = self._in_channel_of[(task.name, port)]
        self._waiters[ch_name].add(task.name)

    def _enqueue(self, name: str) -> None:
        if name not in self._in_ready:
            self._in_ready.add(name)
            self._ready.append(name)

    def _wake(self, channel_name: str) -> None:
        woken = sorted(self._waiters[channel_name])
        self._waiters[channel_name].clear()
        for tname in woken:
            if self._tasks[tname].blocked_on is not None:
                self._enqueue(tname)

    def _handle_read(self, task: _Task, op: ReadOp) -> bytes:
        inp = task.inputs[op.port]
        data = inp.channel.peek(op.offset, op.n_bytes, inp.reader)
        task.stats.bytes_read += len(data)
        return data

    def _handle_put_space(self, task: _Task, op: PutSpaceOp) -> None:
        if op.port in task.outputs:
            out = task.outputs[op.port]
            out.commit(op.n_bytes)
            stream = self.graph.stream_of(
                PortRef(task.name, op.port)
            )
            self._wake(stream.name)
        else:
            inp = task.inputs[op.port]
            inp.channel.advance(op.n_bytes, inp.reader)
